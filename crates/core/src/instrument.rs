//! One-stop coverage instrumentation pipeline.
//!
//! [`CoverageCompiler`] runs the FIRRTL lowering pipeline with the selected
//! coverage passes interleaved at their required positions (DESIGN.md §3):
//!
//! ```text
//! check → infer widths → [ready/valid] → lower types → [line]
//!       → expand whens → const prop → dce → [fsm] → [toggle]
//! ```
//!
//! The output is a low-form circuit ready for any backend plus the combined
//! [`CoverageArtifacts`] the report generators consume.

use crate::passes::fsm::{instrument_fsm_coverage, FsmCoverageInfo};
use crate::passes::line::{instrument_line_coverage, LineCoverageInfo};
use crate::passes::ready_valid::{instrument_ready_valid_coverage, ReadyValidInfo};
use crate::passes::toggle::{instrument_toggle_coverage, ToggleCoverageInfo, ToggleOptions};
use rtlcov_firrtl::ir::Circuit;
use rtlcov_firrtl::passes::{self, PassError};

/// Which metrics to instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Branch/line coverage (§4.1).
    pub line: bool,
    /// Toggle coverage (§4.2); `None` disables.
    pub toggle: Option<ToggleOptions>,
    /// FSM coverage (§4.3).
    pub fsm: bool,
    /// Ready/valid coverage (§4.4).
    pub ready_valid: bool,
}

impl Metrics {
    /// No instrumentation (baseline).
    pub fn none() -> Self {
        Metrics::default()
    }

    /// Every metric with default options.
    pub fn all() -> Self {
        Metrics {
            line: true,
            toggle: Some(ToggleOptions::default()),
            fsm: true,
            ready_valid: true,
        }
    }

    /// Line coverage only.
    pub fn line_only() -> Self {
        Metrics {
            line: true,
            ..Metrics::default()
        }
    }

    /// Toggle coverage only.
    pub fn toggle_only(options: ToggleOptions) -> Self {
        Metrics {
            toggle: Some(options),
            ..Metrics::default()
        }
    }

    /// FSM coverage only.
    pub fn fsm_only() -> Self {
        Metrics {
            fsm: true,
            ..Metrics::default()
        }
    }

    /// Ready/valid coverage only.
    pub fn ready_valid_only() -> Self {
        Metrics {
            ready_valid: true,
            ..Metrics::default()
        }
    }
}

/// All metadata produced by the instrumentation passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageArtifacts {
    /// Line coverage metadata (empty if not requested).
    pub line: LineCoverageInfo,
    /// Toggle coverage metadata.
    pub toggle: ToggleCoverageInfo,
    /// FSM coverage metadata.
    pub fsm: FsmCoverageInfo,
    /// Ready/valid coverage metadata.
    pub ready_valid: ReadyValidInfo,
}

impl CoverageArtifacts {
    /// Total cover points inserted across all metrics (per module
    /// declaration, not per instance).
    pub fn cover_count(&self) -> usize {
        self.line.cover_count()
            + self.toggle.cover_count()
            + self.fsm.cover_count()
            + self.ready_valid.cover_count()
    }
}

/// Result of [`CoverageCompiler::run`].
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The lowered, instrumented circuit (backend-ready).
    pub circuit: Circuit,
    /// Pass metadata for the report generators.
    pub artifacts: CoverageArtifacts,
}

/// The instrumentation pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageCompiler {
    metrics: Metrics,
}

impl CoverageCompiler {
    /// A compiler instrumenting the given metrics.
    pub fn new(metrics: Metrics) -> Self {
        CoverageCompiler { metrics }
    }

    /// Run the full pipeline on a high-form circuit.
    ///
    /// # Errors
    ///
    /// Propagates any lowering [`PassError`].
    pub fn run(&self, circuit: Circuit) -> Result<Instrumented, PassError> {
        let mut artifacts = CoverageArtifacts::default();
        let circuit = passes::check::check(circuit)?;
        let mut circuit = passes::infer_widths::infer_widths(circuit)?;
        if self.metrics.ready_valid {
            artifacts.ready_valid = instrument_ready_valid_coverage(&mut circuit);
        }
        let mut circuit = passes::lower_types::lower_types(circuit)?;
        if self.metrics.line {
            artifacts.line = instrument_line_coverage(&mut circuit);
        }
        let circuit = passes::expand_whens::expand_whens(circuit)?;
        let circuit = passes::const_prop::const_prop(circuit)?;
        let mut circuit = passes::dce::dce(circuit)?;
        if self.metrics.fsm {
            artifacts.fsm = instrument_fsm_coverage(&mut circuit);
        }
        if let Some(options) = self.metrics.toggle {
            artifacts.toggle = instrument_toggle_coverage(&mut circuit, options)?;
        }
        Ok(Instrumented { circuit, artifacts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::ir::Stmt;
    use rtlcov_firrtl::parser::parse;

    const SRC: &str = "
; @enumdef S A=0,B=1
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input in : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<4> }
    output o : UInt<4>
    reg state : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))
    in.ready <= eq(state, UInt<1>(0))
    o <= UInt<4>(0)
    when and(in.valid, in.ready) :
      state <= UInt<1>(1)
      o <= in.bits
";

    #[test]
    fn all_metrics_compose() {
        let inst = CoverageCompiler::new(Metrics::all())
            .run(parse(SRC).unwrap())
            .unwrap();
        let a = &inst.artifacts;
        assert!(a.line.cover_count() > 0, "line");
        assert!(a.toggle.cover_count() > 0, "toggle");
        assert!(a.fsm.cover_count() > 0, "fsm");
        assert_eq!(a.ready_valid.cover_count(), 1, "ready_valid");
        // all covers exist in the lowered circuit with unique names
        let mut names = Vec::new();
        inst.circuit.top_module().for_each_stmt(&mut |s| {
            if let Stmt::Cover { name, .. } = s {
                names.push(name.clone());
            }
        });
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(names.len(), a.cover_count());
    }

    #[test]
    fn baseline_inserts_nothing() {
        let inst = CoverageCompiler::new(Metrics::none())
            .run(parse(SRC).unwrap())
            .unwrap();
        assert_eq!(inst.artifacts.cover_count(), 0);
        let mut covers = 0;
        inst.circuit.top_module().for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Cover { .. }) {
                covers += 1;
            }
        });
        assert_eq!(covers, 0);
    }

    #[test]
    fn single_metric_selection() {
        let inst = CoverageCompiler::new(Metrics::line_only())
            .run(parse(SRC).unwrap())
            .unwrap();
        assert!(inst.artifacts.line.cover_count() > 0);
        assert_eq!(inst.artifacts.toggle.cover_count(), 0);
        assert_eq!(inst.artifacts.fsm.cover_count(), 0);
        assert_eq!(inst.artifacts.ready_valid.cover_count(), 0);
    }
}

//! The simulator-independent coverage interchange format.
//!
//! Every backend — software simulators, the FPGA host, the formal tool —
//! reports coverage as a [`CoverageMap`]: a map from the cover statement's
//! hierarchical name (instance path + name) to a saturating count. Because
//! the format is identical across backends, maps can be trivially merged
//! (§5.3 of the paper).

use crate::json::{self, Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;

/// Map from hierarchical cover-point name to saturating hit count.
///
/// ```
/// use rtlcov_core::map::CoverageMap;
/// let mut sw = CoverageMap::new();
/// sw.record("core.fetch_taken", 7);
/// let mut fpga = CoverageMap::new();
/// fpga.record("core.fetch_taken", 3);
/// fpga.record("core.icache_miss", 1);
/// sw.merge(&fpga);
/// assert_eq!(sw.count("core.fetch_taken"), Some(10));
/// assert_eq!(sw.count("core.icache_miss"), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    counts: BTreeMap<String, u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` additional hits for `name` (saturating).
    pub fn record(&mut self, name: impl Into<String>, count: u64) {
        let entry = self.counts.entry(name.into()).or_insert(0);
        *entry = entry.saturating_add(count);
    }

    /// Borrowed-key twin of [`CoverageMap::record`]: saturating-add
    /// `count` hits to `name`, allocating a `String` only when the point
    /// is new. Merge trees hit the same keys over and over, so the common
    /// case is a pure in-place update with no allocation.
    pub fn record_ref(&mut self, name: &str, count: u64) {
        if let Some(entry) = self.counts.get_mut(name) {
            *entry = entry.saturating_add(count);
        } else {
            self.counts.insert(name.to_string(), count);
        }
    }

    /// Borrowed-key twin of [`CoverageMap::declare`]: insert `name` with
    /// zero hits, allocating only when the point is new.
    pub fn declare_ref(&mut self, name: &str) {
        if !self.counts.contains_key(name) {
            self.counts.insert(name.to_string(), 0);
        }
    }

    /// Whether `name` is a known cover point (hit or not).
    pub fn contains(&self, name: &str) -> bool {
        self.counts.contains_key(name)
    }

    /// Declare a cover point with zero hits (so uncovered points appear in
    /// reports).
    pub fn declare(&mut self, name: impl Into<String>) {
        self.counts.entry(name.into()).or_insert(0);
    }

    /// The count for a cover point, if the point is known.
    pub fn count(&self, name: &str) -> Option<u64> {
        self.counts.get(name).copied()
    }

    /// Number of known cover points.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no cover point is known.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of cover points with a non-zero count.
    pub fn covered(&self) -> usize {
        self.counts.values().filter(|&&c| c > 0).count()
    }

    /// Fraction of points covered, in `[0, 1]`; 1.0 for an empty map.
    pub fn coverage_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            1.0
        } else {
            self.covered() as f64 / self.counts.len() as f64
        }
    }

    /// Merge another map into this one (saturating adds; §5.3). Keys
    /// already present are updated in place without cloning their name.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (name, count) in &other.counts {
            self.record_ref(name, *count);
        }
    }

    /// Merge any number of maps into one (the campaign merge-tree
    /// primitive). Saturating addition is associative and commutative, so
    /// the result is independent of both grouping and order — the pairwise
    /// tree reduction here returns exactly what a sequential left fold
    /// would, while keeping the reduction depth logarithmic.
    pub fn merge_many(maps: &[&CoverageMap]) -> CoverageMap {
        match maps {
            [] => CoverageMap::new(),
            [only] => (*only).clone(),
            _ => {
                let (left, right) = maps.split_at(maps.len() / 2);
                let mut merged = Self::merge_many(left);
                merged.merge(&Self::merge_many(right));
                merged
            }
        }
    }

    /// Names of points covered at least `threshold` times — the candidates
    /// for removal before FPGA instrumentation (§5.3).
    pub fn covered_at_least(&self, threshold: u64) -> Vec<&str> {
        self.counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Iterate over `(name, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(n, &c)| (n.as_str(), c))
    }

    /// Serialize to the JSON interchange format:
    /// `{"counts": {"<name>": <count>, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counts\": {");
        for (i, (name, count)) in self.counts.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, name);
            out.push_str(": ");
            out.push_str(&count.to_string());
        }
        if !self.counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Parse from the JSON interchange format.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or a document that is
    /// not a `{"counts": {...}}` object with unsigned-integer counts.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = json::parse(s)?;
        let counts = doc
            .get("counts")
            .and_then(Json::as_object)
            .ok_or_else(|| JsonError {
                message: "missing `counts` object".into(),
                offset: 0,
            })?;
        let mut map = CoverageMap::new();
        for (name, value) in counts {
            let count = value.as_u64().ok_or_else(|| JsonError {
                message: format!("count for `{name}` is not an unsigned integer"),
                offset: 0,
            })?;
            map.counts.insert(name.clone(), count);
        }
        Ok(map)
    }
}

impl FromIterator<(String, u64)> for CoverageMap {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        let mut m = CoverageMap::new();
        for (n, c) in iter {
            m.record(n, c);
        }
        m
    }
}

impl Extend<(String, u64)> for CoverageMap {
    fn extend<I: IntoIterator<Item = (String, u64)>>(&mut self, iter: I) {
        for (n, c) in iter {
            self.record(n, c);
        }
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} / {} cover points hit", self.covered(), self.len())?;
        for (name, count) in &self.counts {
            writeln!(f, "  {name}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = CoverageMap::new();
        m.record("a", 2);
        m.record("a", 3);
        m.declare("b");
        assert_eq!(m.count("a"), Some(5));
        assert_eq!(m.count("b"), Some(0));
        assert_eq!(m.count("c"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.covered(), 1);
    }

    #[test]
    fn borrowed_key_apis_match_owned_ones() {
        let mut owned = CoverageMap::new();
        owned.record("a", 2);
        owned.record("a", 3);
        owned.declare("b");
        let mut borrowed = CoverageMap::new();
        borrowed.record_ref("a", 2);
        borrowed.record_ref("a", 3);
        borrowed.declare_ref("b");
        borrowed.declare_ref("b"); // idempotent
        assert_eq!(owned, borrowed);
        assert!(borrowed.contains("a"));
        assert!(borrowed.contains("b"));
        assert!(!borrowed.contains("c"));
        // declare_ref never resets an existing count
        borrowed.declare_ref("a");
        assert_eq!(borrowed.count("a"), Some(5));
        // record_ref saturates like record
        borrowed.record_ref("a", u64::MAX);
        assert_eq!(borrowed.count("a"), Some(u64::MAX));
    }

    #[test]
    fn record_saturates() {
        let mut m = CoverageMap::new();
        m.record("a", u64::MAX);
        m.record("a", 10);
        assert_eq!(m.count("a"), Some(u64::MAX));
    }

    #[test]
    fn merge_is_commutative_on_counts() {
        let mut a = CoverageMap::new();
        a.record("x", 1);
        a.record("y", 2);
        let mut b = CoverageMap::new();
        b.record("y", 3);
        b.record("z", 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count("y"), Some(5));
    }

    #[test]
    fn json_roundtrip() {
        let mut m = CoverageMap::new();
        m.record("top.cover_0", 42);
        m.declare("top.sub.cover_1");
        let m2 = CoverageMap::from_json(&m.to_json()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn removal_threshold() {
        let mut m = CoverageMap::new();
        m.record("hot", 100);
        m.record("warm", 10);
        m.record("cold", 2);
        m.declare("never");
        let removable = m.covered_at_least(10);
        assert_eq!(removable, vec!["hot", "warm"]);
    }

    #[test]
    fn coverage_fraction() {
        let mut m = CoverageMap::new();
        assert_eq!(m.coverage_fraction(), 1.0);
        m.declare("a");
        m.record("b", 1);
        assert!((m.coverage_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn collect_from_iterator() {
        let m: CoverageMap = vec![("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_many_equals_sequential_fold() {
        let mut a = CoverageMap::new();
        a.record("x", 1);
        a.declare("only_declared");
        let mut b = CoverageMap::new();
        b.record("x", 2);
        b.record("y", 5);
        let mut c = CoverageMap::new();
        c.record("y", u64::MAX); // saturates with b's 5
        let tree = CoverageMap::merge_many(&[&a, &b, &c]);
        let mut fold = CoverageMap::new();
        for m in [&a, &b, &c] {
            fold.merge(m);
        }
        assert_eq!(tree, fold);
        assert_eq!(tree.count("x"), Some(3));
        assert_eq!(tree.count("y"), Some(u64::MAX));
        assert_eq!(tree.count("only_declared"), Some(0));
    }

    #[test]
    fn merge_many_trivial_inputs() {
        assert_eq!(CoverageMap::merge_many(&[]), CoverageMap::new());
        let mut a = CoverageMap::new();
        a.record("x", 7);
        assert_eq!(CoverageMap::merge_many(&[&a]), a);
    }
}

#[cfg(test)]
mod merge_properties {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary maps over a small name alphabet so merges collide often.
    /// Zero counts exercise declared-but-unhit keys: `record(name, 0)`
    /// inserts the key with count 0, exactly like `declare`.
    fn build(entries: Vec<(String, u64)>) -> CoverageMap {
        let mut m = CoverageMap::new();
        for (name, count) in entries {
            m.record(name, count);
        }
        m
    }

    proptest! {
        #[test]
        fn merge_many_is_associative(
            ea in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
            eb in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
            ec in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
        ) {
            let (a, b, c) = (build(ea), build(eb), build(ec));
            // ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) == merge_many's tree shape
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            prop_assert_eq!(&CoverageMap::merge_many(&[&a, &b, &c]), &ab_c);
        }

        #[test]
        fn merge_many_is_order_independent(
            ea in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
            eb in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
            ec in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
            ed in prop::collection::vec(("[a-e]{1,2}", 0u64..100), 0..10),
        ) {
            let maps = [build(ea), build(eb), build(ec), build(ed)];
            let refs: Vec<&CoverageMap> = maps.iter().collect();
            let forward = CoverageMap::merge_many(&refs);
            let reversed: Vec<&CoverageMap> = maps.iter().rev().collect();
            let backward = CoverageMap::merge_many(&reversed);
            let rotated: Vec<&CoverageMap> =
                maps.iter().skip(2).chain(maps.iter().take(2)).collect();
            let rotated = CoverageMap::merge_many(&rotated);
            prop_assert_eq!(&forward, &backward);
            prop_assert_eq!(&forward, &rotated);
            // every declared key survives, hit or not
            for m in &maps {
                for (name, count) in m.iter() {
                    let merged = forward.count(name);
                    prop_assert!(merged.is_some(), "key {} lost in merge", name);
                    prop_assert!(merged.unwrap_or(0) >= count.min(1));
                }
            }
        }

        #[test]
        fn merge_many_counts_sum_without_overflow(
            entries in prop::collection::vec(("[a-c]", 0u64..1000), 0..12),
            copies in 1usize..6,
        ) {
            let one = build(entries);
            let refs: Vec<&CoverageMap> = std::iter::repeat(&one).take(copies).collect();
            let merged = CoverageMap::merge_many(&refs);
            for (name, count) in one.iter() {
                prop_assert_eq!(merged.count(name), Some(count * copies as u64));
            }
        }
    }
}

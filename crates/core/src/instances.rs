//! Instance-tree enumeration shared by the report generators.
//!
//! Cover counts come back from simulators under hierarchical names
//! (`path.cover`); instrumentation metadata is recorded per *module*. This
//! module enumerates every `(instance path, module)` pair so reports can
//! join the two.

use rtlcov_firrtl::ir::{Circuit, Stmt};

/// All `(instance path, module name)` pairs in the elaborated design, in
/// DFS order. The top module has the empty path.
pub fn instance_paths(circuit: &Circuit) -> Vec<(String, String)> {
    let mut out = Vec::new();
    walk(circuit, &circuit.top, "", &mut out);
    out
}

fn walk(circuit: &Circuit, module: &str, path: &str, out: &mut Vec<(String, String)>) {
    out.push((path.to_string(), module.to_string()));
    let Some(m) = circuit.module(module) else {
        return;
    };
    m.for_each_stmt(&mut |s| {
        if let Stmt::Inst {
            name,
            module: target,
            ..
        } = s
        {
            let child = if path.is_empty() {
                name.clone()
            } else {
                format!("{path}.{name}")
            };
            walk(circuit, target, &child, out);
        }
    });
}

/// Hierarchical runtime name of a cover declared as `name` in an instance
/// at `path`.
pub fn runtime_cover_name(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{path}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;

    #[test]
    fn enumerates_tree() {
        let c = parse(
            "
circuit Top :
  module Leaf :
    input clock : Clock
    skip
  module Mid :
    input clock : Clock
    inst l1 of Leaf
    inst l2 of Leaf
  module Top :
    input clock : Clock
    inst m of Mid
",
        )
        .unwrap();
        let paths = instance_paths(&c);
        assert_eq!(
            paths,
            vec![
                ("".to_string(), "Top".to_string()),
                ("m".to_string(), "Mid".to_string()),
                ("m.l1".to_string(), "Leaf".to_string()),
                ("m.l2".to_string(), "Leaf".to_string()),
            ]
        );
        assert_eq!(runtime_cover_name("m.l1", "c0"), "m.l1.c0");
        assert_eq!(runtime_cover_name("", "c0"), "c0");
    }
}

//! Simulator-independent report generators.
//!
//! Each generator joins the metadata emitted by an instrumentation pass
//! with a [`crate::CoverageMap`] — from any backend, or merged across
//! several — and renders a plain-text report, mirroring the paper's
//! bare-bones ASCII reports (§4, Table 1).

pub mod fsm;
pub mod line;
pub mod ready_valid;
pub mod toggle;

/// Summary statistics shared by all reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of coverable items (lines, bits, states...).
    pub total: usize,
    /// Items hit at least once.
    pub covered: usize,
}

impl Summary {
    /// Fraction covered in `[0, 1]`; 1.0 when there is nothing to cover.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Percentage string, e.g. `"87.5%"`.
    pub fn percent(&self) -> String {
        format!("{:.1}%", self.fraction() * 100.0)
    }
}

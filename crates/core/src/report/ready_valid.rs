//! Ready/valid coverage report generator (§4.4).

use super::Summary;
use crate::instances::{instance_paths, runtime_cover_name};
use crate::passes::ready_valid::{DecoupledDir, ReadyValidInfo};
use crate::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::collections::BTreeMap;
use std::fmt::Write;

/// The ready/valid report: instance-qualified interface → transfer count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadyValidReport {
    /// `qualified interface name → (direction, transfers)`.
    pub interfaces: BTreeMap<String, (DecoupledDir, u64)>,
    /// Interface summary.
    pub summary: Summary,
}

impl ReadyValidReport {
    /// Build the report by joining metadata, the instance tree and counts.
    pub fn build(circuit: &Circuit, info: &ReadyValidInfo, counts: &CoverageMap) -> Self {
        let mut interfaces = BTreeMap::new();
        for (path, module) in instance_paths(circuit) {
            let Some(minfo) = info.modules.get(&module) else {
                continue;
            };
            for (cover, port) in minfo {
                let count = counts.count(&runtime_cover_name(&path, cover)).unwrap_or(0);
                let qualified = if path.is_empty() {
                    port.port.clone()
                } else {
                    format!("{path}.{}", port.port)
                };
                interfaces.insert(qualified, (port.dir, count));
            }
        }
        let total = interfaces.len();
        let covered = interfaces.values().filter(|(_, c)| *c > 0).count();
        ReadyValidReport {
            interfaces,
            summary: Summary { total, covered },
        }
    }

    /// Interfaces on which no transfer ever fired.
    pub fn silent_interfaces(&self) -> Vec<&str> {
        self.interfaces
            .iter()
            .filter(|(_, (_, c))| *c == 0)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Render the ASCII report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ready/valid coverage: {} of {} interfaces transferred ({})",
            self.summary.covered,
            self.summary.total,
            self.summary.percent()
        );
        for (name, (dir, count)) in &self.interfaces {
            let marker = if *count == 0 { ">>>" } else { "   " };
            let d = match dir {
                DecoupledDir::Sink => "sink",
                DecoupledDir::Source => "source",
            };
            let _ = writeln!(out, "{marker} {name} ({d}): {count} transfers");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::ready_valid::instrument_ready_valid_coverage;
    use rtlcov_firrtl::parser::parse;

    #[test]
    fn joins_interfaces() {
        let mut c = parse(
            "
circuit Q :
  module Q :
    input clock : Clock
    input enq : { flip ready : UInt<1>, valid : UInt<1> }
    output deq : { flip ready : UInt<1>, valid : UInt<1> }
    enq.ready <= deq.ready
    deq.valid <= enq.valid
",
        )
        .unwrap();
        let info = instrument_ready_valid_coverage(&mut c);
        let mut counts = CoverageMap::new();
        counts.record("rv_enq", 42);
        counts.declare("rv_deq");
        let report = ReadyValidReport::build(&c, &info, &counts);
        assert_eq!(report.interfaces["enq"].1, 42);
        assert_eq!(report.silent_interfaces(), vec!["deq"]);
        assert!(report.render().contains("42 transfers"));
    }
}

//! Toggle coverage report generator (§4.2).

use super::Summary;
use crate::instances::{instance_paths, runtime_cover_name};
use crate::passes::toggle::ToggleCoverageInfo;
use crate::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Per-signal toggle results within one instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SignalToggle {
    /// `bit → toggle count`.
    pub bits: BTreeMap<u32, u64>,
}

impl SignalToggle {
    /// True when every bit toggled at least once.
    pub fn fully_toggled(&self) -> bool {
        self.bits.values().all(|&c| c > 0)
    }

    /// Bits that never toggled (stuck-at candidates).
    pub fn stuck_bits(&self) -> Vec<u32> {
        self.bits
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(&b, _)| b)
            .collect()
    }
}

/// The toggle report: instance-qualified signal → per-bit counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ToggleReport {
    /// `instance-path-qualified signal name → per-bit counts`.
    pub signals: BTreeMap<String, SignalToggle>,
    /// Per-bit summary.
    pub summary: Summary,
}

impl ToggleReport {
    /// Build the report by joining metadata, the instance tree and counts.
    pub fn build(circuit: &Circuit, info: &ToggleCoverageInfo, counts: &CoverageMap) -> Self {
        let mut signals: BTreeMap<String, SignalToggle> = BTreeMap::new();
        for (path, module) in instance_paths(circuit) {
            let Some(minfo) = info.modules.get(&module) else {
                continue;
            };
            for (cover, target) in minfo {
                let count = counts.count(&runtime_cover_name(&path, cover)).unwrap_or(0);
                let qualified = if path.is_empty() {
                    target.signal.clone()
                } else {
                    format!("{path}.{}", target.signal)
                };
                signals
                    .entry(qualified)
                    .or_default()
                    .bits
                    .insert(target.bit, count);
            }
        }
        let total = signals.values().map(|s| s.bits.len()).sum();
        let covered = signals
            .values()
            .flat_map(|s| s.bits.values())
            .filter(|&&c| c > 0)
            .count();
        ToggleReport {
            signals,
            summary: Summary { total, covered },
        }
    }

    /// Signals with at least one never-toggled bit.
    pub fn stuck_signals(&self) -> Vec<(&str, Vec<u32>)> {
        self.signals
            .iter()
            .filter(|(_, s)| !s.fully_toggled())
            .map(|(n, s)| (n.as_str(), s.stuck_bits()))
            .collect()
    }

    /// Render the ASCII report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "toggle coverage: {} of {} bits toggled ({})",
            self.summary.covered,
            self.summary.total,
            self.summary.percent()
        );
        for (signal, st) in &self.signals {
            if st.fully_toggled() {
                let _ = writeln!(out, "    {signal}: all {} bits toggled", st.bits.len());
            } else {
                let _ = writeln!(out, ">>> {signal}: stuck bits {:?}", st.stuck_bits());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::toggle::{instrument_toggle_coverage, ToggleOptions};
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    #[test]
    fn joins_counts_per_bit() {
        let mut c = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<2>
    reg r : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    r <= tail(add(r, UInt<2>(1)), 1)
    o <= r
",
            )
            .unwrap(),
        )
        .unwrap();
        let info = instrument_toggle_coverage(&mut c, ToggleOptions::regs_only()).unwrap();
        let mut counts = CoverageMap::new();
        counts.record("t_r_0", 10);
        counts.declare("t_r_1");
        let report = ToggleReport::build(&c, &info, &counts);
        assert_eq!(report.signals["r"].bits[&0], 10);
        assert_eq!(report.signals["r"].bits[&1], 0);
        assert_eq!(report.stuck_signals(), vec![("r", vec![1])]);
        assert!(report.render().contains("stuck bits [1]"));
        assert_eq!(report.summary.total, 2);
        assert_eq!(report.summary.covered, 1);
    }
}

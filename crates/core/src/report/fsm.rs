//! FSM coverage report generator (§4.3).

use super::Summary;
use crate::instances::{instance_paths, runtime_cover_name};
use crate::passes::fsm::FsmCoverageInfo;
use crate::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Results for one FSM instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsmInstanceReport {
    /// Instance-qualified register name.
    pub reg: String,
    /// state name → visit count.
    pub states: BTreeMap<String, u64>,
    /// `(from, to)` → count.
    pub transitions: BTreeMap<(String, String), u64>,
    /// True if the static analysis over-approximated transitions.
    pub over_approximated: bool,
}

impl FsmInstanceReport {
    /// States never visited.
    pub fn unvisited_states(&self) -> Vec<&str> {
        self.states
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Transitions never taken.
    pub fn untaken_transitions(&self) -> Vec<(&str, &str)> {
        self.transitions
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|((a, b), _)| (a.as_str(), b.as_str()))
            .collect()
    }
}

/// The FSM report across all instances.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsmReport {
    /// One entry per FSM instance.
    pub fsms: Vec<FsmInstanceReport>,
    /// Combined state+transition summary.
    pub summary: Summary,
}

impl FsmReport {
    /// Build the report by joining metadata, the instance tree and counts.
    pub fn build(circuit: &Circuit, info: &FsmCoverageInfo, counts: &CoverageMap) -> Self {
        let mut fsms = Vec::new();
        for (path, module) in instance_paths(circuit) {
            for fsm in info.fsms.iter().filter(|f| f.module == module) {
                let qualified = if path.is_empty() {
                    fsm.reg.clone()
                } else {
                    format!("{path}.{}", fsm.reg)
                };
                let mut inst = FsmInstanceReport {
                    reg: qualified,
                    over_approximated: fsm.over_approximated,
                    ..Default::default()
                };
                for state in fsm.states.keys() {
                    let c = counts
                        .count(&runtime_cover_name(&path, &fsm.state_cover(state)))
                        .unwrap_or(0);
                    inst.states.insert(state.clone(), c);
                }
                for (from, to) in &fsm.transitions {
                    let c = counts
                        .count(&runtime_cover_name(&path, &fsm.transition_cover(from, to)))
                        .unwrap_or(0);
                    inst.transitions.insert((from.clone(), to.clone()), c);
                }
                fsms.push(inst);
            }
        }
        let total = fsms
            .iter()
            .map(|f| f.states.len() + f.transitions.len())
            .sum();
        let covered = fsms
            .iter()
            .map(|f| {
                f.states.values().filter(|&&c| c > 0).count()
                    + f.transitions.values().filter(|&&c| c > 0).count()
            })
            .sum();
        FsmReport {
            fsms,
            summary: Summary { total, covered },
        }
    }

    /// Render the ASCII report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fsm coverage: {} of {} states+transitions ({})",
            self.summary.covered,
            self.summary.total,
            self.summary.percent()
        );
        for fsm in &self.fsms {
            let _ = writeln!(out, "\nfsm `{}`:", fsm.reg);
            if fsm.over_approximated {
                let _ = writeln!(out, "  (transition set over-approximated by analysis)");
            }
            for (state, count) in &fsm.states {
                let marker = if *count == 0 { ">>>" } else { "   " };
                let _ = writeln!(out, "  {marker} state {state}: {count}");
            }
            for ((from, to), count) in &fsm.transitions {
                let marker = if *count == 0 { ">>>" } else { "   " };
                let _ = writeln!(out, "  {marker} {from} -> {to}: {count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::fsm::instrument_fsm_coverage;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    #[test]
    fn report_joins_states_and_transitions() {
        let mut c = passes::lower(
            parse(
                "
; @enumdef S A=0,B=1
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input go : UInt<1>
    output o : UInt<1>
    reg state : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))
    when go :
      state <= UInt<1>(1)
    o <= state
",
            )
            .unwrap(),
        )
        .unwrap();
        let info = instrument_fsm_coverage(&mut c);
        let mut counts = CoverageMap::new();
        counts.record("fsm_state_s_A", 5);
        counts.declare("fsm_state_s_B");
        counts.record("fsm_state_t_A_B", 1);
        let report = FsmReport::build(&c, &info, &counts);
        assert_eq!(report.fsms.len(), 1);
        let fsm = &report.fsms[0];
        assert_eq!(fsm.states["A"], 5);
        assert_eq!(fsm.unvisited_states(), vec!["B"]);
        assert!(fsm.transitions[&("A".to_string(), "B".to_string())] == 1);
        assert!(report.render().contains("state B: 0"));
    }
}

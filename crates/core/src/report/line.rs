//! Line coverage report generator (§4.1).
//!
//! Joins [`LineCoverageInfo`] with a [`CoverageMap`] (from any backend or a
//! merge of several) and produces per-file line counts: each source line
//! receives the maximum count over all branch covers dominating it.

use super::Summary;
use crate::instances::{instance_paths, runtime_cover_name};
use crate::passes::line::LineCoverageInfo;
use crate::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Per-file, per-line counts plus a summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LineReport {
    /// file → line → count.
    pub files: BTreeMap<String, BTreeMap<u32, u64>>,
    /// Coverable-line summary.
    pub summary: Summary,
}

impl LineReport {
    /// Build the report by joining metadata, the instance tree and counts.
    pub fn build(circuit: &Circuit, info: &LineCoverageInfo, counts: &CoverageMap) -> Self {
        let mut files: BTreeMap<String, BTreeMap<u32, u64>> = BTreeMap::new();
        for (path, module) in instance_paths(circuit) {
            let Some(minfo) = info.modules.get(&module) else {
                continue;
            };
            for (cover, lines) in &minfo.covers {
                let count = counts.count(&runtime_cover_name(&path, cover)).unwrap_or(0);
                for sl in lines {
                    let entry = files
                        .entry(sl.file.clone())
                        .or_default()
                        .entry(sl.line)
                        .or_insert(0);
                    *entry = (*entry).max(count);
                }
            }
        }
        let total = files.values().map(|m| m.len()).sum();
        let covered = files
            .values()
            .flat_map(|m| m.values())
            .filter(|&&c| c > 0)
            .count();
        LineReport {
            files,
            summary: Summary { total, covered },
        }
    }

    /// Lines that were never executed, as `(file, line)` pairs.
    pub fn uncovered(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        for (file, lines) in &self.files {
            for (line, count) in lines {
                if *count == 0 {
                    out.push((file.clone(), *line));
                }
            }
        }
        out
    }

    /// Render the ASCII report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "line coverage: {} of {} lines ({})",
            self.summary.covered,
            self.summary.total,
            self.summary.percent()
        );
        for (file, lines) in &self.files {
            let cov = lines.values().filter(|&&c| c > 0).count();
            let _ = writeln!(out, "\n{file}: {cov}/{} lines", lines.len());
            for (line, count) in lines {
                let marker = if *count == 0 { ">>> " } else { "    " };
                let _ = writeln!(out, "{marker}{line:>5}: {count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::line::instrument_line_coverage;
    use rtlcov_firrtl::parser::parse;

    fn setup() -> (Circuit, LineCoverageInfo) {
        let mut c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    output o : UInt<4>
    o <= UInt<4>(0) @[t.scala 4:3]
    when a : @[t.scala 5:3]
      o <= UInt<4>(1) @[t.scala 6:5]
    else :
      o <= UInt<4>(2) @[t.scala 8:5]
",
        )
        .unwrap();
        let info = instrument_line_coverage(&mut c);
        (c, info)
    }

    #[test]
    fn counts_map_to_lines() {
        let (c, info) = setup();
        let mut counts = CoverageMap::new();
        counts.record("l_0", 7); // then-branch
        counts.record("l_1", 0); // else-branch
        let report = LineReport::build(&c, &info, &counts);
        assert_eq!(report.files["t.scala"][&6], 7);
        assert_eq!(report.files["t.scala"][&8], 0);
        assert_eq!(report.summary.total, 2);
        assert_eq!(report.summary.covered, 1);
        assert_eq!(report.uncovered(), vec![("t.scala".to_string(), 8)]);
    }

    #[test]
    fn render_marks_uncovered() {
        let (c, info) = setup();
        let mut counts = CoverageMap::new();
        counts.record("l_0", 3);
        let report = LineReport::build(&c, &info, &counts);
        let text = report.render();
        assert!(text.contains("1 of 2 lines"), "{text}");
        assert!(text.contains(">>>"), "{text}");
    }

    #[test]
    fn merged_backends_raise_coverage() {
        let (c, info) = setup();
        let mut sw = CoverageMap::new();
        sw.record("l_0", 1);
        sw.declare("l_1");
        let mut fpga = CoverageMap::new();
        fpga.declare("l_0");
        fpga.record("l_1", 1);
        let partial = LineReport::build(&c, &info, &sw);
        assert_eq!(partial.summary.covered, 1);
        let mut merged = sw.clone();
        merged.merge(&fpga);
        let full = LineReport::build(&c, &info, &merged);
        assert_eq!(full.summary.covered, 2);
    }
}

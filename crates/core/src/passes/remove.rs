//! Coverage-point removal (§5.3 of the paper).
//!
//! Because software and FPGA simulation share the same instrumentation, a
//! merged software-simulation [`CoverageMap`] can be used to delete cover
//! statements that were already exercised — the paper removes points
//! covered ≥ 10 times before building the FPGA image, cutting 42 % of
//! counters and most of the wide-counter LUT cost.

use crate::instances::{instance_paths, runtime_cover_name};
use crate::CoverageMap;
use rtlcov_firrtl::ir::{Circuit, Stmt};
use std::collections::{HashMap, HashSet};

/// Result of a removal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovalStats {
    /// Cover statements before removal (per module declaration).
    pub before: usize,
    /// Cover statements after removal.
    pub after: usize,
}

impl RemovalStats {
    /// Fraction of cover statements removed.
    pub fn removed_fraction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Remove cover statements already covered at least `threshold` times in
/// `counts`, in **every** instantiation of their module (removing a
/// module-level cover removes it from all instances, so all must qualify).
pub fn remove_covered(circuit: &mut Circuit, counts: &CoverageMap, threshold: u64) -> RemovalStats {
    // per module: covers that are sufficiently hit in every instance path
    let paths = instance_paths(circuit);
    let mut instance_count: HashMap<&str, usize> = HashMap::new();
    for (_, module) in &paths {
        *instance_count.entry(module.as_str()).or_insert(0) += 1;
    }
    let mut qualified: HashMap<String, HashMap<String, usize>> = HashMap::new();
    for (path, module) in &paths {
        let Some(m) = circuit.module(module) else {
            continue;
        };
        m.for_each_stmt(&mut |s| {
            if let Stmt::Cover { name, .. } = s {
                let hit = counts.count(&runtime_cover_name(path, name)).unwrap_or(0) >= threshold;
                if hit {
                    *qualified
                        .entry(module.clone())
                        .or_default()
                        .entry(name.clone())
                        .or_insert(0) += 1;
                }
            }
        });
    }

    let mut before = 0;
    let mut after = 0;
    for module in circuit.modules.iter_mut() {
        let n_inst = instance_count
            .get(module.name.as_str())
            .copied()
            .unwrap_or(0);
        let removable: HashSet<String> = qualified
            .get(&module.name)
            .map(|m| {
                m.iter()
                    .filter(|(_, &hits)| hits == n_inst && n_inst > 0)
                    .map(|(name, _)| name.clone())
                    .collect()
            })
            .unwrap_or_default();
        retain_covers(&mut module.body, &removable, &mut before, &mut after);
    }
    RemovalStats { before, after }
}

fn retain_covers(
    stmts: &mut Vec<Stmt>,
    removable: &HashSet<String>,
    before: &mut usize,
    after: &mut usize,
) {
    stmts.retain_mut(|s| match s {
        Stmt::Cover { name, .. } => {
            *before += 1;
            if removable.contains(name) {
                false
            } else {
                *after += 1;
                true
            }
        }
        Stmt::When { then, else_, .. } => {
            retain_covers(then, removable, before, after);
            retain_covers(else_, removable, before, after);
            true
        }
        _ => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;

    fn circuit() -> Circuit {
        parse(
            "
circuit Top :
  module Child :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : c
  module Top :
    input clock : Clock
    input a : UInt<1>
    inst k1 of Child
    inst k2 of Child
    k1.clock <= clock
    k2.clock <= clock
    k1.a <= a
    k2.a <= not(a)
    cover(clock, a, UInt<1>(1)) : t
",
        )
        .unwrap()
    }

    #[test]
    fn removes_fully_covered_points() {
        let mut c = circuit();
        let mut counts = CoverageMap::new();
        counts.record("t", 100);
        counts.record("k1.c", 100);
        counts.record("k2.c", 100);
        let stats = remove_covered(&mut c, &counts, 10);
        assert_eq!(stats.before, 2); // two module-level cover declarations
        assert_eq!(stats.after, 0);
        assert!(stats.removed_fraction() > 0.99);
    }

    #[test]
    fn keeps_points_uncovered_in_some_instance() {
        let mut c = circuit();
        let mut counts = CoverageMap::new();
        counts.record("t", 100);
        counts.record("k1.c", 100);
        counts.record("k2.c", 3); // below threshold in k2
        let stats = remove_covered(&mut c, &counts, 10);
        assert_eq!(stats.after, 1); // Child.c must stay
        let child = c.module("Child").unwrap();
        let mut covers = 0;
        child.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Cover { .. }) {
                covers += 1;
            }
        });
        assert_eq!(covers, 1);
    }

    #[test]
    fn threshold_respected() {
        let mut c = circuit();
        let mut counts = CoverageMap::new();
        counts.record("t", 9);
        counts.record("k1.c", 10);
        counts.record("k2.c", 10);
        let stats = remove_covered(&mut c, &counts, 10);
        // only the child's cover qualifies
        assert_eq!(stats.after, 1);
        let top = c.module("Top").unwrap();
        let mut covers = 0;
        top.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Cover { .. }) {
                covers += 1;
            }
        });
        assert_eq!(covers, 1);
    }
}

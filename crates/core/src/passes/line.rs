//! Branch and line coverage instrumentation (§4.1 of the paper).
//!
//! Runs on the IR *before* `expand_whens`: a cover statement is inserted at
//! the head of every `when` branch. During when-expansion the FIRRTL
//! compiler folds the dominating branch predicate into the cover's enable,
//! so each cover counts exactly how often its branch is taken — without the
//! pass having to reconstruct predicates itself.
//!
//! Alongside the instrumentation, the pass records which source lines each
//! branch dominates; the report generator joins that with the counts to
//! produce line coverage.

use rtlcov_firrtl::ir::*;
use std::collections::BTreeMap;

/// A source position covered by a branch cover point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceLine {
    /// Source file name.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Metadata for one module's line instrumentation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModuleLineInfo {
    /// Cover name → source lines dominated by that branch.
    pub covers: BTreeMap<String, Vec<SourceLine>>,
}

/// Metadata emitted by the line coverage pass, consumed by
/// [`crate::report::line`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LineCoverageInfo {
    /// Per-module info.
    pub modules: BTreeMap<String, ModuleLineInfo>,
}

impl LineCoverageInfo {
    /// Total number of inserted cover points across all modules (one
    /// instantiation each).
    pub fn cover_count(&self) -> usize {
        self.modules.values().map(|m| m.covers.len()).sum()
    }
}

/// Instrument every `when` branch in the circuit with a cover statement.
///
/// Must run after type lowering and **before** when-expansion. Modules
/// without a clock port are skipped (they cannot host cover statements).
pub fn instrument_line_coverage(circuit: &mut Circuit) -> LineCoverageInfo {
    let mut info = LineCoverageInfo::default();
    for module in circuit.modules.iter_mut() {
        let Some(clock) = module.clock() else {
            continue;
        };
        let mut minfo = ModuleLineInfo::default();
        let mut counter = 0usize;
        let body = std::mem::take(&mut module.body);
        module.body = instrument_stmts(body, &clock, &mut counter, &mut minfo);
        if !minfo.covers.is_empty() {
            info.modules.insert(module.name.clone(), minfo);
        }
    }
    info
}

fn lines_of(stmts: &[Stmt]) -> Vec<SourceLine> {
    let mut out: Vec<SourceLine> = stmts
        .iter()
        .filter_map(|s| {
            let i = s.info();
            if i.is_known() {
                Some(SourceLine {
                    file: i.file.as_deref().unwrap_or("?").to_string(),
                    line: i.line,
                })
            } else {
                None
            }
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

fn instrument_stmts(
    stmts: Vec<Stmt>,
    clock: &Expr,
    counter: &mut usize,
    minfo: &mut ModuleLineInfo,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::When {
                cond,
                then,
                else_,
                info,
            } => {
                let then = instrument_branch(then, clock, counter, minfo);
                let else_ = if else_.is_empty() {
                    else_
                } else {
                    instrument_branch(else_, clock, counter, minfo)
                };
                out.push(Stmt::When {
                    cond,
                    then,
                    else_,
                    info,
                });
            }
            other => out.push(other),
        }
    }
    out
}

fn instrument_branch(
    stmts: Vec<Stmt>,
    clock: &Expr,
    counter: &mut usize,
    minfo: &mut ModuleLineInfo,
) -> Vec<Stmt> {
    let name = format!("l_{}", *counter);
    *counter += 1;
    minfo.covers.insert(name.clone(), lines_of(&stmts));
    let mut out = Vec::with_capacity(stmts.len() + 1);
    // The predicate is constant one: when-expansion folds the dominating
    // branch condition into the enable (the paper's §4.1 mechanism).
    out.push(Stmt::Cover {
        name,
        clock: clock.clone(),
        pred: Expr::one(),
        enable: Expr::one(),
        info: Info::none(),
    });
    out.extend(instrument_stmts(stmts, clock, counter, minfo));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    const SRC: &str = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    output o : UInt<4>
    o <= UInt<4>(0) @[t.scala 5:3]
    when a : @[t.scala 6:3]
      o <= UInt<4>(1) @[t.scala 7:5]
      when b : @[t.scala 8:5]
        o <= UInt<4>(2) @[t.scala 9:7]
    else :
      o <= UInt<4>(3) @[t.scala 11:5]
";

    #[test]
    fn inserts_cover_per_branch() {
        let mut c = parse(SRC).unwrap();
        let info = instrument_line_coverage(&mut c);
        // branches: when-a-then, when-b-then, when-a-else => 3 covers
        assert_eq!(info.cover_count(), 3);
        let minfo = &info.modules["T"];
        // first branch covers lines 7 and 8 (nested when header)
        let l0 = &minfo.covers["l_0"];
        assert!(l0.iter().any(|l| l.line == 7));
        assert!(l0.iter().any(|l| l.line == 8));
        // nested branch covers line 9
        assert!(minfo.covers["l_1"].iter().any(|l| l.line == 9));
        // else branch covers line 11
        assert!(minfo.covers["l_2"].iter().any(|l| l.line == 11));
    }

    #[test]
    fn instrumented_circuit_still_lowers() {
        let mut c = parse(SRC).unwrap();
        instrument_line_coverage(&mut c);
        let low = passes::lower(c).unwrap();
        let mut covers = 0;
        low.top_module().for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Cover { .. }) {
                covers += 1;
            }
        });
        assert_eq!(covers, 3);
    }

    #[test]
    fn cover_enables_reflect_branch_predicates() {
        use rtlcov_sim_shim::run_counts;
        let mut c = parse(SRC).unwrap();
        instrument_line_coverage(&mut c);
        let counts = run_counts(c, &[("a", 1), ("b", 0)], 4);
        assert_eq!(counts.count("l_0"), Some(4)); // a-branch taken
        assert_eq!(counts.count("l_1"), Some(0)); // b nested not taken
        assert_eq!(counts.count("l_2"), Some(0)); // else not taken
    }

    #[test]
    fn skips_clockless_modules() {
        let mut c = parse(
            "
circuit T :
  module T :
    input a : UInt<1>
    output o : UInt<1>
    o <= UInt<1>(0)
    when a :
      o <= UInt<1>(1)
",
        )
        .unwrap();
        let info = instrument_line_coverage(&mut c);
        assert_eq!(info.cover_count(), 0);
    }

    /// Minimal in-crate executor so the pass tests do not depend on
    /// `rtlcov-sim` (which depends on this crate).
    mod rtlcov_sim_shim {
        use crate::CoverageMap;
        use rtlcov_firrtl::eval::{eval, Value};
        use rtlcov_firrtl::ir::*;
        use rtlcov_firrtl::passes;
        use std::collections::HashMap;

        /// Lower + simulate a single-module, reg/mem-free circuit for
        /// `cycles` cycles with constant 1-bit inputs; returns cover counts.
        pub fn run_counts(circuit: Circuit, pokes: &[(&str, u64)], cycles: u64) -> CoverageMap {
            let low = passes::lower(circuit).unwrap();
            let m = low.top_module();
            let mut env: HashMap<String, Value> = HashMap::new();
            for (name, value) in pokes {
                env.insert(name.to_string(), Value::from_u64(*value, 1));
            }
            // iterate node/connect defs to a fixed point (tiny circuits)
            for _ in 0..8 {
                for s in &m.body {
                    match s {
                        Stmt::Node { name, value, .. } => {
                            if let Ok(v) = eval(value, &|n| env.get(n).cloned()) {
                                env.insert(name.clone(), v);
                            }
                        }
                        Stmt::Connect { loc, value, .. } => {
                            if let (Some(sink), Ok(v)) =
                                (loc.flat_name(), eval(value, &|n| env.get(n).cloned()))
                            {
                                env.insert(sink, v);
                            }
                        }
                        _ => {}
                    }
                }
            }
            let mut map = CoverageMap::new();
            for s in &m.body {
                if let Stmt::Cover {
                    name, pred, enable, ..
                } = s
                {
                    let p = eval(pred, &|n| env.get(n).cloned()).map(|v| v.is_true());
                    let e = eval(enable, &|n| env.get(n).cloned()).map(|v| v.is_true());
                    let hit = p.unwrap_or(false) && e.unwrap_or(false);
                    map.declare(name.clone());
                    if hit {
                        map.record(name.clone(), cycles);
                    }
                }
            }
            map
        }
    }
}

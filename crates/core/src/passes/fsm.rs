//! Finite state machine coverage (§4.3 of the paper).
//!
//! The pass consumes the `EnumDef`/`EnumReg` annotations the front-end
//! attaches (the ChiselEnum analog) and analyzes each annotated state
//! register's next-state expression: for the reset case and for each legal
//! current state, the state symbol is substituted and the expression
//! constant-propagated; mux trees are explored branch-wise. Where the
//! expression does not resolve to constants or muxes, the analysis
//! **over-approximates** — it assumes every state is a possible successor
//! and records that it did so (§5.5 shows formal verification catching
//! exactly this over-approximation).
//!
//! Cover statements are then added for every state and every possible
//! transition.

use rtlcov_firrtl::bv::Bv;
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::eval::{eval, Value};
use rtlcov_firrtl::ir::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of the next-state analysis for one `(state, input)` case.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Next {
    /// Only these encodings are possible.
    States(BTreeSet<u64>),
    /// Analysis gave up: every state is possible (over-approximation).
    All,
}

/// Analysis + instrumentation metadata for one FSM.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmInfo {
    /// Module containing the register.
    pub module: String,
    /// State register name.
    pub reg: String,
    /// Enum type name.
    pub enum_name: String,
    /// `state name → encoding`.
    pub states: BTreeMap<String, u64>,
    /// Possible transitions `(from, to)` by state name, including those
    /// introduced by over-approximation.
    pub transitions: Vec<(String, String)>,
    /// True if any case fell back to "all states possible".
    pub over_approximated: bool,
    /// Initial states reachable out of reset.
    pub reset_states: Vec<String>,
}

impl FsmInfo {
    /// Cover name for a state.
    pub fn state_cover(&self, state: &str) -> String {
        format!("fsm_{}_s_{state}", self.reg)
    }

    /// Cover name for a transition.
    pub fn transition_cover(&self, from: &str, to: &str) -> String {
        format!("fsm_{}_t_{from}_{to}", self.reg)
    }
}

/// Metadata emitted by the FSM pass, consumed by [`crate::report::fsm`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsmCoverageInfo {
    /// One entry per annotated state register.
    pub fsms: Vec<FsmInfo>,
}

impl FsmCoverageInfo {
    /// Total number of inserted cover points (states + transitions).
    pub fn cover_count(&self) -> usize {
        self.fsms
            .iter()
            .map(|f| f.states.len() + f.transitions.len())
            .sum()
    }
}

struct NodeEnv<'a> {
    nodes: HashMap<&'a str, &'a Expr>,
    reg: &'a str,
    reg_width: u32,
    state: u64,
    reset: Option<&'a str>,
    reset_value: u64,
}

impl NodeEnv<'_> {
    /// Non-strict partial evaluation: short-circuits `and`/`or`/`mux` so
    /// branch predicates resolve even when unrelated inputs are unknown —
    /// the "constant propagation" step of §4.3.
    fn ceval(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Ref(n) => self.resolve(n),
            Expr::UIntLit(v) => Some(Value::uint(v.clone())),
            Expr::SIntLit(v) => Some(Value::sint(v.clone())),
            Expr::Mux(c, t, f) => match self.ceval(c) {
                Some(v) if v.is_true() => self.ceval(t),
                Some(_) => self.ceval(f),
                None => {
                    let (tv, fv) = (self.ceval(t)?, self.ceval(f)?);
                    (tv == fv).then_some(tv)
                }
            },
            Expr::ValidIf(c, v) => match self.ceval(c) {
                Some(cv) if cv.is_true() => self.ceval(v),
                _ => None,
            },
            Expr::Prim {
                op: PrimOp::And,
                args,
                ..
            } => {
                let (a, b) = (self.ceval(&args[0]), self.ceval(&args[1]));
                match (&a, &b) {
                    (Some(x), _) if !x.is_true() && x.bits.width() == 1 => {
                        Some(Value::bool_value(false))
                    }
                    (_, Some(y)) if !y.is_true() && y.bits.width() == 1 => {
                        Some(Value::bool_value(false))
                    }
                    (Some(_), Some(_)) => Some(rtlcov_firrtl::eval::eval_prim(
                        PrimOp::And,
                        &[a.expect("checked"), b.expect("checked")],
                        &[],
                    )),
                    _ => None,
                }
            }
            Expr::Prim {
                op: PrimOp::Or,
                args,
                ..
            } => {
                let (a, b) = (self.ceval(&args[0]), self.ceval(&args[1]));
                match (&a, &b) {
                    (Some(x), _) if x.is_true() && x.bits.width() == 1 => {
                        Some(Value::bool_value(true))
                    }
                    (_, Some(y)) if y.is_true() && y.bits.width() == 1 => {
                        Some(Value::bool_value(true))
                    }
                    (Some(_), Some(_)) => Some(rtlcov_firrtl::eval::eval_prim(
                        PrimOp::Or,
                        &[a.expect("checked"), b.expect("checked")],
                        &[],
                    )),
                    _ => None,
                }
            }
            Expr::Prim { op, args, consts } => {
                let vals: Option<Vec<Value>> = args.iter().map(|a| self.ceval(a)).collect();
                vals.map(|v| rtlcov_firrtl::eval::eval_prim(*op, &v, consts))
            }
            _ => eval(e, &|n: &str| self.resolve(n)).ok(),
        }
    }

    fn resolve(&self, n: &str) -> Option<Value> {
        if n == self.reg {
            return Some(Value::uint(Bv::from_u64(self.state, self.reg_width)));
        }
        if Some(n) == self.reset {
            return Some(Value::uint(Bv::bit_value(self.reset_value != 0)));
        }
        self.nodes.get(n).and_then(|expr| self.ceval(expr))
    }

    fn analyze(&self, e: &Expr, depth: usize) -> Next {
        if depth > 512 {
            return Next::All;
        }
        match e {
            Expr::UIntLit(v) | Expr::SIntLit(v) => Next::States(BTreeSet::from([v.to_u64()])),
            Expr::Ref(n) if n == self.reg => Next::States(BTreeSet::from([self.state])),
            Expr::Ref(n) => match self.nodes.get(n.as_str()) {
                Some(expr) => self.analyze(expr, depth + 1),
                None => match self.resolve(n) {
                    Some(v) => Next::States(BTreeSet::from([v.bits.to_u64()])),
                    None => Next::All,
                },
            },
            Expr::Mux(c, t, f) => match self.ceval(c) {
                Some(v) if v.is_true() => self.analyze(t, depth + 1),
                Some(_) => self.analyze(f, depth + 1),
                None => {
                    let a = self.analyze(t, depth + 1);
                    let b = self.analyze(f, depth + 1);
                    match (a, b) {
                        (Next::States(mut x), Next::States(y)) => {
                            x.extend(y);
                            Next::States(x)
                        }
                        _ => Next::All,
                    }
                }
            },
            other => match self.ceval(other) {
                Some(v) => Next::States(BTreeSet::from([v.bits.to_u64()])),
                None => Next::All,
            },
        }
    }
}

/// Analyze and instrument every annotated FSM register.
///
/// Must run on low-form modules (after `expand_whens`), before elaboration.
pub fn instrument_fsm_coverage(circuit: &mut Circuit) -> FsmCoverageInfo {
    let mut info = FsmCoverageInfo::default();
    let annotations = circuit.annotations.clone();
    let enum_defs: HashMap<&str, &EnumDef> = annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::EnumDef(def) => Some((def.name.as_str(), def)),
            _ => None,
        })
        .collect();

    for a in &annotations {
        let Annotation::EnumReg {
            module: mod_name,
            reg,
            enum_name,
        } = a
        else {
            continue;
        };
        let Some(def) = enum_defs.get(enum_name.as_str()) else {
            continue;
        };
        let Some(module) = circuit.module_mut(mod_name) else {
            continue;
        };
        let Some(clock) = module.clock() else {
            continue;
        };

        // locate the register, its next expression, and node definitions
        let mut reg_width = 0;
        let mut reset: Option<(Expr, Expr)> = None;
        let mut next: Option<Expr> = None;
        let mut nodes: Vec<(String, Expr)> = Vec::new();
        for s in &module.body {
            match s {
                Stmt::Reg {
                    name, ty, reset: r, ..
                } if name == reg => {
                    reg_width = ty.width().unwrap_or(0);
                    reset = r.clone();
                }
                Stmt::Connect { loc, value, .. } if loc == &Expr::Ref(reg.clone()) => {
                    next = Some(value.clone());
                }
                Stmt::Node { name, value, .. } => nodes.push((name.clone(), value.clone())),
                _ => {}
            }
        }
        if reg_width == 0 {
            continue;
        }
        // a register that is never assigned keeps its value
        let next = next.unwrap_or_else(|| Expr::Ref(reg.clone()));
        let node_map: HashMap<&str, &Expr> = nodes.iter().map(|(n, e)| (n.as_str(), e)).collect();
        let reset_name = reset.as_ref().and_then(|(r, _)| match r {
            Expr::Ref(n) => Some(n.clone()),
            _ => None,
        });
        let by_value: BTreeMap<u64, &str> =
            def.variants.iter().map(|(n, v)| (*v, n.as_str())).collect();

        let mut fsm = FsmInfo {
            module: mod_name.clone(),
            reg: reg.clone(),
            enum_name: enum_name.clone(),
            states: def.variants.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            transitions: Vec::new(),
            over_approximated: false,
            reset_states: Vec::new(),
        };

        // reset case: which states come out of reset?
        if let Some((_, init)) = &reset {
            let env = NodeEnv {
                nodes: node_map.clone(),
                reg: reg.as_str(),
                reg_width,
                state: 0,
                reset: reset_name.as_deref(),
                reset_value: 1,
            };
            match env.analyze(init, 0) {
                Next::States(s) => {
                    for v in s {
                        if let Some(name) = by_value.get(&v) {
                            fsm.reset_states.push((*name).to_string());
                        }
                    }
                }
                Next::All => {
                    fsm.over_approximated = true;
                    fsm.reset_states = def.variants.iter().map(|(n, _)| n.clone()).collect();
                }
            }
        }

        // per-state analysis of the next expression with reset = 0
        for (from_name, from_value) in &def.variants {
            let env = NodeEnv {
                nodes: node_map.clone(),
                reg: reg.as_str(),
                reg_width,
                state: *from_value,
                reset: reset_name.as_deref(),
                reset_value: 0,
            };
            match env.analyze(&next, 0) {
                Next::States(set) => {
                    for v in set {
                        if let Some(to_name) = by_value.get(&v) {
                            fsm.transitions
                                .push((from_name.clone(), (*to_name).to_string()));
                        }
                    }
                }
                Next::All => {
                    fsm.over_approximated = true;
                    for (to_name, _) in &def.variants {
                        fsm.transitions.push((from_name.clone(), to_name.clone()));
                    }
                }
            }
        }

        // instrumentation: one node for the next value, covers for states
        // and transitions
        let next_node = format!("_fsm_next_{reg}");
        let mut added: Vec<Stmt> = vec![Stmt::Node {
            name: next_node.clone(),
            value: next.clone(),
            info: Info::none(),
        }];
        let not_reset = reset_name
            .as_ref()
            .map(|r| Expr::not(Expr::r(r.clone())))
            .unwrap_or_else(Expr::one);
        for (state_name, value) in &fsm.states {
            added.push(Stmt::Cover {
                name: fsm.state_cover(state_name),
                clock: clock.clone(),
                pred: Expr::r(reg.clone()).eq_(&Expr::u(*value, reg_width)),
                enable: Expr::one(),
                info: Info::none(),
            });
        }
        for (from, to) in &fsm.transitions {
            let from_v = fsm.states[from];
            let to_v = fsm.states[to];
            let pred = Expr::and(
                Expr::r(reg.clone()).eq_(&Expr::u(from_v, reg_width)),
                Expr::r(&next_node).eq_(&Expr::u(to_v, reg_width)),
            );
            added.push(Stmt::Cover {
                name: fsm.transition_cover(from, to),
                clock: clock.clone(),
                pred,
                enable: not_reset.clone(),
                info: Info::none(),
            });
        }
        module.body.extend(added);
        info.fsms.push(fsm);
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    /// The paper's Figure 7 example: S ∈ {A, B, C},
    /// A: mux(in, A, B); B: mux(in, B, C); C: stays C.
    const FIG7: &str = "
; @enumdef S A=0,B=1,C=2
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input in : UInt<1>
    output o : UInt<2>
    reg state : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    when eq(state, UInt<2>(0)) :
      state <= mux(in, UInt<2>(0), UInt<2>(1))
    else when eq(state, UInt<2>(1)) :
      when in :
        state <= UInt<2>(1)
      else :
        state <= UInt<2>(2)
    o <= state
";

    fn run(src: &str) -> (Circuit, FsmCoverageInfo) {
        let mut c = passes::lower(parse(src).unwrap()).unwrap();
        let info = instrument_fsm_coverage(&mut c);
        (c, info)
    }

    #[test]
    fn figure7_transitions() {
        let (_, info) = run(FIG7);
        assert_eq!(info.fsms.len(), 1);
        let fsm = &info.fsms[0];
        assert!(!fsm.over_approximated, "{fsm:?}");
        assert_eq!(fsm.reset_states, vec!["A".to_string()]);
        let t: BTreeSet<(String, String)> = fsm.transitions.iter().cloned().collect();
        let expect: BTreeSet<(String, String)> =
            [("A", "A"), ("A", "B"), ("B", "B"), ("B", "C"), ("C", "C")]
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect();
        assert_eq!(t, expect);
    }

    #[test]
    fn covers_inserted_and_valid() {
        let (c, info) = run(FIG7);
        // 3 states + 5 transitions
        assert_eq!(info.cover_count(), 8);
        let mut covers = 0;
        c.top_module().for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Cover { .. }) {
                covers += 1;
            }
        });
        assert_eq!(covers, 8);
        assert!(passes::check::check(c).is_ok());
    }

    #[test]
    fn opaque_next_over_approximates() {
        // next state comes in from a port: analysis cannot resolve it
        let src = "
; @enumdef S A=0,B=1
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input nxt : UInt<1>
    output o : UInt<1>
    reg state : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))
    state <= nxt
    o <= state
";
        let (_, info) = run(src);
        let fsm = &info.fsms[0];
        assert!(fsm.over_approximated);
        // 2 states × 2 possible next = 4 transitions
        assert_eq!(fsm.transitions.len(), 4);
    }

    #[test]
    fn self_loop_only_when_never_assigned() {
        let src = "
; @enumdef S A=0,B=1
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<1>
    reg state : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))
    o <= state
";
        let (_, info) = run(src);
        let fsm = &info.fsms[0];
        assert!(!fsm.over_approximated);
        let t: BTreeSet<_> = fsm.transitions.iter().cloned().collect();
        assert_eq!(
            t,
            BTreeSet::from([
                ("A".to_string(), "A".to_string()),
                ("B".to_string(), "B".to_string())
            ])
        );
    }

    #[test]
    fn counts_in_simulation_shape() {
        // smoke: instrumented circuit passes full check and re-lowering
        let (c, _) = run(FIG7);
        assert!(passes::const_prop::const_prop(c).is_ok());
    }
}

//! Ready/valid (DecoupledIO) coverage (§4.4 of the paper).
//!
//! Runs *before* type lowering because it needs bundle structure: every
//! module port whose bundle contains `ready` and `valid` fields with
//! opposite flips (the Chisel `DecoupledIO` shape) gets a cover statement
//! counting cycles in which a transfer fires (`ready && valid`). Ports
//! explicitly marked with a `Decoupled` annotation are included as well.
//!
//! The paper built this metric in ~3 hours on top of the existing
//! machinery, as a demonstration that ecosystem-specific metrics are cheap
//! to add; it replaces what verification engineers would otherwise
//! hand-annotate as functional coverage.

use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::*;
use std::collections::BTreeMap;

/// Direction of a decoupled interface from the module's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoupledDir {
    /// The module consumes data (valid is an input).
    Sink,
    /// The module produces data (valid is an output).
    Source,
}

/// One detected decoupled interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoupledPort {
    /// Port name (pre-lowering).
    pub port: String,
    /// Interface direction.
    pub dir: DecoupledDir,
}

/// Metadata emitted by the ready/valid pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadyValidInfo {
    /// module → cover name → interface.
    pub modules: BTreeMap<String, BTreeMap<String, DecoupledPort>>,
}

impl ReadyValidInfo {
    /// Total number of inserted cover points.
    pub fn cover_count(&self) -> usize {
        self.modules.values().map(|m| m.len()).sum()
    }
}

fn find_ready_valid(ty: &Type) -> Option<bool> {
    // returns Some(valid_flipped) if this bundle is decoupled-shaped
    let Type::Bundle(fields) = ty else {
        return None;
    };
    let ready = fields.iter().find(|f| f.name == "ready")?;
    let valid = fields.iter().find(|f| f.name == "valid")?;
    if ready.ty != Type::bool() || valid.ty != Type::bool() {
        return None;
    }
    // ready flows against valid
    (ready.flip != valid.flip).then_some(valid.flip)
}

/// Instrument every decoupled interface in the circuit.
///
/// Must run before type lowering (bundle structure is required).
pub fn instrument_ready_valid_coverage(circuit: &mut Circuit) -> ReadyValidInfo {
    let mut info = ReadyValidInfo::default();
    let annotated: Vec<(String, String)> = circuit
        .annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::Decoupled { module, port } => Some((module.clone(), port.clone())),
            _ => None,
        })
        .collect();

    for module in circuit.modules.iter_mut() {
        let Some(clock) = module.clock() else {
            continue;
        };
        let mut minfo: BTreeMap<String, DecoupledPort> = BTreeMap::new();
        let mut added: Vec<Stmt> = Vec::new();
        for p in &module.ports {
            let structural = find_ready_valid(&p.ty);
            let forced = annotated
                .iter()
                .any(|(m, q)| m == &module.name && q == &p.name);
            let Some(valid_flipped) = structural.or(if forced { Some(false) } else { None }) else {
                continue;
            };
            let dir = match (p.dir, valid_flipped) {
                (Direction::Input, false) | (Direction::Output, true) => DecoupledDir::Sink,
                _ => DecoupledDir::Source,
            };
            let fire = Expr::r(&p.name)
                .field("valid")
                .and(&Expr::r(&p.name).field("ready"));
            let cover = format!("rv_{}", p.name);
            added.push(Stmt::Cover {
                name: cover.clone(),
                clock: clock.clone(),
                pred: fire,
                enable: Expr::one(),
                info: p.info.clone(),
            });
            minfo.insert(
                cover,
                DecoupledPort {
                    port: p.name.clone(),
                    dir,
                },
            );
        }
        if !minfo.is_empty() {
            module.body.extend(added);
            info.modules.insert(module.name.clone(), minfo);
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    const SRC: &str = "
circuit Q :
  module Q :
    input clock : Clock
    input reset : UInt<1>
    input enq : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<8> }
    output deq : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<8> }
    enq.ready <= deq.ready
    deq.valid <= enq.valid
    deq.bits <= enq.bits
";

    #[test]
    fn detects_both_directions() {
        let mut c = parse(SRC).unwrap();
        let info = instrument_ready_valid_coverage(&mut c);
        assert_eq!(info.cover_count(), 2);
        let m = &info.modules["Q"];
        assert_eq!(m["rv_enq"].dir, DecoupledDir::Sink);
        assert_eq!(m["rv_deq"].dir, DecoupledDir::Source);
    }

    #[test]
    fn instrumented_circuit_lowers() {
        let mut c = parse(SRC).unwrap();
        instrument_ready_valid_coverage(&mut c);
        let low = passes::lower(c).unwrap();
        let mut covers = Vec::new();
        low.top_module().for_each_stmt(&mut |s| {
            if let Stmt::Cover { name, .. } = s {
                covers.push(name.clone());
            }
        });
        assert_eq!(covers, vec!["rv_enq", "rv_deq"]);
    }

    #[test]
    fn ignores_non_decoupled_bundles() {
        let mut c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input io : { a : UInt<1>, b : UInt<1> }
    output o : UInt<1>
    o <= io.a
",
        )
        .unwrap();
        let info = instrument_ready_valid_coverage(&mut c);
        assert_eq!(info.cover_count(), 0);
    }

    #[test]
    fn same_flip_ready_valid_is_not_decoupled() {
        let mut c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input io : { ready : UInt<1>, valid : UInt<1> }
    output o : UInt<1>
    o <= io.valid
",
        )
        .unwrap();
        let info = instrument_ready_valid_coverage(&mut c);
        assert_eq!(info.cover_count(), 0);
    }
}

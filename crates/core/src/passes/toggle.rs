//! Toggle coverage instrumentation (§4.2 of the paper).
//!
//! Runs on the structural RTL *after* optimization (constant propagation
//! and dead-code elimination), so signals the optimizer removed are not
//! instrumented. For every selected signal the pass adds:
//!
//! * a register recording the signal's previous-cycle value,
//! * an xor gate detecting per-bit changes,
//! * one cover statement per bit,
//! * and a shared register that disables all toggle covers during the
//!   first cycle (the previous value is not valid yet).
//!
//! The global alias analysis (`rtlcov_firrtl::passes::alias`) restricts
//! instrumentation to one signal per always-equal group — the optimization
//! the paper calls out as necessary for toggle coverage to perform well.

use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::*;
use rtlcov_firrtl::passes::alias::{alias_analysis, AliasGroups};
use std::collections::BTreeMap;

/// Which signal classes to instrument (the paper lets the user choose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleOptions {
    /// Instrument module ports.
    pub ports: bool,
    /// Instrument registers.
    pub regs: bool,
    /// Instrument wires and named nodes.
    pub wires: bool,
    /// Use the global alias analysis to skip redundant signals
    /// (disable only for the ablation benchmark).
    pub use_alias_analysis: bool,
    /// Count rising and falling edges separately (two covers per bit) —
    /// the "simple extension" §4.2 sketches.
    pub split_edges: bool,
}

impl Default for ToggleOptions {
    fn default() -> Self {
        ToggleOptions {
            ports: true,
            regs: true,
            wires: true,
            use_alias_analysis: true,
            split_edges: false,
        }
    }
}

impl ToggleOptions {
    /// Instrument registers only.
    pub fn regs_only() -> Self {
        ToggleOptions {
            ports: false,
            regs: true,
            wires: false,
            ..ToggleOptions::default()
        }
    }

    /// Count rising and falling edges separately.
    pub fn with_split_edges(mut self) -> Self {
        self.split_edges = true;
        self
    }
}

/// Edge direction of a toggle cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ToggleEdge {
    /// Any change (the default single-cover-per-bit mode).
    #[default]
    Any,
    /// Zero-to-one transition.
    Rise,
    /// One-to-zero transition.
    Fall,
}

/// Metadata for one instrumented signal bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToggleTarget {
    /// Signal name within the module.
    pub signal: String,
    /// Bit index.
    pub bit: u32,
    /// Which edge this cover counts.
    pub edge: ToggleEdge,
}

/// Metadata emitted by the toggle pass, consumed by
/// [`crate::report::toggle`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ToggleCoverageInfo {
    /// module → cover name → target.
    pub modules: BTreeMap<String, BTreeMap<String, ToggleTarget>>,
    /// Signals skipped thanks to alias analysis (for the ablation report).
    pub alias_skipped: usize,
}

impl ToggleCoverageInfo {
    /// Total number of inserted cover points (one instantiation each).
    pub fn cover_count(&self) -> usize {
        self.modules.values().map(|m| m.len()).sum()
    }
}

/// Instrument toggle coverage over a fully lowered circuit.
///
/// # Errors
///
/// Propagates alias-analysis failures.
pub fn instrument_toggle_coverage(
    circuit: &mut Circuit,
    options: ToggleOptions,
) -> Result<ToggleCoverageInfo, rtlcov_firrtl::passes::PassError> {
    let alias: Option<AliasGroups> = if options.use_alias_analysis {
        Some(alias_analysis(circuit)?)
    } else {
        None
    };
    let mut info = ToggleCoverageInfo::default();
    if let Some(a) = &alias {
        info.alias_skipped = a.skipped_count();
    }

    // type environments need the whole circuit (instances reference other
    // modules), so compute them before mutating
    let reference = circuit.clone();
    let mut envs = std::collections::HashMap::new();
    for module in &reference.modules {
        if let Ok(env) = rtlcov_firrtl::typecheck::module_env(module, &reference) {
            envs.insert(module.name.clone(), env);
        }
    }

    // Phase 1: collect kind-filtered candidates per module.
    let mut per_module: BTreeMap<String, Vec<(String, u32, bool)>> = BTreeMap::new();
    for module in &reference.modules {
        if module.clock().is_none() {
            continue;
        }
        let mut candidates: Vec<(String, u32, bool)> = Vec::new();
        if options.ports {
            for p in &module.ports {
                if matches!(p.ty, Type::UInt(_) | Type::SInt(_)) {
                    if let Some(w) = p.ty.width() {
                        candidates.push((p.name.clone(), w, p.ty.is_signed()));
                    }
                }
            }
        }
        module.for_each_stmt(&mut |s| match s {
            Stmt::Reg { name, ty, .. } if options.regs => {
                if let Some(w) = ty.width() {
                    candidates.push((name.clone(), w, ty.is_signed()));
                }
            }
            Stmt::Wire { name, ty, .. } if options.wires => {
                if let Some(w) = ty.width() {
                    candidates.push((name.clone(), w, ty.is_signed()));
                }
            }
            // compiler-generated temporaries are not user signals;
            // width 0 is resolved via the type environment below
            Stmt::Node { name, .. } if options.wires && !name.starts_with('_') => {
                candidates.push((name.clone(), 0, false));
            }
            _ => {}
        });
        // resolve unknown node widths through the type environment
        let Some(env) = envs.get(&module.name) else {
            continue;
        };
        for cand in candidates.iter_mut() {
            if cand.1 == 0 {
                if let Some(Type::UInt(Some(w))) | Some(Type::SInt(Some(w))) = env.get(&cand.0) {
                    cand.1 = *w;
                    cand.2 = matches!(env.get(&cand.0), Some(Type::SInt(_)));
                }
            }
        }
        candidates.retain(|(_, w, _)| *w > 0);
        per_module.insert(module.name.clone(), candidates);
    }

    // Phase 2: alias-aware selection — at most one candidate per alias
    // group, preferring the group's true representative when it is among
    // the candidates (so the global reset lands in the top module).
    if let Some(a) = &alias {
        let mut group_taken: std::collections::HashSet<usize> = std::collections::HashSet::new();
        // representatives claim their group first
        for (module, candidates) in &per_module {
            for (name, _, _) in candidates {
                if let Some(g) = a.module_group(module, name) {
                    if a.is_representative(module, name) {
                        group_taken.insert(g);
                    }
                }
            }
        }
        let mut claimed: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (module, candidates) in per_module.iter_mut() {
            candidates.retain(|(name, _, _)| match a.module_group(module, name) {
                None => true,
                Some(g) => {
                    if a.is_representative(module, name) {
                        claimed.insert(g)
                    } else if group_taken.contains(&g) {
                        false
                    } else {
                        // no representative among the candidates: the first
                        // candidate of the group wins
                        claimed.insert(g)
                    }
                }
            });
        }
    }

    // Phase 3: instrument the selected candidates.
    for module in circuit.modules.iter_mut() {
        let Some(clock) = module.clock() else {
            continue;
        };
        let Some(candidates) = per_module.get(&module.name) else {
            continue;
        };
        if candidates.is_empty() {
            continue;
        }

        let mut minfo: BTreeMap<String, ToggleTarget> = BTreeMap::new();
        let mut added: Vec<Stmt> = Vec::new();

        // first-cycle disable register: 0 in cycle 0, 1 afterwards
        let en_name = "_tgl_en".to_string();
        added.push(Stmt::Reg {
            name: en_name.clone(),
            ty: Type::bool(),
            clock: clock.clone(),
            reset: None,
            info: Info::none(),
        });
        added.push(Stmt::Connect {
            loc: Expr::r(&en_name),
            value: Expr::one(),
            info: Info::none(),
        });

        for (signal, width, signed) in candidates {
            let sig_expr = if *signed {
                Expr::r(signal).as_uint()
            } else {
                Expr::r(signal)
            };
            let prev = format!("_tgl_prev_{}", sanitize(signal));
            added.push(Stmt::Reg {
                name: prev.clone(),
                ty: Type::uint(*width),
                clock: clock.clone(),
                reset: None,
                info: Info::none(),
            });
            added.push(Stmt::Connect {
                loc: Expr::r(&prev),
                value: sig_expr.clone(),
                info: Info::none(),
            });
            let xor_name = format!("_tgl_x_{}", sanitize(signal));
            added.push(Stmt::Node {
                name: xor_name.clone(),
                value: sig_expr.clone().xor(&Expr::r(&prev)),
                info: Info::none(),
            });
            for bit in 0..*width {
                if options.split_edges {
                    // rise: was 0, now 1; fall: was 1, now 0
                    let rise = format!("tr_{}_{}", sanitize(signal), bit);
                    added.push(Stmt::Cover {
                        name: rise.clone(),
                        clock: clock.clone(),
                        pred: Expr::and(sig_expr.bit(bit), Expr::not(Expr::r(&prev).bit(bit))),
                        enable: Expr::r(&en_name),
                        info: Info::none(),
                    });
                    minfo.insert(
                        rise,
                        ToggleTarget {
                            signal: signal.clone(),
                            bit,
                            edge: ToggleEdge::Rise,
                        },
                    );
                    let fall = format!("tf_{}_{}", sanitize(signal), bit);
                    added.push(Stmt::Cover {
                        name: fall.clone(),
                        clock: clock.clone(),
                        pred: Expr::and(Expr::not(sig_expr.bit(bit)), Expr::r(&prev).bit(bit)),
                        enable: Expr::r(&en_name),
                        info: Info::none(),
                    });
                    minfo.insert(
                        fall,
                        ToggleTarget {
                            signal: signal.clone(),
                            bit,
                            edge: ToggleEdge::Fall,
                        },
                    );
                    continue;
                }
                let cover = format!("t_{}_{}", sanitize(signal), bit);
                added.push(Stmt::Cover {
                    name: cover.clone(),
                    clock: clock.clone(),
                    pred: Expr::r(&xor_name).bit(bit),
                    enable: Expr::r(&en_name),
                    info: Info::none(),
                });
                minfo.insert(
                    cover,
                    ToggleTarget {
                        signal: signal.clone(),
                        bit,
                        edge: ToggleEdge::Any,
                    },
                );
            }
        }

        module.body.extend(added);
        info.modules.insert(module.name.clone(), minfo);
    }
    Ok(info)
}

fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn lowered(src: &str) -> Circuit {
        passes::lower(parse(src).unwrap()).unwrap()
    }

    const COUNTER: &str = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<2>
    reg r : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    when en :
      r <= tail(add(r, UInt<2>(1)), 1)
    o <= r
";

    #[test]
    fn adds_cover_per_bit() {
        let mut c = lowered(COUNTER);
        let info = instrument_toggle_coverage(&mut c, ToggleOptions::regs_only()).unwrap();
        // one 2-bit register => 2 covers
        assert_eq!(info.cover_count(), 2);
        let m = &info.modules["T"];
        assert_eq!(
            m["t_r_0"],
            ToggleTarget {
                signal: "r".into(),
                bit: 0,
                edge: ToggleEdge::Any
            }
        );
        assert_eq!(
            m["t_r_1"],
            ToggleTarget {
                signal: "r".into(),
                bit: 1,
                edge: ToggleEdge::Any
            }
        );
    }

    #[test]
    fn split_edges_doubles_covers() {
        let mut c = lowered(COUNTER);
        let info =
            instrument_toggle_coverage(&mut c, ToggleOptions::regs_only().with_split_edges())
                .unwrap();
        assert_eq!(info.cover_count(), 4);
        let m = &info.modules["T"];
        assert_eq!(m["tr_r_0"].edge, ToggleEdge::Rise);
        assert_eq!(m["tf_r_0"].edge, ToggleEdge::Fall);
        assert!(passes::check::check(c).is_ok());
        // the semantic (count) check lives in tests/full_pipeline.rs where
        // the simulator crates are available
    }

    #[test]
    fn instrumented_circuit_is_valid() {
        let mut c = lowered(COUNTER);
        instrument_toggle_coverage(&mut c, ToggleOptions::default()).unwrap();
        // re-checking the full pipeline must succeed
        assert!(passes::check::check(c).is_ok());
    }

    #[test]
    fn alias_analysis_reduces_covers() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    wire w : UInt<4>
    w <= a
    o <= w
";
        let mut with_alias = lowered(src);
        let with_info =
            instrument_toggle_coverage(&mut with_alias, ToggleOptions::default()).unwrap();
        let mut without_alias = lowered(src);
        let without_info = instrument_toggle_coverage(
            &mut without_alias,
            ToggleOptions {
                use_alias_analysis: false,
                ..ToggleOptions::default()
            },
        )
        .unwrap();
        assert!(with_info.cover_count() < without_info.cover_count());
        assert!(with_info.alias_skipped > 0);
    }

    #[test]
    fn first_cycle_is_not_counted() {
        use rtlcov_firrtl::eval::{eval, Value};
        use std::collections::HashMap;
        // Build + lower + manually check the `_tgl_en` structure: the
        // enable register starts at 0 so covers cannot fire in cycle 0.
        let mut c = lowered(COUNTER);
        instrument_toggle_coverage(&mut c, ToggleOptions::regs_only()).unwrap();
        let m = c.top_module();
        let mut found_en = false;
        m.for_each_stmt(&mut |s| {
            if let Stmt::Cover { enable, .. } = s {
                if let Expr::Ref(n) = enable {
                    found_en |= n == "_tgl_en";
                }
            }
        });
        assert!(found_en);
        // and _tgl_en is a register without reset driven by constant 1
        let mut ok = false;
        m.for_each_stmt(&mut |s| {
            if let Stmt::Connect { loc, value, .. } = s {
                if loc == &Expr::r("_tgl_en") {
                    ok = eval(value, &|_: &str| None::<Value>)
                        .map(|v| v.is_true())
                        .unwrap_or(false);
                }
            }
        });
        assert!(ok);
        let _ = HashMap::<String, Value>::new();
    }

    #[test]
    fn clockless_module_skipped() {
        let mut c = lowered(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    o <= a
",
        );
        let info = instrument_toggle_coverage(&mut c, ToggleOptions::default()).unwrap();
        assert_eq!(info.cover_count(), 0);
    }
}

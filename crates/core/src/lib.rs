//! # rtlcov-core
//!
//! The paper's primary contribution (*Simulator Independent Coverage for
//! RTL Hardware Languages*, ASPLOS 2023): automated coverage metrics
//! implemented as compiler passes over the FIRRTL IR, lowered to a single
//! `cover` primitive, plus simulator-independent report generators.
//!
//! * [`instrument::CoverageCompiler`] — the pipeline: pick metrics, get a
//!   backend-ready lowered circuit plus metadata;
//! * [`passes`] — line/branch (§4.1), toggle (§4.2), FSM (§4.3),
//!   ready/valid (§4.4) instrumentation, and §5.3 cover removal;
//! * [`report`] — ASCII report generators joining metadata with counts;
//! * [`map::CoverageMap`] — the `cover-name → count` interchange format
//!   shared by every backend, with trivial merging;
//! * [`cover_values`] — the §6 `cover-values` extension and its
//!   exponential plain-cover lowering.
//!
//! ```
//! use rtlcov_core::instrument::{CoverageCompiler, Metrics};
//!
//! let circuit = rtlcov_firrtl::parser::parse("
//! circuit Gcd :
//!   module Gcd :
//!     input clock : Clock
//!     input a : UInt<4>
//!     output o : UInt<4>
//!     o <= UInt<4>(0)
//!     when gt(a, UInt<4>(7)) :
//!       o <= a
//! ").unwrap();
//! let instrumented = CoverageCompiler::new(Metrics::line_only())
//!     .run(circuit)
//!     .unwrap();
//! assert_eq!(instrumented.artifacts.line.cover_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod cover_values;
pub mod instances;
pub mod instrument;
pub mod json;
pub mod map;
pub mod report;

/// Coverage instrumentation passes.
pub mod passes {
    pub mod fsm;
    pub mod line;
    pub mod ready_valid;
    pub mod remove;
    pub mod toggle;
}

pub use instrument::{CoverageCompiler, Metrics};
pub use map::CoverageMap;

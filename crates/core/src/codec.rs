//! Compact binary codec for [`CoverageMap`] shards.
//!
//! Campaigns persist one `CoverageMap` per (design, workload-shard,
//! backend) job so runs are resumable and maps produced on different
//! machines or backends can be merged offline (§5.3). JSON stays the
//! human-readable interchange format; this codec is the compact on-disk
//! twin. Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RCOV"
//! 4       2     format version (currently 1)
//! 6       2     reserved flags (must be 0)
//! 8       8     entry count
//! 16      —     entries: name_len u32, name bytes (UTF-8), count u64
//! ```
//!
//! Decoding never panics: truncated input, a bad magic, an unsupported
//! version, duplicate entry names, or trailing bytes all surface as a
//! [`CodecError`].

use crate::map::CoverageMap;
use std::fmt;

/// The four magic bytes opening every binary shard.
pub const MAGIC: [u8; 4] = *b"RCOV";

/// The format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Why a byte slice failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field being read was complete.
    Truncated {
        /// What was being read when the input ran out.
        reading: &'static str,
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header version is not [`VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The reserved flags field is non-zero (written by a newer format).
    UnsupportedFlags(u16),
    /// A cover-point name is not valid UTF-8.
    InvalidName {
        /// Index of the offending entry.
        entry: u64,
    },
    /// Two entries carry the same name. [`encode`] never writes such a
    /// shard, so a duplicate means the bytes were corrupted or hand-built
    /// — decoding refuses rather than silently combining the counts.
    DuplicateName {
        /// Index of the second occurrence.
        entry: u64,
    },
    /// Bytes remain after the advertised entry count was read.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        offset: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { reading, offset } => {
                write!(
                    f,
                    "truncated input while reading {reading} at byte {offset}"
                )
            }
            CodecError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported shard format version {found} (this build reads {VERSION})"
                )
            }
            CodecError::UnsupportedFlags(flags) => {
                write!(f, "unsupported shard flags {flags:#06x}")
            }
            CodecError::InvalidName { entry } => {
                write!(f, "entry {entry} has a non-UTF-8 name")
            }
            CodecError::DuplicateName { entry } => {
                write!(f, "entry {entry} repeats an earlier entry's name")
            }
            CodecError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the last entry at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a map into the binary shard format.
pub fn encode(map: &CoverageMap) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + map.len() * 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(map.len() as u64).to_le_bytes());
    for (name, count) in map.iter() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&count.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(CodecError::Truncated {
                reading,
                offset: self.bytes.len(),
            }),
        }
    }

    fn u16(&mut self, reading: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2, reading)?.try_into().expect("len 2"),
        ))
    }

    fn u32(&mut self, reading: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, reading)?.try_into().expect("len 4"),
        ))
    }

    fn u64(&mut self, reading: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, reading)?.try_into().expect("len 8"),
        ))
    }
}

/// Decode a binary shard produced by [`encode`].
///
/// # Errors
///
/// Any malformed input returns a [`CodecError`]; this function never
/// panics on untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<CoverageMap, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic.try_into().expect("len 4")));
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let flags = r.u16("flags")?;
    if flags != 0 {
        return Err(CodecError::UnsupportedFlags(flags));
    }
    let entries = r.u64("entry count")?;
    let mut map = CoverageMap::new();
    for entry in 0..entries {
        let name_len = r.u32("entry name length")? as usize;
        let name = std::str::from_utf8(r.take(name_len, "entry name")?)
            .map_err(|_| CodecError::InvalidName { entry })?;
        let count = r.u64("entry count value")?;
        if map.contains(name) {
            return Err(CodecError::DuplicateName { entry });
        }
        // record(_, 0) still inserts the key, so unhit points stay declared
        map.record(name, count);
    }
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes { offset: r.pos });
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoverageMap {
        let mut m = CoverageMap::new();
        m.record("top.cover_0", 42);
        m.record("top.sub.cover_1", u64::MAX);
        m.declare("top.never_hit");
        m
    }

    #[test]
    fn binary_roundtrip() {
        let m = sample();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
        assert_eq!(
            decode(&encode(&CoverageMap::new())).unwrap(),
            CoverageMap::new()
        );
    }

    #[test]
    fn json_and_binary_agree() {
        let m = sample();
        let via_json = CoverageMap::from_json(&m.to_json()).unwrap();
        let via_binary = decode(&encode(&m)).unwrap();
        assert_eq!(via_json, via_binary);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode(&sample());
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(CodecError::UnsupportedVersion { found: 2 })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let mut bytes = encode(&sample());
        bytes[6] = 1;
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedFlags(1)));
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]);
            assert!(
                matches!(err, Err(CodecError::Truncated { .. })),
                "prefix of length {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversized_advertised_count_is_truncation_not_panic() {
        // header claims u64::MAX entries but carries none
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn huge_name_length_is_truncation_not_panic() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn duplicate_names_are_rejected_not_combined() {
        // hand-build a shard whose two entries share the name "a"
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        for count in [3u64, 4u64] {
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.push(b'a');
            bytes.extend_from_slice(&count.to_le_bytes());
        }
        assert_eq!(decode(&bytes), Err(CodecError::DuplicateName { entry: 1 }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(CodecError::TrailingBytes { .. })
        ));
    }
}

//! The `cover-values` primitive and its exponential lowering (§6).
//!
//! The paper's limitation section: covering every value of a `w`-bit signal
//! with plain `cover` statements requires `2^w` of them — exponential
//! blowup — while a dedicated `cover-values` primitive indexes an array of
//! counters (software) or a block RAM (FPGA). Our IR carries
//! `cover_values` natively and every backend implements it; this module
//! provides the *lowering* to plain covers so Figure 12 can compare both.

use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::*;

/// Maximum signal width accepted by the exponential lowering (2^16 covers).
pub const MAX_LOWERED_WIDTH: u32 = 16;

/// Replace every `cover_values` statement with `2^w` plain cover
/// statements named `name[v]` (matching the runtime naming of the native
/// primitive, so reports are interchangeable).
///
/// # Errors
///
/// Fails if a signal is wider than [`MAX_LOWERED_WIDTH`] — the blowup the
/// primitive exists to avoid.
pub fn lower_cover_values(circuit: &mut Circuit) -> Result<usize, String> {
    let reference = circuit.clone();
    let mut total = 0usize;
    for module in circuit.modules.iter_mut() {
        let env = rtlcov_firrtl::typecheck::module_env(module, &reference).map_err(|e| e.0)?;
        let body = std::mem::take(&mut module.body);
        let mut out = Vec::with_capacity(body.len());
        for s in body {
            match s {
                Stmt::CoverValues {
                    name,
                    clock,
                    signal,
                    enable,
                    info,
                } => {
                    let ty = rtlcov_firrtl::typecheck::expr_type(&signal, &env).map_err(|e| e.0)?;
                    let w = ty
                        .width()
                        .ok_or_else(|| format!("`{name}` has unknown width"))?;
                    if w > MAX_LOWERED_WIDTH {
                        return Err(format!(
                            "cover_values `{name}` covers a {w}-bit signal: 2^{w} covers would \
                             be required (the exponential blowup of §6); keep the native \
                             primitive instead"
                        ));
                    }
                    for v in 0..(1u64 << w) {
                        out.push(Stmt::Cover {
                            name: format!("{name}[{v}]"),
                            clock: clock.clone(),
                            pred: signal.eq_(&Expr::u(v, w)),
                            enable: enable.clone(),
                            info: info.clone(),
                        });
                        total += 1;
                    }
                }
                other => out.push(other),
            }
        }
        module.body = out;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;

    const SRC: &str = "
circuit T :
  module T :
    input clock : Clock
    input v : UInt<3>
    cover_values(clock, v, UInt<1>(1)) : vals
";

    #[test]
    fn lowers_to_exponentially_many_covers() {
        let mut c = parse(SRC).unwrap();
        let n = lower_cover_values(&mut c).unwrap();
        assert_eq!(n, 8);
        let mut names = Vec::new();
        c.top_module().for_each_stmt(&mut |s| {
            if let Stmt::Cover { name, .. } = s {
                names.push(name.clone());
            }
        });
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"vals[0]".to_string()));
        assert!(names.contains(&"vals[7]".to_string()));
    }

    #[test]
    fn rejects_wide_signals() {
        let mut c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input v : UInt<24>
    cover_values(clock, v, UInt<1>(1)) : vals
",
        )
        .unwrap();
        let err = lower_cover_values(&mut c).unwrap_err();
        assert!(err.contains("exponential"), "{err}");
    }
}

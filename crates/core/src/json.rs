//! A minimal JSON reader/writer for the interchange formats.
//!
//! The coverage interchange files only ever contain objects, strings, and
//! unsigned integers (counts are `u64`, which a float-based JSON number
//! representation would silently corrupt above 2^53). This module
//! implements exactly that subset — plus arrays, booleans, and `null` for
//! forward compatibility — with no external dependencies, since this
//! workspace builds fully offline.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are restricted to unsigned integers,
/// which keeps `u64` counts exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (the only number form coverage files use).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved via `BTreeMap` (sorted), which is
    /// also the order [`CoverageMap`](crate::CoverageMap) iterates in.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The integer value, if this is a `UInt`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Error from [`parse`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input where it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document (the subset described in the module docs).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input,
/// non-integer numbers, or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.error("negative numbers are not part of the coverage format")),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("non-integer numbers are not part of the coverage format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| self.error("integer overflows u64"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" { "version": 1, "name": "a\"b\\c", "items": [1, 2, 3], "ok": true,
                       "nothing": null, "empty": {} } "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a\"b\\c"));
        assert_eq!(
            v.get("items").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Json::Null));
        assert_eq!(
            v.get("empty").and_then(Json::as_object).map(BTreeMap::len),
            Some(0)
        );
    }

    #[test]
    fn display_roundtrips() {
        let doc = r#"{"a":{"x":18446744073709551615},"b":[true,false,null],"s":"line\nbreak"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // u64::MAX survives exactly (a float representation would not)
        assert_eq!(
            v.get("a").unwrap().get("x").and_then(Json::as_u64),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "1.5",
            "-3",
            "{\"a\":1} extra",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let mut buf = String::new();
        write_escaped(&mut buf, "tab\there\u{1}");
        assert_eq!(buf, "\"tab\\there\\u0001\"");
        let back = parse(&buf).unwrap();
        assert_eq!(back.as_str(), Some("tab\there\u{1}"));
    }
}

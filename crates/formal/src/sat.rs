//! A from-scratch CDCL SAT solver (the engine behind the SymbiYosys-analog
//! backend).
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis
//! with clause learning, VSIDS-style activity ordering, geometric
//! restarts, and incremental solving under assumptions (used by the BMC
//! loop to query one cover point at a time over a shared unrolling).

use std::fmt;

/// A propositional variable (0-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this is a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// Result of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (read it with [`Solver::value`]).
    Sat,
    /// No satisfying assignment under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
}

/// The CDCL solver.
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit] = clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    assigns: Vec<Assign>,
    /// decision level per variable.
    level: Vec<u32>,
    /// implying clause per variable (u32::MAX for decisions).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// heap-less VSIDS: sorted retry list rebuilt on restart
    order: Vec<Var>,
    conflicts: u64,
    /// total conflict budget per solve call
    budget: u64,
}

const NO_REASON: u32 = u32::MAX;

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.assigns.len())
            .field("clauses", &self.clauses.len())
            .field("learned", &self.num_learned())
            .field("conflicts", &self.conflicts)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            queue_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: Vec::new(),
            conflicts: 0,
            budget: u64::MAX,
        }
    }

    /// Limit the number of conflicts per solve (returns `Unknown` past it).
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Total conflicts encountered across all solve calls so far — the
    /// cost meter fuel-budgeted BMC runs account against.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(v);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (including learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learned (conflict-derived) clauses.
    pub fn num_learned(&self) -> usize {
        self.clauses.iter().filter(|c| c.learned).count()
    }

    /// Add a clause (empty clause makes the instance trivially unsat).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at the root");
        lits.sort_by_key(|l| l.0);
        lits.dedup();
        // tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        // strip root-level falsified literals; satisfied clause is dropped
        let mut filtered = Vec::with_capacity(lits.len());
        for l in lits {
            match self.lit_value(l) {
                Assign::True => return,
                Assign::False => {}
                Assign::Unassigned => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                // conflict at root: encode as two contradictory units on a
                // fresh variable so solve() reports unsat
                let v = self.new_var();
                self.clauses.push(Clause {
                    lits: vec![Lit::pos(v)],
                    learned: false,
                });
                self.clauses.push(Clause {
                    lits: vec![Lit::neg(v)],
                    learned: false,
                });
                let last = self.clauses.len();
                self.attach(last as u32 - 2);
                self.attach(last as u32 - 1);
            }
            1 => {
                let _ = self.enqueue(filtered[0], NO_REASON);
            }
            _ => {
                self.clauses.push(Clause {
                    lits: filtered,
                    learned: false,
                });
                self.attach(self.clauses.len() as u32 - 1);
            }
        }
    }

    fn attach(&mut self, ci: u32) {
        let c = &self.clauses[ci as usize];
        if c.lits.len() >= 2 {
            let (w0, w1) = (c.lits[0], c.lits[1]);
            self.watches[w0.negate().index()].push(ci);
            self.watches[w1.negate().index()].push(ci);
        } else if c.lits.len() == 1 {
            // unit clauses watched via their only literal's negation
            let w0 = c.lits[0];
            self.watches[w0.negate().index()].push(ci);
        }
    }

    fn lit_value(&self, l: Lit) -> Assign {
        match self.assigns[l.var().0 as usize] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Assign::True => true,
            Assign::False => false,
            Assign::Unassigned => {
                let v = l.var().0 as usize;
                self.assigns[v] = if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagate; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[p.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // ensure lits[1] is the falsified watch (¬p is false)
                let false_lit = p.negate();
                {
                    let clause = &mut self.clauses[ci as usize];
                    if clause.lits.len() >= 2 && clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                // satisfied through the other watch?
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == Assign::True {
                    i += 1;
                    continue;
                }
                // find a new literal to watch
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci as usize].lits[k];
                    if self.lit_value(cand) != Assign::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[cand.negate().index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // unit or conflict
                if !self.enqueue(first, ci) {
                    // conflict: put the remaining watches back
                    self.watches[p.index()].extend_from_slice(&watch_list);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[p.index()] = watch_list;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backtrack lvl).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = confl;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = &self.clauses[ci as usize];
            let start = if p.is_some() { 1 } else { 0 };
            let lits: Vec<Lit> = clause.lits[start.min(clause.lits.len())..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // next literal on the trail to resolve on
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var();
            seen[pv.0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.expect("found above").negate();
                break;
            }
            ci = self.reason[pv.0 as usize];
            debug_assert_ne!(ci, NO_REASON);
            // put the resolved-on literal first for the skip logic above
            let clause = &mut self.clauses[ci as usize];
            if let Some(pos) = clause.lits.iter().position(|l| l.var() == pv) {
                clause.lits.swap(0, pos);
            }
        }

        // backtrack level = max level among learned[1..]
        let bt = learned[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // move a literal of level bt into position 1 for watching
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|l| self.level[l.var().0 as usize] == bt)
                .expect("max exists")
                + 1;
            learned.swap(1, pos);
        }
        (learned, bt)
    }

    fn backtrack(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().expect("level > 0");
            for l in self.trail.drain(lim..) {
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unassigned;
                self.reason[v] = NO_REASON;
            }
        }
        self.queue_head = self.trail.len().min(self.queue_head);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // highest-activity unassigned variable
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v] == Assign::Unassigned {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((Var(v as u32), a));
                }
            }
        }
        best.map(|(v, _)| Lit::neg(v)) // negative-first polarity
    }

    /// Solve under assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.backtrack(0);
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        let solve_budget = self.conflicts.saturating_add(self.budget);

        loop {
            // (re)establish assumptions as pseudo-decisions
            while self.decision_level() < assumptions.len() as u32 {
                let a = assumptions[self.decision_level() as usize];
                match self.lit_value(a) {
                    Assign::True => {
                        // already implied: open an empty level to keep the
                        // level/assumption indexing aligned
                        self.trail_lim.push(self.trail.len());
                    }
                    Assign::False => return SatResult::Unsat,
                    Assign::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, NO_REASON);
                        debug_assert!(ok);
                    }
                }
                if let Some(confl) = self.propagate() {
                    // conflict among assumptions
                    if self.decision_level() <= assumptions.len() as u32 {
                        let _ = confl;
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                }
            }

            match self.propagate() {
                Some(confl) => {
                    self.conflicts += 1;
                    if self.conflicts >= solve_budget {
                        self.backtrack(0);
                        return SatResult::Unknown;
                    }
                    if self.decision_level() <= assumptions.len() as u32 {
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                    let (learned, bt) = self.analyze(confl);
                    let bt = bt.max(assumptions.len() as u32);
                    self.backtrack(bt);
                    let unit = learned[0];
                    if learned.len() == 1 {
                        self.backtrack(assumptions.len() as u32);
                        if !self.enqueue(unit, NO_REASON) {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                    } else {
                        self.clauses.push(Clause {
                            lits: learned,
                            learned: true,
                        });
                        let ci = self.clauses.len() as u32 - 1;
                        self.attach(ci);
                        if !self.enqueue(unit, ci) {
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                    }
                    self.var_inc *= 1.05;
                }
                None => match self.pick_branch() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, NO_REASON);
                        debug_assert!(ok);
                    }
                },
            }
        }
    }

    /// Solve without assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Value of a variable in the current model (after `Sat`).
    pub fn value(&self, v: Var) -> bool {
        self.assigns[v.0 as usize] == Assign::True
    }

    /// Value of a literal in the current model.
    pub fn lit_is_true(&self, l: Lit) -> bool {
        self.lit_value(l) == Assign::True
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(solver.new_var())).collect()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![v[0], v[1]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.lit_is_true(v[0]) || s.lit_is_true(v[1]));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(vec![v[0]]);
        s.add_clause(vec![!v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn chain_implications() {
        // x0 & (x0->x1) & (x1->x2) & ... & (xn -> !x0) is unsat
        let mut s = Solver::new();
        let v = lits(&mut s, 12);
        s.add_clause(vec![v[0]]);
        for i in 0..11 {
            s.add_clause(vec![!v[i], v[i + 1]]);
        }
        s.add_clause(vec![!v[11], !v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2() {
        // 3 pigeons, 2 holes: unsat; requires real conflict analysis
        let mut s = Solver::new();
        let mut p = [[Lit(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = Lit::pos(s.new_var());
            }
        }
        for pi in &p {
            s.add_clause(vec![pi[0], pi[1]]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(vec![!p[a][j], !p[b][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x ^ y = 1, y ^ z = 1, x ^ z = 0 — satisfiable
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Lit, b: Lit| {
            // a ^ b = 1: (a|b) & (!a|!b)
            s.add_clause(vec![a, b]);
            s.add_clause(vec![!a, !b]);
        };
        let xor0 = |s: &mut Solver, a: Lit, b: Lit| {
            // a ^ b = 0: (a|!b) & (!a|b)
            s.add_clause(vec![a, !b]);
            s.add_clause(vec![!a, b]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xor0(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SatResult::Sat);
        let (x, y, z) = (
            s.lit_is_true(v[0]),
            s.lit_is_true(v[1]),
            s.lit_is_true(v[2]),
        );
        assert!(x ^ y);
        assert!(y ^ z);
        assert!(!(x ^ z));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![!v[0], v[1]]);
        s.add_clause(vec![!v[1], !v[0]]);
        // free: sat
        assert_eq!(s.solve(), SatResult::Sat);
        // assume x0: forces x1 and !x1... wait: x0->x1 and (x1 -> !x0)
        assert_eq!(s.solve_with_assumptions(&[v[0]]), SatResult::Unsat);
        // still sat without assumptions afterwards (incremental reuse)
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SatResult::Sat);
    }

    #[test]
    fn random_3sat_solvable_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..10 {
            let n = 30;
            let mut s = Solver::new();
            let v = lits(&mut s, n);
            // plant a solution, generate clauses consistent with it
            let planted: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            for _ in 0..120 {
                let mut clause = Vec::new();
                let mut satisfied = false;
                for _ in 0..3 {
                    let i = rng.gen_range(0..n);
                    let neg = rng.gen::<bool>();
                    let lit = if neg { !v[i] } else { v[i] };
                    satisfied |= planted[i] != neg;
                    clause.push(lit);
                }
                if !satisfied {
                    // flip one literal to keep the planted model valid
                    let i = rng.gen_range(0..n);
                    clause[0] = if planted[i] { v[i] } else { !v[i] };
                }
                s.add_clause(clause);
            }
            assert_eq!(s.solve(), SatResult::Sat, "round {round}");
        }
    }

    #[test]
    fn budget_gives_unknown_or_answer() {
        let mut s = Solver::new();
        // hard-ish pigeonhole 6 into 5
        let n_p = 6;
        let n_h = 5;
        let mut p = vec![vec![Lit(0); n_h]; n_p];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..n_h {
            for a in 0..n_p {
                for b in (a + 1)..n_p {
                    s.add_clause(vec![!p[a][j], !p[b][j]]);
                }
            }
        }
        s.set_conflict_budget(10);
        let r = s.solve();
        assert!(matches!(r, SatResult::Unknown | SatResult::Unsat));
    }
}

//! # rtlcov-formal
//!
//! The formal-verification backend (SymbiYosys analog, §3.4/§5.5): a
//! from-scratch CDCL [`sat::Solver`], a bit-blaster from the flat netlist
//! to CNF, and a bounded model checker that finds input traces reaching
//! cover statements or proves them unreachable within a bound.

#![warn(missing_docs)]

pub mod bmc;
pub mod encode;
pub mod sat;

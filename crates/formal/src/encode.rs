//! Bit-blasting the flat netlist into CNF (Tseitin encoding).
//!
//! Words are little-endian vectors of literals. The encoding mirrors the
//! FIRRTL width semantics implemented by `rtlcov_firrtl::eval` exactly, so
//! a SAT model replayed on a software simulator reproduces the same
//! behavior — the property the BMC trace tests rely on.

use crate::sat::{Lit, Solver};
use rtlcov_firrtl::ir::{Expr, PrimOp};
use std::collections::HashMap;
use std::fmt;

/// A bit vector of literals, LSB first.
pub type Word = Vec<Lit>;

/// Error produced during encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError(pub String);

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "encode error: {}", self.0)
    }
}

impl std::error::Error for EncodeError {}

/// CNF builder with gate helpers on top of the SAT solver.
pub struct Encoder {
    /// The underlying solver.
    pub solver: Solver,
    true_lit: Lit,
}

impl fmt::Debug for Encoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Encoder")
            .field("solver", &self.solver)
            .finish()
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// A fresh encoder with a constant-true literal.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause(vec![t]);
        Encoder {
            solver,
            true_lit: t,
        }
    }

    /// The constant-true literal.
    pub fn tru(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn fls(&self) -> Lit {
        !self.true_lit
    }

    /// A fresh free literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// A fresh free word of `w` bits.
    pub fn fresh_word(&mut self, w: u32) -> Word {
        (0..w.max(1)).map(|_| self.fresh()).collect()
    }

    /// A constant word.
    pub fn const_word(&self, value: u64, w: u32) -> Word {
        (0..w.max(1) as usize)
            .map(|i| {
                if i < 64 && (value >> i) & 1 == 1 {
                    self.tru()
                } else {
                    self.fls()
                }
            })
            .collect()
    }

    /// `c = a & b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        if a == self.fls() || b == self.fls() {
            return self.fls();
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.fls();
        }
        let c = self.fresh();
        self.solver.add_clause(vec![!c, a]);
        self.solver.add_clause(vec![!c, b]);
        self.solver.add_clause(vec![c, !a, !b]);
        c
    }

    /// `c = a | b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `c = a ^ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.true_lit {
            return !b;
        }
        if a == self.fls() {
            return b;
        }
        if b == self.true_lit {
            return !a;
        }
        if b == self.fls() {
            return a;
        }
        if a == b {
            return self.fls();
        }
        if a == !b {
            return self.tru();
        }
        let c = self.fresh();
        self.solver.add_clause(vec![!c, a, b]);
        self.solver.add_clause(vec![!c, !a, !b]);
        self.solver.add_clause(vec![c, !a, b]);
        self.solver.add_clause(vec![c, a, !b]);
        c
    }

    /// `c = s ? a : b`.
    pub fn mux(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        if s == self.true_lit {
            return a;
        }
        if s == self.fls() {
            return b;
        }
        if a == b {
            return a;
        }
        let c = self.fresh();
        self.solver.add_clause(vec![!s, !c, a]);
        self.solver.add_clause(vec![!s, c, !a]);
        self.solver.add_clause(vec![s, !c, b]);
        self.solver.add_clause(vec![s, c, !b]);
        c
    }

    /// OR of many literals.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.fls();
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// AND of many literals.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.tru();
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    // -------------------------------------------------------- word ops --

    /// Zero-extend or truncate.
    pub fn zext(&self, a: &Word, w: u32) -> Word {
        let mut out = a.clone();
        out.truncate(w.max(1) as usize);
        while out.len() < w.max(1) as usize {
            out.push(self.fls());
        }
        out
    }

    /// Sign-extend or truncate.
    pub fn sext(&self, a: &Word, w: u32) -> Word {
        let sign = *a.last().expect("words are non-empty");
        let mut out = a.clone();
        out.truncate(w.max(1) as usize);
        while out.len() < w.max(1) as usize {
            out.push(sign);
        }
        out
    }

    fn extend(&self, a: &Word, w: u32, signed: bool) -> Word {
        if signed {
            self.sext(a, w)
        } else {
            self.zext(a, w)
        }
    }

    /// Zero- or sign-extend/truncate to a target width.
    pub fn extend_pub(&self, a: &Word, w: u32, signed: bool) -> Word {
        self.extend(a, w, signed)
    }

    /// Ripple-carry sum with carry-in; result has the width of `a`/`b`.
    fn adder(&mut self, a: &Word, b: &Word, carry_in: Lit) -> Word {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry = carry_in;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
        }
        out
    }

    /// FIRRTL `add`: width `max + 1`.
    pub fn add(&mut self, a: &Word, b: &Word, signed: bool) -> Word {
        let w = a.len().max(b.len()) as u32 + 1;
        let ax = self.extend(a, w, signed);
        let bx = self.extend(b, w, signed);
        let f = self.fls();
        self.adder(&ax, &bx, f)
    }

    /// FIRRTL `sub`: `a + ~b + 1` at width `max + 1`.
    pub fn sub(&mut self, a: &Word, b: &Word, signed: bool) -> Word {
        let w = a.len().max(b.len()) as u32 + 1;
        let ax = self.extend(a, w, signed);
        let bx: Word = self.extend(b, w, signed).iter().map(|&l| !l).collect();
        let t = self.tru();
        self.adder(&ax, &bx, t)
    }

    /// Shift-and-add multiplier: width `wa + wb`.
    pub fn mul(&mut self, a: &Word, b: &Word, signed: bool) -> Word {
        let w = (a.len() + b.len()) as u32;
        let ax = self.extend(a, w, signed);
        let bx = self.extend(b, w, signed);
        let mut acc = self.const_word(0, w);
        for (i, &bit) in bx.iter().enumerate() {
            let mut partial: Word = vec![self.fls(); i];
            for &abit in &ax[..w as usize - i] {
                partial.push(self.and(abit, bit));
            }
            let f = self.fls();
            acc = self.adder(&acc, &partial, f);
        }
        acc
    }

    /// Unsigned less-than via subtract-borrow.
    pub fn ult(&mut self, a: &Word, b: &Word) -> Lit {
        let w = a.len().max(b.len()) as u32;
        let ax = self.zext(a, w);
        let bx = self.zext(b, w);
        // carry out of a + ~b + 1 is 1 iff a >= b
        let nb: Word = bx.iter().map(|&l| !l).collect();
        let mut carry = self.tru();
        for (&x, &y) in ax.iter().zip(nb.iter()) {
            let xy = self.xor(x, y);
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
        }
        !carry
    }

    /// Signed less-than (flip sign bits, compare unsigned).
    pub fn slt(&mut self, a: &Word, b: &Word) -> Lit {
        let w = a.len().max(b.len()) as u32;
        let mut ax = self.sext(a, w);
        let mut bx = self.sext(b, w);
        let top = w as usize - 1;
        ax[top] = !ax[top];
        bx[top] = !bx[top];
        self.ult(&ax, &bx)
    }

    /// Equality at equal widths.
    pub fn eq_word(&mut self, a: &Word, b: &Word) -> Lit {
        let w = a.len().max(b.len()) as u32;
        let ax = self.zext(a, w);
        let bx = self.zext(b, w);
        let mut acc = self.tru();
        for (&x, &y) in ax.iter().zip(bx.iter()) {
            let ne = self.xor(x, y);
            acc = self.and(acc, !ne);
        }
        acc
    }

    /// Per-bit mux of words.
    pub fn mux_word(&mut self, s: Lit, a: &Word, b: &Word, signed: bool) -> Word {
        let w = a.len().max(b.len()) as u32;
        let ax = self.extend(a, w, signed);
        let bx = self.extend(b, w, signed);
        ax.iter()
            .zip(bx.iter())
            .map(|(&x, &y)| self.mux(s, x, y))
            .collect()
    }

    /// Dynamic left shift by `amount`, result width `w`.
    pub fn dshl(&mut self, a: &Word, amount: &Word, w: u32) -> Word {
        let mut cur = self.zext(a, w);
        for (i, &abit) in amount.iter().enumerate() {
            let shift = 1usize << i.min(20);
            let shifted: Word = (0..w as usize)
                .map(|k| {
                    if k >= shift {
                        cur[k - shift]
                    } else {
                        self.fls()
                    }
                })
                .collect();
            cur = cur
                .iter()
                .zip(shifted.iter())
                .map(|(&keep, &sh)| self.mux(abit, sh, keep))
                .collect();
        }
        cur
    }

    /// Dynamic right shift, logical or arithmetic; result width = input.
    pub fn dshr(&mut self, a: &Word, amount: &Word, arithmetic: bool) -> Word {
        let w = a.len();
        let fill = if arithmetic {
            *a.last().expect("non-empty")
        } else {
            self.fls()
        };
        let mut cur = a.clone();
        for (i, &abit) in amount.iter().enumerate() {
            let shift = 1usize << i.min(20);
            let shifted: Word = (0..w)
                .map(|k| if k + shift < w { cur[k + shift] } else { fill })
                .collect();
            cur = cur
                .iter()
                .zip(shifted.iter())
                .map(|(&keep, &sh)| self.mux(abit, sh, keep))
                .collect();
        }
        cur
    }

    /// Model value of a word after `Sat` (low 64 bits).
    pub fn word_value(&self, w: &Word) -> u64 {
        let mut v = 0u64;
        for (i, &l) in w.iter().enumerate().take(64) {
            if self.solver.lit_is_true(l) {
                v |= 1 << i;
            }
        }
        v
    }
}

/// Encode an expression over an environment of named words.
///
/// Returns `(word, signed)` following the FIRRTL width rules.
///
/// # Errors
///
/// Fails on unbound names and on `div`/`rem` (unsupported in the formal
/// backend; none of the formal targets use them).
pub fn encode_expr(
    enc: &mut Encoder,
    e: &Expr,
    env: &HashMap<String, (Word, bool)>,
) -> Result<(Word, bool), EncodeError> {
    match e {
        Expr::Ref(n) => env
            .get(n)
            .cloned()
            .ok_or_else(|| EncodeError(format!("unbound signal `{n}`"))),
        Expr::UIntLit(v) => Ok((enc.const_word(v.to_u64(), v.width().max(1)), false)),
        Expr::SIntLit(v) => Ok((enc.const_word(v.to_u64(), v.width().max(1)), true)),
        Expr::Mux(c, t, f) => {
            let (cw, _) = encode_expr(enc, c, env)?;
            let cbit = enc.or_many(&cw);
            let (tw, tsg) = encode_expr(enc, t, env)?;
            let (fw, fsg) = encode_expr(enc, f, env)?;
            let signed = tsg && fsg;
            // each branch extends per its own signedness (matching eval
            // and the compiled backend on mixed-sign muxes)
            let w = tw.len().max(fw.len()) as u32;
            let tx = enc.extend_pub(&tw, w, tsg);
            let fx = enc.extend_pub(&fw, w, fsg);
            let out: Word = tx
                .iter()
                .zip(fx.iter())
                .map(|(&x, &y)| enc.mux(cbit, x, y))
                .collect();
            Ok((out, signed))
        }
        Expr::ValidIf(c, v) => {
            let (cw, _) = encode_expr(enc, c, env)?;
            let cbit = enc.or_many(&cw);
            let (vw, vsg) = encode_expr(enc, v, env)?;
            let zero = enc.const_word(0, vw.len() as u32);
            Ok((enc.mux_word(cbit, &vw, &zero, vsg), vsg))
        }
        Expr::Prim { op, args, consts } => encode_prim(enc, *op, args, consts, env),
        other => Err(EncodeError(format!("unexpected expression {other:?}"))),
    }
}

fn encode_prim(
    enc: &mut Encoder,
    op: PrimOp,
    args: &[Expr],
    consts: &[u64],
    env: &HashMap<String, (Word, bool)>,
) -> Result<(Word, bool), EncodeError> {
    use PrimOp as P;
    let c = |i: usize| consts[i] as u32;
    match op {
        P::Add | P::Sub => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, bsg) = encode_expr(enc, &args[1], env)?;
            let signed = asg || bsg;
            // extend each operand per its own signedness to the full result
            // width, then add/sub modulo 2^w (agrees with eval and the
            // compiled backend, including on mixed-sign operands)
            let w = a.len().max(b.len()) as u32 + 1;
            let ax = enc.extend_pub(&a, w, asg);
            let bx = enc.extend_pub(&b, w, bsg);
            let full = if op == P::Add {
                enc.add(&ax, &bx, false)
            } else {
                enc.sub(&ax, &bx, false)
            };
            Ok((full[..w as usize].to_vec(), signed))
        }
        P::Mul => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, bsg) = encode_expr(enc, &args[1], env)?;
            let signed = asg || bsg;
            let w = (a.len() + b.len()) as u32;
            let ax = enc.extend_pub(&a, w, asg);
            let bx = enc.extend_pub(&b, w, bsg);
            let prod = enc.mul(&ax, &bx, false);
            Ok((prod[..w as usize].to_vec(), signed))
        }
        P::Div | P::Rem => Err(EncodeError(format!(
            "`{}` is not supported by the formal backend",
            op.name()
        ))),
        P::Lt | P::Leq | P::Gt | P::Geq => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, bsg) = encode_expr(enc, &args[1], env)?;
            let signed = asg || bsg;
            let w = a.len().max(b.len()) as u32;
            let ax = enc.extend_pub(&a, w, asg);
            let bx = enc.extend_pub(&b, w, bsg);
            let bit = match (op, signed) {
                (P::Lt, false) => enc.ult(&ax, &bx),
                (P::Lt, true) => enc.slt(&ax, &bx),
                (P::Gt, false) => enc.ult(&bx, &ax),
                (P::Gt, true) => enc.slt(&bx, &ax),
                (P::Leq, false) => !enc.ult(&bx, &ax),
                (P::Leq, true) => !enc.slt(&bx, &ax),
                (P::Geq, false) => !enc.ult(&ax, &bx),
                _ => !enc.slt(&ax, &bx),
            };
            Ok((vec![bit], false))
        }
        P::Eq | P::Neq => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, bsg) = encode_expr(enc, &args[1], env)?;
            let w = a.len().max(b.len()) as u32;
            let ax = enc.extend_pub(&a, w, asg);
            let bx = enc.extend_pub(&b, w, bsg);
            let eq = enc.eq_word(&ax, &bx);
            Ok((vec![if op == P::Eq { eq } else { !eq }], false))
        }
        P::And | P::Or | P::Xor => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, bsg) = encode_expr(enc, &args[1], env)?;
            let w = a.len().max(b.len()) as u32;
            let ax = enc.extend(&a, w, asg);
            let bx = enc.extend(&b, w, bsg);
            let out: Word = ax
                .iter()
                .zip(bx.iter())
                .map(|(&x, &y)| match op {
                    P::And => enc.and(x, y),
                    P::Or => enc.or(x, y),
                    _ => enc.xor(x, y),
                })
                .collect();
            Ok((out, false))
        }
        P::Not => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            Ok((a.iter().map(|&l| !l).collect(), false))
        }
        P::Neg => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let zero = enc.const_word(0, a.len() as u32);
            Ok((enc.sub(&zero, &a, asg), true))
        }
        P::Andr => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            Ok((vec![enc.and_many(&a)], false))
        }
        P::Orr => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            Ok((vec![enc.or_many(&a)], false))
        }
        P::Xorr => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            let mut acc = enc.fls();
            for &l in &a {
                acc = enc.xor(acc, l);
            }
            Ok((vec![acc], false))
        }
        P::Pad => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let w = (a.len() as u32).max(c(0));
            Ok((enc.extend(&a, w, asg), asg))
        }
        P::Shl => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let n = c(0) as usize;
            let mut out = vec![enc.fls(); n];
            out.extend_from_slice(&a);
            Ok((out, asg))
        }
        P::Shr => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let n = c(0) as usize;
            if n >= a.len() {
                // all bits shifted out: zero (unsigned) or the sign (signed)
                let bit = if asg {
                    *a.last().expect("non-empty")
                } else {
                    enc.fls()
                };
                Ok((vec![bit], asg))
            } else {
                Ok((a[n..].to_vec(), asg))
            }
        }
        P::Dshl => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, _) = encode_expr(enc, &args[1], env)?;
            let grow = if b.len() >= 7 {
                64
            } else {
                (1usize << b.len()) - 1
            };
            let w = (a.len() + grow) as u32;
            if w > 128 {
                return Err(EncodeError("dshl result too wide for encoding".into()));
            }
            Ok((enc.dshl(&a, &b, w), asg))
        }
        P::Dshr => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            let (b, _) = encode_expr(enc, &args[1], env)?;
            Ok((enc.dshr(&a, &b, asg), asg))
        }
        P::Cat => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            let (b, _) = encode_expr(enc, &args[1], env)?;
            let mut out = b;
            out.extend_from_slice(&a);
            Ok((out, false))
        }
        P::Bits => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            let (hi, lo) = (c(0) as usize, c(1) as usize);
            if hi >= a.len() || hi < lo {
                return Err(EncodeError(format!("bits({hi},{lo}) out of range")));
            }
            Ok((a[lo..=hi].to_vec(), false))
        }
        P::Head => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            let n = (c(0) as usize).max(1);
            Ok((a[a.len() - n..].to_vec(), false))
        }
        P::Tail => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            let n = c(0) as usize;
            if n >= a.len() {
                Ok((vec![enc.fls()], false))
            } else {
                Ok((a[..a.len() - n].to_vec(), false))
            }
        }
        P::AsUInt | P::AsClock => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            Ok((a, false))
        }
        P::AsSInt => {
            let (a, _) = encode_expr(enc, &args[0], env)?;
            Ok((a, true))
        }
        P::Cvt => {
            let (a, asg) = encode_expr(enc, &args[0], env)?;
            if asg {
                Ok((a, true))
            } else {
                let w = a.len() as u32 + 1;
                Ok((enc.zext(&a, w), true))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use rtlcov_firrtl::eval::const_fold;
    use rtlcov_firrtl::ir::Expr;

    /// Evaluate a closed expression both by the interpreter and by SAT and
    /// check they agree.
    fn check_closed(e: &Expr) {
        let expect = const_fold(e).expect("closed expression");
        let mut enc = Encoder::new();
        let env = HashMap::new();
        let (word, _) = encode_expr(&mut enc, e, &env).unwrap();
        assert_eq!(enc.solver.solve(), SatResult::Sat);
        assert_eq!(
            enc.word_value(&word),
            expect.bits.to_u64(),
            "value mismatch for {e:?}"
        );
        assert_eq!(
            word.len() as u32,
            expect.bits.width().max(1),
            "width of {e:?}"
        );
    }

    #[test]
    fn closed_arithmetic_matches_interpreter() {
        use rtlcov_firrtl::ir::PrimOp as P;
        let pairs: Vec<(u64, u64)> = vec![(0, 0), (1, 1), (13, 7), (255, 1), (128, 127)];
        for (a, b) in pairs {
            for op in [P::Add, P::Sub, P::Mul, P::And, P::Or, P::Xor, P::Cat] {
                check_closed(&Expr::prim(op, vec![Expr::u(a, 8), Expr::u(b, 8)], vec![]));
            }
            for op in [P::Lt, P::Leq, P::Gt, P::Geq, P::Eq, P::Neq] {
                check_closed(&Expr::prim(op, vec![Expr::u(a, 8), Expr::u(b, 8)], vec![]));
            }
        }
    }

    #[test]
    fn closed_signed_ops_match() {
        use rtlcov_firrtl::bv::Bv;
        use rtlcov_firrtl::ir::PrimOp as P;
        let vals = [-5i64, -1, 0, 3];
        for &x in &vals {
            for &y in &vals {
                let a = Expr::SIntLit(Bv::from_i64(x, 6));
                let b = Expr::SIntLit(Bv::from_i64(y, 6));
                for op in [P::Add, P::Sub, P::Mul, P::Lt, P::Geq, P::Eq] {
                    check_closed(&Expr::prim(op, vec![a.clone(), b.clone()], vec![]));
                }
            }
        }
    }

    #[test]
    fn closed_unary_and_slices_match() {
        use rtlcov_firrtl::ir::PrimOp as P;
        let x = Expr::u(0b1011_0101, 8);
        check_closed(&Expr::prim(P::Not, vec![x.clone()], vec![]));
        check_closed(&Expr::prim(P::Andr, vec![x.clone()], vec![]));
        check_closed(&Expr::prim(P::Orr, vec![x.clone()], vec![]));
        check_closed(&Expr::prim(P::Xorr, vec![x.clone()], vec![]));
        check_closed(&Expr::prim(P::Bits, vec![x.clone()], vec![6, 2]));
        check_closed(&Expr::prim(P::Head, vec![x.clone()], vec![3]));
        check_closed(&Expr::prim(P::Tail, vec![x.clone()], vec![3]));
        check_closed(&Expr::prim(P::Pad, vec![x.clone()], vec![12]));
        check_closed(&Expr::prim(P::Shl, vec![x.clone()], vec![3]));
        check_closed(&Expr::prim(P::Shr, vec![x.clone()], vec![3]));
        check_closed(&Expr::prim(P::Shr, vec![x.clone()], vec![20]));
        check_closed(&Expr::prim(P::Neg, vec![x], vec![]));
    }

    #[test]
    fn dynamic_shifts_match() {
        use rtlcov_firrtl::ir::PrimOp as P;
        for amt in 0..4u64 {
            let x = Expr::u(0b1101, 4);
            let a = Expr::u(amt, 2);
            check_closed(&Expr::prim(P::Dshl, vec![x.clone(), a.clone()], vec![]));
            check_closed(&Expr::prim(P::Dshr, vec![x, a], vec![]));
        }
    }

    #[test]
    fn mux_and_validif_match() {
        for c in [0u64, 1] {
            check_closed(&Expr::mux(Expr::u(c, 1), Expr::u(9, 4), Expr::u(3, 4)));
            check_closed(&Expr::ValidIf(
                Box::new(Expr::u(c, 1)),
                Box::new(Expr::u(7, 4)),
            ));
        }
    }

    #[test]
    fn free_variable_solving() {
        // find x such that x + 3 == 10 (4-bit x)
        use rtlcov_firrtl::ir::PrimOp as P;
        let mut enc = Encoder::new();
        let x = enc.fresh_word(4);
        let mut env = HashMap::new();
        env.insert("x".to_string(), (x.clone(), false));
        let e = Expr::prim(
            P::Eq,
            vec![
                Expr::prim(P::Add, vec![Expr::r("x"), Expr::u(3, 4)], vec![]),
                Expr::u(10, 5),
            ],
            vec![],
        );
        let (cond, _) = encode_expr(&mut enc, &e, &env).unwrap();
        let assertion = cond[0];
        enc.solver.add_clause(vec![assertion]);
        assert_eq!(enc.solver.solve(), SatResult::Sat);
        assert_eq!(enc.word_value(&x), 7);
    }

    #[test]
    fn unsat_constraint() {
        use rtlcov_firrtl::ir::PrimOp as P;
        let mut enc = Encoder::new();
        let x = enc.fresh_word(3);
        let mut env = HashMap::new();
        env.insert("x".to_string(), (x, false));
        // x > 7 is impossible for 3 bits
        let e = Expr::prim(P::Gt, vec![Expr::r("x"), Expr::u(7, 3)], vec![]);
        let (cond, _) = encode_expr(&mut enc, &e, &env).unwrap();
        enc.solver.add_clause(vec![cond[0]]);
        assert_eq!(enc.solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn div_is_rejected() {
        use rtlcov_firrtl::ir::PrimOp as P;
        let mut enc = Encoder::new();
        let env = HashMap::new();
        let e = Expr::prim(P::Div, vec![Expr::u(6, 4), Expr::u(2, 4)], vec![]);
        assert!(encode_expr(&mut enc, &e, &env).is_err());
    }
}

//! Bounded model checking for cover trace generation (§3.4/§5.5).
//!
//! The circuit's transition relation is unrolled `k` steps; for each cover
//! statement the solver searches for a sequence of inputs (and, optionally,
//! initial memory contents) that makes the covered predicate true at some
//! step. SymbiYosys plays this role in the paper: "given a design
//! annotated with cover points, it will try to find sequences of inputs
//! that will lead to each of the cover points".

use crate::encode::{encode_expr, EncodeError, Encoder, Word};
use crate::sat::{Lit, SatResult};
use rtlcov_sim::compile::topo_order;
use rtlcov_sim::elaborate::{Def, FlatCircuit};
use std::collections::HashMap;
use std::fmt;

/// Options for a BMC run.
#[derive(Debug, Clone, Copy)]
pub struct BmcOptions {
    /// Number of unrolled steps (the paper's §5.5 uses 40).
    pub max_steps: usize,
    /// Conflict budget per cover query (0 = unlimited).
    pub conflict_budget: u64,
    /// Treat initial memory contents as free variables (lets the solver
    /// choose the program for CPU designs). Memories deeper than 64 words
    /// are rejected in this mode.
    pub symbolic_mem_init: bool,
    /// Total conflict fuel for the whole run (`None` = unlimited): once
    /// the solver has burned this many conflicts across all cover
    /// queries, the remaining covers come back [`CoverOutcome::Unknown`]
    /// and the run reports fuel exhaustion. This is the formal analog of
    /// a simulator step budget — it turns a runaway solve into a bounded
    /// partial result.
    pub fuel: Option<u64>,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            max_steps: 40,
            conflict_budget: 2_000_000,
            symbolic_mem_init: true,
            fuel: None,
        }
    }
}

/// Outcome for one cover point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverOutcome {
    /// Reached at the given step; the trace drives it.
    Reached {
        /// First step (0-based) at which the cover fires in the trace.
        step: usize,
        /// The witness trace.
        trace: Trace,
    },
    /// Proven unreachable within the bound.
    UnreachableWithin(usize),
    /// Solver budget exhausted.
    Unknown,
}

/// Result for one cover point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverResult {
    /// Hierarchical cover name.
    pub name: String,
    /// Outcome.
    pub outcome: CoverOutcome,
}

/// A witness trace: per-step input values plus initial memory contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// `inputs[step][input_index]` aligned with [`Trace::input_names`].
    pub inputs: Vec<Vec<u64>>,
    /// Input names.
    pub input_names: Vec<String>,
    /// Initial memory contents (`mem name → words`).
    pub mem_init: HashMap<String, Vec<u64>>,
}

impl Trace {
    /// Replay the trace on a simulator (loading memories first) and return
    /// the final cover counts — used to validate formal traces against the
    /// software backends.
    pub fn replay(&self, sim: &mut dyn rtlcov_sim::Simulator) -> rtlcov_core::CoverageMap {
        for (mem, words) in &self.mem_init {
            for (addr, value) in words.iter().enumerate() {
                sim.write_mem(mem, addr as u64, *value)
                    .expect("trace memories fit");
            }
        }
        for step in &self.inputs {
            for (name, value) in self.input_names.iter().zip(step) {
                sim.poke(name, *value);
            }
            sim.step();
        }
        sim.cover_counts()
    }
}

/// Error from the BMC engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmcError(pub String);

impl fmt::Display for BmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bmc error: {}", self.0)
    }
}

impl std::error::Error for BmcError {}

impl From<EncodeError> for BmcError {
    fn from(e: EncodeError) -> Self {
        BmcError(e.0)
    }
}

type Env = HashMap<String, (Word, bool)>;

/// The unrolled model.
struct Unrolling {
    enc: Encoder,
    /// Per-step, per-input words (for trace extraction).
    input_words: Vec<Vec<(String, Word)>>,
    /// Initial memory words (for trace extraction).
    mem_init_words: HashMap<String, Vec<Word>>,
    /// Per-cover indicator literal: true iff the cover fires at any step.
    cover_any: Vec<(String, Lit)>,
    /// Per-cover, per-step hit literals (to find the first firing step).
    cover_hits: Vec<Vec<Lit>>,
}

/// Check every cover in the flat circuit within `options.max_steps` cycles.
///
/// The `reset` input (if present) is pinned high for one step and low
/// afterwards, and registers start at zero — matching the software
/// simulators' reset convention.
///
/// # Errors
///
/// Fails if the circuit uses operations the encoder does not support or
/// memories too large for the chosen initialization mode.
pub fn check_covers(flat: &FlatCircuit, options: BmcOptions) -> Result<Vec<CoverResult>, BmcError> {
    Ok(check_covers_fueled(flat, options)?.0)
}

/// [`check_covers`] plus fuel accounting: the returned flag is `true` when
/// [`BmcOptions::fuel`] ran dry before every cover was resolved, in which
/// case the unexplored covers are reported [`CoverOutcome::Unknown`] and
/// the results are a valid partial answer.
///
/// # Errors
///
/// See [`check_covers`].
pub fn check_covers_fueled(
    flat: &FlatCircuit,
    options: BmcOptions,
) -> Result<(Vec<CoverResult>, bool), BmcError> {
    let mut unrolled = unroll(flat, options)?;
    let per_query = if options.conflict_budget == 0 {
        u64::MAX
    } else {
        options.conflict_budget
    };

    let mut exhausted = false;
    let mut results = Vec::new();
    for ci in 0..unrolled.cover_any.len() {
        let (name, any) = unrolled.cover_any[ci].clone();
        let spent = unrolled.enc.solver.conflicts();
        let budget = match options.fuel {
            Some(fuel) => {
                let left = fuel.saturating_sub(spent);
                if left == 0 {
                    exhausted = true;
                    results.push(CoverResult {
                        name,
                        outcome: CoverOutcome::Unknown,
                    });
                    continue;
                }
                per_query.min(left)
            }
            None => per_query,
        };
        unrolled.enc.solver.set_conflict_budget(budget);
        match unrolled.enc.solver.solve_with_assumptions(&[any]) {
            SatResult::Sat => {
                // first firing step from the model
                let step = unrolled.cover_hits[ci]
                    .iter()
                    .position(|&h| unrolled.enc.solver.lit_is_true(h))
                    .unwrap_or(0);
                let trace = extract_trace(&unrolled, flat);
                results.push(CoverResult {
                    name,
                    outcome: CoverOutcome::Reached { step, trace },
                });
            }
            SatResult::Unsat => results.push(CoverResult {
                name,
                outcome: CoverOutcome::UnreachableWithin(options.max_steps),
            }),
            SatResult::Unknown => {
                if options
                    .fuel
                    .is_some_and(|fuel| unrolled.enc.solver.conflicts() >= fuel)
                {
                    exhausted = true;
                }
                results.push(CoverResult {
                    name,
                    outcome: CoverOutcome::Unknown,
                });
            }
        }
    }
    Ok((results, exhausted))
}

/// Run [`check_covers`] and flatten the outcomes into the uniform
/// [`CoverageMap`](rtlcov_core::CoverageMap) interchange format, so the
/// BMC engine plugs into campaign merges like any simulator backend:
/// a reached cover records one hit (the witness proves reachability, the
/// count is not a frequency), while unreachable-within-bound and unknown
/// covers stay declared at zero.
///
/// # Errors
///
/// See [`check_covers`].
pub fn cover_map(
    flat: &FlatCircuit,
    options: BmcOptions,
) -> Result<rtlcov_core::CoverageMap, BmcError> {
    Ok(cover_map_fueled(flat, options)?.0)
}

/// [`cover_map`] plus fuel accounting: the flag is `true` when the
/// conflict fuel ran out, making the map a partial (but sound) answer —
/// reached covers really are reachable, unresolved covers stay at zero.
///
/// # Errors
///
/// See [`check_covers`].
pub fn cover_map_fueled(
    flat: &FlatCircuit,
    options: BmcOptions,
) -> Result<(rtlcov_core::CoverageMap, bool), BmcError> {
    let mut map = rtlcov_core::CoverageMap::new();
    let (results, exhausted) = check_covers_fueled(flat, options)?;
    for result in results {
        map.declare(&result.name);
        if matches!(result.outcome, CoverOutcome::Reached { .. }) {
            map.record(&result.name, 1);
        }
    }
    Ok((map, exhausted))
}

fn extract_trace(u: &Unrolling, _flat: &FlatCircuit) -> Trace {
    let input_names: Vec<String> = u
        .input_words
        .first()
        .map(|v| v.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let inputs = u
        .input_words
        .iter()
        .map(|step| step.iter().map(|(_, w)| u.enc.word_value(w)).collect())
        .collect();
    let mem_init = u
        .mem_init_words
        .iter()
        .map(|(name, words)| {
            (
                name.clone(),
                words.iter().map(|w| u.enc.word_value(w)).collect(),
            )
        })
        .collect();
    Trace {
        inputs,
        input_names,
        mem_init,
    }
}

const MAX_SYMBOLIC_MEM: usize = 64;

fn unroll(flat: &FlatCircuit, options: BmcOptions) -> Result<Unrolling, BmcError> {
    let mut enc = Encoder::new();
    let order = topo_order(flat).map_err(|e| BmcError(e.0))?;

    // initial state: registers at zero (reset is replayed explicitly)
    let mut reg_state: HashMap<String, Word> = HashMap::new();
    for r in &flat.regs {
        reg_state.insert(r.name.clone(), enc.const_word(0, r.width));
    }
    // initial memory contents
    let mut mem_state: HashMap<String, Vec<Word>> = HashMap::new();
    let mut mem_init_words: HashMap<String, Vec<Word>> = HashMap::new();
    for m in &flat.mems {
        let init: Vec<Word> = if options.symbolic_mem_init {
            if m.depth > MAX_SYMBOLIC_MEM {
                return Err(BmcError(format!(
                    "memory `{}` has {} words; symbolic init supports ≤ {MAX_SYMBOLIC_MEM} \
                     (build the design with smaller memories for formal runs)",
                    m.name, m.depth
                )));
            }
            (0..m.depth).map(|_| enc.fresh_word(m.width)).collect()
        } else {
            (0..m.depth).map(|_| enc.const_word(0, m.width)).collect()
        };
        if options.symbolic_mem_init {
            mem_init_words.insert(m.name.clone(), init.clone());
        }
        mem_state.insert(m.name.clone(), init);
    }

    let mut input_words: Vec<Vec<(String, Word)>> = Vec::new();
    let mut cover_hits: Vec<Vec<Lit>> = vec![Vec::new(); flat.covers.len()];

    for step in 0..options.max_steps {
        // inputs: reset pinned (high at step 0, low after); rest free
        let mut env: Env = HashMap::new();
        let mut step_inputs = Vec::new();
        for name in &flat.inputs {
            let sig = &flat.signals[name];
            let word = if name == "reset" {
                if step == 0 {
                    enc.const_word(1, sig.width)
                } else {
                    enc.const_word(0, sig.width)
                }
            } else {
                enc.fresh_word(sig.width)
            };
            step_inputs.push((name.clone(), word.clone()));
            env.insert(name.clone(), (word, sig.signed));
        }
        input_words.push(step_inputs);
        // clock-typed signals (never read as data) default to zero
        for (name, sig) in &flat.signals {
            if !env.contains_key(name) && matches!(sig.def, Def::Input) {
                env.insert(name.clone(), (enc.const_word(0, sig.width), sig.signed));
            }
        }
        // registers carry the current state
        for r in &flat.regs {
            env.insert(r.name.clone(), (reg_state[&r.name].clone(), r.signed));
        }
        // pre-insert zeros for undriven signals so refs always resolve
        for (name, sig) in &flat.signals {
            if matches!(sig.def, Def::Zero) {
                env.insert(name.clone(), (enc.const_word(0, sig.width), sig.signed));
            }
        }

        // combinational logic in topological order
        for name in &order {
            let sig = &flat.signals[name];
            match &sig.def {
                Def::Expr(e) => {
                    let (w, sgn) = encode_expr(&mut enc, e, &env)?;
                    let sized = enc.extend_pub(&w, sig.width, sgn);
                    env.insert(name.clone(), (sized, sig.signed));
                }
                Def::MemRead { mem, addr, en } => {
                    let (addr_w, _) = env[addr].clone();
                    let (en_w, _) = env[en].clone();
                    let en_bit = enc.or_many(&en_w);
                    let storage = mem_state[mem].clone();
                    let mut value = enc.const_word(0, sig.width);
                    for (a, word) in storage.iter().enumerate() {
                        let addr_const = enc.const_word(a as u64, addr_w.len() as u32);
                        let is_a = enc.eq_word(&addr_w, &addr_const);
                        let sel = enc.and(is_a, en_bit);
                        value = enc.mux_word(sel, word, &value, false);
                    }
                    env.insert(name.clone(), (value, false));
                }
                _ => {}
            }
        }

        // covers
        for (ci, cover) in flat.covers.iter().enumerate() {
            let (p, _) = encode_expr(&mut enc, &cover.pred, &env)?;
            let (e, _) = encode_expr(&mut enc, &cover.enable, &env)?;
            let pb = enc.or_many(&p);
            let eb = enc.or_many(&e);
            let hit = enc.and(pb, eb);
            cover_hits[ci].push(hit);
        }

        // memory writes (pre-edge values)
        for m in &flat.mems {
            let mut storage = mem_state[&m.name].clone();
            for w in &m.writers {
                let (addr_w, _) = env[&w.addr].clone();
                let (en_w, _) = env[&w.en].clone();
                let (mask_w, _) = env[&w.mask].clone();
                let (data_w, _) = env[&w.data].clone();
                let en_bit = enc.or_many(&en_w);
                let mask_bit = enc.or_many(&mask_w);
                let we = enc.and(en_bit, mask_bit);
                let data_sized = enc.zext(&data_w, m.width);
                for (a, slot) in storage.iter_mut().enumerate() {
                    let addr_const = enc.const_word(a as u64, addr_w.len() as u32);
                    let is_a = enc.eq_word(&addr_w, &addr_const);
                    let sel = enc.and(we, is_a);
                    *slot = enc.mux_word(sel, &data_sized, slot, false);
                }
            }
            mem_state.insert(m.name.clone(), storage);
        }

        // register updates (pre-edge values, reset folded in)
        let mut next_state = HashMap::new();
        for r in &flat.regs {
            let (next, sgn) = encode_expr(&mut enc, &r.next, &env)?;
            let mut value = enc.extend_pub(&next, r.width, sgn);
            if let Some((rst, init)) = &r.reset {
                let (rw, _) = encode_expr(&mut enc, rst, &env)?;
                let rbit = enc.or_many(&rw);
                let (iw, isg) = encode_expr(&mut enc, init, &env)?;
                let init_sized = enc.extend_pub(&iw, r.width, isg);
                value = enc.mux_word(rbit, &init_sized, &value, false);
            }
            next_state.insert(r.name.clone(), value);
        }
        reg_state = next_state;
    }

    // per-cover "fires at any step" indicators
    let mut cover_any = Vec::new();
    for (ci, cover) in flat.covers.iter().enumerate() {
        let hits = cover_hits[ci].clone();
        let any = enc.or_many(&hits);
        cover_any.push((cover.name.clone(), any));
    }

    Ok(Unrolling {
        enc,
        input_words,
        mem_init_words,
        cover_any,
        cover_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::elaborate::elaborate;

    fn flat(src: &str) -> FlatCircuit {
        elaborate(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn finds_combinational_cover() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    cover(clock, eq(a, UInt<8>(42)), UInt<1>(1)) : magic
",
        );
        let results = check_covers(
            &f,
            BmcOptions {
                max_steps: 1,
                ..Default::default()
            },
        )
        .unwrap();
        match &results[0].outcome {
            CoverOutcome::Reached { step, trace } => {
                assert_eq!(*step, 0);
                let idx = trace.input_names.iter().position(|n| n == "a").unwrap();
                assert_eq!(trace.inputs[0][idx], 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_yields_partial_unknowns() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    cover(clock, eq(a, UInt<8>(42)), UInt<1>(1)) : magic
    cover(clock, eq(a, UInt<8>(7)), UInt<1>(1)) : lucky
",
        );
        // zero fuel: every cover is Unknown and exhaustion is reported
        let (results, exhausted) = check_covers_fueled(
            &f,
            BmcOptions {
                max_steps: 1,
                fuel: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exhausted, "zero fuel must report exhaustion");
        assert!(results.iter().all(|r| r.outcome == CoverOutcome::Unknown));
        let (map, exhausted) = cover_map_fueled(
            &f,
            BmcOptions {
                max_steps: 1,
                fuel: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exhausted);
        assert_eq!(map.count("magic"), Some(0), "unknown covers as unhit");
        // ample fuel: same result as the unfueled path, no exhaustion
        let (_, exhausted) = check_covers_fueled(
            &f,
            BmcOptions {
                max_steps: 1,
                fuel: Some(1_000_000),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!exhausted);
    }

    #[test]
    fn cover_map_flattens_outcomes() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    cover(clock, eq(a, UInt<8>(42)), UInt<1>(1)) : magic
    cover(clock, gt(a, UInt<8>(255)), UInt<1>(1)) : never
",
        );
        let map = cover_map(
            &f,
            BmcOptions {
                max_steps: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(map.count("magic"), Some(1));
        assert_eq!(map.count("never"), Some(0));
    }

    #[test]
    fn sequential_depth_matters() {
        // counter must reach 3: needs 4 post-reset steps
        let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    when en :
      r <= tail(add(r, UInt<4>(1)), 1)
    cover(clock, eq(r, UInt<4>(3)), UInt<1>(1)) : r3
";
        let f = flat(src);
        let shallow = check_covers(
            &f,
            BmcOptions {
                max_steps: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(shallow[0].outcome, CoverOutcome::UnreachableWithin(3));
        let deep = check_covers(
            &f,
            BmcOptions {
                max_steps: 6,
                ..Default::default()
            },
        )
        .unwrap();
        match &deep[0].outcome {
            // 4 post-reset increments are required; the solver may idle
            // extra steps (en is free), so 4 is a lower bound
            CoverOutcome::Reached { step, .. } => assert!(*step >= 4, "step {step}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structurally_unreachable_cover() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    node both = and(eq(a, UInt<4>(1)), eq(a, UInt<4>(2)))
    cover(clock, both, UInt<1>(1)) : impossible
",
        );
        let results = check_covers(
            &f,
            BmcOptions {
                max_steps: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(results[0].outcome, CoverOutcome::UnreachableWithin(5));
    }

    #[test]
    fn trace_replays_on_simulator() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<4>
    input b : UInt<4>
    reg seen : UInt<1>, clock with : (reset => (reset, UInt<1>(0)))
    when eq(add(a, b), UInt<5>(9)) :
      seen <= UInt<1>(1)
    cover(clock, seen, UInt<1>(1)) : latched
";
        let f = flat(src);
        let results = check_covers(
            &f,
            BmcOptions {
                max_steps: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let CoverOutcome::Reached { trace, .. } = &results[0].outcome else {
            panic!("expected reached: {:?}", results[0].outcome);
        };
        let low = passes::lower(parse(src).unwrap()).unwrap();
        let mut sim = rtlcov_sim::compiled::CompiledSim::new(&low).unwrap();
        let counts = trace.replay(&mut sim);
        assert!(counts.count("latched").unwrap() > 0, "{counts}");
    }

    #[test]
    fn memory_covers_with_symbolic_init() {
        // the cover needs the memory to contain 7 at address 2
        let src = "
circuit T :
  module T :
    input clock : Clock
    mem m : UInt<4>[4], readers(r)
    m.r.addr <= UInt<2>(2)
    m.r.en <= UInt<1>(1)
    cover(clock, eq(m.r.data, UInt<4>(7)), UInt<1>(1)) : lucky
";
        let f = flat(src);
        let results = check_covers(
            &f,
            BmcOptions {
                max_steps: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let CoverOutcome::Reached { trace, .. } = &results[0].outcome else {
            panic!("{:?}", results[0].outcome);
        };
        assert_eq!(trace.mem_init["m"][2], 7);
        // with zero-initialized memories the same cover is unreachable
        let zeroed = check_covers(
            &f,
            BmcOptions {
                max_steps: 2,
                symbolic_mem_init: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(zeroed[0].outcome, CoverOutcome::UnreachableWithin(2));
    }

    #[test]
    fn mem_write_then_read_reachable() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input waddr : UInt<2>
    input wdata : UInt<4>
    input wen : UInt<1>
    mem m : UInt<4>[4], readers(r), writers(w)
    m.r.addr <= UInt<2>(1)
    m.r.en <= UInt<1>(1)
    m.w.addr <= waddr
    m.w.en <= wen
    m.w.data <= wdata
    m.w.mask <= UInt<1>(1)
    cover(clock, eq(m.r.data, UInt<4>(9)), UInt<1>(1)) : nine
";
        let f = flat(src);
        // zero-init: solver must WRITE 9 to address 1 first, needing 2 steps
        let r1 = check_covers(
            &f,
            BmcOptions {
                max_steps: 1,
                symbolic_mem_init: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r1[0].outcome, CoverOutcome::UnreachableWithin(1));
        let r2 = check_covers(
            &f,
            BmcOptions {
                max_steps: 3,
                symbolic_mem_init: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            matches!(r2[0].outcome, CoverOutcome::Reached { .. }),
            "{:?}",
            r2[0].outcome
        );
    }
}

//! **Figure 12**: the exponential blowup of covering all values of a
//! signal with plain `cover` statements versus the `cover-values`
//! primitive (§6).
//!
//! For each signal width we build both variants, count the cover
//! statements, and measure simulation throughput.

use rtlcov_bench::{scale, timed, Table};
use rtlcov_core::cover_values::lower_cover_values;
use rtlcov_firrtl::parser::parse;
use rtlcov_firrtl::passes;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::Simulator;

fn circuit(width: u32) -> rtlcov_firrtl::ir::Circuit {
    parse(&format!(
        "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<{width}>
    reg x : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>(0)))
    x <= tail(add(x, UInt<{width}>(1)), 1)
    o <= x
    cover_values(clock, x, UInt<1>(1)) : vals
"
    ))
    .expect("template parses")
}

fn main() {
    let cycles = 20_000 * scale(4);
    println!("Figure 12: cover vs cover-values ({cycles} cycles per run)");
    println!("(paper: plain covers blow up exponentially; cover-values is a");
    println!(" single array-indexed counter in software / block RAM on FPGA)\n");
    let mut table = Table::new();
    table.row(vec![
        "signal width".into(),
        "#covers (lowered)".into(),
        "lowered time".into(),
        "#stmts (native)".into(),
        "native time".into(),
        "speedup".into(),
    ]);
    for width in [2u32, 4, 6, 8, 10] {
        // exponential lowering to plain covers
        let mut lowered = circuit(width);
        let n = lower_cover_values(&mut lowered).expect("within lowering bound");
        let low = passes::lower(lowered).expect("lowers");
        let mut sim = CompiledSim::new(&low).expect("compiles");
        sim.reset(1);
        let (_, t_lowered) = timed(|| sim.step_n(cycles));
        assert_eq!(sim.cover_counts().covered(), (1 << width).min(cycles));

        // native cover-values primitive
        let native = passes::lower(circuit(width)).expect("lowers");
        let mut sim = CompiledSim::new(&native).expect("compiles");
        sim.reset(1);
        let (_, t_native) = timed(|| sim.step_n(cycles));

        table.row(vec![
            width.to_string(),
            n.to_string(),
            format!("{:.3} s", t_lowered.as_secs_f64()),
            "1".into(),
            format!("{:.3} s", t_native.as_secs_f64()),
            format!("{:.1}x", t_lowered.as_secs_f64() / t_native.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("(a 16-bit signal would need 65,536 plain covers; cover_values stays at 1)");
}

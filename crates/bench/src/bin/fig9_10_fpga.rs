//! **Figures 9 and 10**: FPGA resource usage and achieved frequency versus
//! coverage counter width, for the rocket-like and boom-like SoCs, with
//! the §5.3 removal variant.
//!
//! Width 0 is the baseline without coverage hardware. The paper's shape:
//! LUT/FF growth is linear in counter width and dominated by coverage
//! hardware for wide counters (2.8× LUTs at 32 bit, 2.0× after removing
//! points already covered in software); ≤8-bit (Rocket) / ≤2-bit (BOOM)
//! overhead falls within placement noise; the 48-bit BOOM build fails
//! placement.

use rtlcov_bench::{runtime_cover_count, Table};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_core::passes::remove::remove_covered;
use rtlcov_core::CoverageMap;
use rtlcov_designs::programs::boot_workload;
use rtlcov_designs::soc::{boom_like, rocket_like};
use rtlcov_fpga::{estimate, insert_scan_chain, place_and_route, Device, PlaceResult};
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::Simulator;

const WIDTHS: [u32; 9] = [0, 1, 2, 4, 8, 16, 24, 32, 48];

/// Software pre-run for the removal variant: boot workload on every tile.
fn software_coverage(circuit: &rtlcov_firrtl::ir::Circuit, tiles: usize) -> CoverageMap {
    let mut sim = CompiledSim::new(circuit).expect("soc compiles");
    let p = boot_workload(3);
    for i in 0..tiles {
        p.load(
            &mut sim,
            &format!("tile{i}.icache.mem"),
            &format!("tile{i}.dcache.mem"),
        )
        .expect("fits");
    }
    sim.reset(2);
    for _ in 0..6000 {
        if sim.peek("halted") == 1 {
            break;
        }
        sim.step();
    }
    sim.cover_counts()
}

fn main() {
    let device = Device::default();
    println!("Figures 9/10: FPGA resources and Fmax vs counter width");
    println!("(paper: Rocket SoC 8060 covers, BOOM 12059; 48-bit BOOM fails placement;");
    println!(" 32-bit LUTs 2.8x baseline, 2.0x after removal)\n");
    for (name, circuit) in [("rocket-like", rocket_like()), ("boom-like", boom_like())] {
        let inst = CoverageCompiler::new(Metrics::line_only())
            .run(circuit)
            .expect("soc lowers");
        let covers = runtime_cover_count(&inst);
        println!("--- {name}: {covers} line cover points ---");
        let sw_counts = software_coverage(&inst.circuit, 4);

        let mut table = Table::new();
        table.row(vec![
            "width".into(),
            "LUTs".into(),
            "FFs".into(),
            "LUT x base".into(),
            "Fmax (MHz)".into(),
            "LUTs (removed)".into(),
            "x base".into(),
        ]);
        let mut base_luts = 0u64;
        for w in WIDTHS {
            // full instrumentation
            let mut full = inst.circuit.clone();
            if w > 0 {
                insert_scan_chain(&mut full, w).expect("scan chain inserts");
            } else {
                // baseline: drop covers entirely
                remove_covered(&mut full, &CoverageMap::new(), 0);
            }
            let res = estimate(&full);
            if w == 0 {
                base_luts = res.luts;
            }
            let pr = place_and_route(&res, &device);
            let fmax = match pr {
                PlaceResult::Placed { fmax_mhz } => format!("{fmax_mhz:.1}"),
                PlaceResult::FailedPlacement => "FAILED PLACEMENT".into(),
            };
            // removal variant (§5.3): strip points covered >= 10 in software
            let (rem_luts, rem_ratio) = if w > 0 {
                let mut removed = inst.circuit.clone();
                remove_covered(&mut removed, &sw_counts, 10);
                insert_scan_chain(&mut removed, w).expect("scan chain inserts");
                let r = estimate(&removed);
                (
                    r.luts.to_string(),
                    format!("{:.2}", r.luts as f64 / base_luts as f64),
                )
            } else {
                ("-".into(), "-".into())
            };
            table.row(vec![
                w.to_string(),
                res.luts.to_string(),
                res.ffs.to_string(),
                format!("{:.2}", res.luts as f64 / base_luts as f64),
                fmax,
                rem_luts,
                rem_ratio,
            ]);
        }
        println!("{}", table.render());
    }
}

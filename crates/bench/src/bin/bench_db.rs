//! Coverage-database benchmark: ingest throughput, cold vs memoized
//! merge-query latency, and interning space savings.
//!
//! Builds a synthetic campaign — `RUNS` runs of `POINTS_PER_RUN` cover
//! points drawn from a shared hierarchical namespace, the shape a real
//! (design × shard × backend) campaign produces — ingests it into a
//! scratch database, and measures:
//!
//! 1. **ingest** — runs/s and points/s through the full crash-safe
//!    commit path (intern append, segment write, manifest rename);
//! 2. **query** — the same full-merge query cold (empty memo), repeated
//!    (root cache hit), and after one incremental ingest (only the
//!    `O(log n)` right spine re-merges);
//! 3. **interning** — bytes of name text stored once in the name table
//!    versus once per run without interning.
//!
//! Writes `BENCH_db.json` (or `$1`) and prints the same numbers. Times
//! are integer microseconds and ratios are permille, because the
//! workspace's mini-JSON is integer-only by design.

use rtlcov_core::json::Json;
use rtlcov_core::CoverageMap;
use rtlcov_db::{CoverageDb, RunKey, Selector};
use std::collections::BTreeMap;
use std::time::Instant;

const RUNS: u64 = 64;
const POINTS_PER_RUN: u64 = 2000;
const MODULES: u64 = 16;

/// The synthetic map of one run: a contiguous window into the shared
/// namespace, so consecutive runs overlap heavily (as real shards of one
/// design do) while still introducing fresh names.
fn run_map(run: u64) -> CoverageMap {
    let mut map = CoverageMap::new();
    for i in 0..POINTS_PER_RUN {
        let point = run * (POINTS_PER_RUN / 4) + i; // 75% overlap with the previous run
        let name = format!(
            "top.core{}.pipeline.stage{}.cover_{point}",
            point % MODULES,
            point % 5
        );
        map.record(name, (run + point) % 17);
    }
    map
}

fn key(run: u64) -> RunKey {
    RunKey {
        design: "synthetic".into(),
        workload: format!("s{run}"),
        backend: "interp".into(),
        label: "bench".into(),
    }
}

fn micros(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn per_second(count: u64, elapsed_us: u64) -> u64 {
    if elapsed_us == 0 {
        return u64::MAX;
    }
    count.saturating_mul(1_000_000) / elapsed_us
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_db.json".into());
    let dir = std::env::temp_dir().join(format!("rtlcov-bench-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. ingest throughput
    let maps: Vec<CoverageMap> = (0..RUNS).map(run_map).collect();
    let mut db = CoverageDb::open(&dir).expect("open scratch db");
    let start = Instant::now();
    for (run, map) in maps.iter().enumerate() {
        db.ingest(&key(run as u64), map).expect("ingest");
    }
    let ingest_us = micros(start);
    let total_points: u64 = maps.iter().map(|m| m.len() as u64).sum();

    // 2. query latency: cold (fresh process state), repeated, incremental
    let db = CoverageDb::open(&dir).expect("reopen");
    let everything = Selector::all();
    let start = Instant::now();
    let cold = db.merged(&everything).expect("cold query");
    let cold_us = micros(start);
    let start = Instant::now();
    let warm = db.merged(&everything).expect("memoized query");
    let memoized_us = micros(start);
    assert_eq!(cold, warm, "memoization must not change the result");

    let mut db = db;
    db.ingest(&key(RUNS), &run_map(RUNS))
        .expect("incremental ingest");
    let start = Instant::now();
    let grown = db.merged(&everything).expect("incremental query");
    let incremental_us = micros(start);
    assert!(grown.len() >= warm.len());

    // 3. interning savings
    let naive_bytes: u64 = maps
        .iter()
        .map(|m| m.iter().map(|(n, _)| n.len() as u64).sum::<u64>())
        .sum();
    let stored_bytes = db.interned_name_bytes();
    let (hits, misses) = db.memo_stats();

    let report = obj(vec![
        ("version", Json::UInt(1)),
        (
            "config",
            obj(vec![
                ("runs", Json::UInt(RUNS)),
                ("points_per_run", Json::UInt(POINTS_PER_RUN)),
                ("unique_names", Json::UInt(db.interned_names() as u64)),
            ]),
        ),
        (
            "ingest",
            obj(vec![
                ("total_us", Json::UInt(ingest_us)),
                ("runs_per_sec", Json::UInt(per_second(RUNS, ingest_us))),
                (
                    "points_per_sec",
                    Json::UInt(per_second(total_points, ingest_us)),
                ),
            ]),
        ),
        (
            "query",
            obj(vec![
                ("cold_us", Json::UInt(cold_us)),
                ("memoized_us", Json::UInt(memoized_us)),
                ("incremental_us", Json::UInt(incremental_us)),
                (
                    "memoized_speedup_permille",
                    Json::UInt(cold_us.saturating_mul(1000) / memoized_us.max(1)),
                ),
                ("memo_hits", Json::UInt(hits)),
                ("memo_misses", Json::UInt(misses)),
            ]),
        ),
        (
            "interning",
            obj(vec![
                ("naive_bytes", Json::UInt(naive_bytes)),
                ("stored_bytes", Json::UInt(stored_bytes)),
                (
                    "savings_permille",
                    Json::UInt(
                        naive_bytes
                            .saturating_sub(stored_bytes)
                            .saturating_mul(1000)
                            / naive_bytes.max(1),
                    ),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out, report.to_string()).expect("write BENCH_db.json");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "ingest: {RUNS} runs / {total_points} points in {ingest_us} us \
         ({} runs/s, {} points/s)",
        per_second(RUNS, ingest_us),
        per_second(total_points, ingest_us)
    );
    println!(
        "query over {RUNS} runs: cold {cold_us} us, memoized {memoized_us} us, \
         incremental (+1 run) {incremental_us} us"
    );
    println!(
        "interning: {stored_bytes} bytes stored once vs {naive_bytes} naive \
         ({}% saved)",
        naive_bytes.saturating_sub(stored_bytes) * 100 / naive_bytes.max(1)
    );
    println!("wrote {out}");
}

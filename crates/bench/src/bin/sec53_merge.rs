//! **§5.3**: coverage merging and removal.
//!
//! Run the RISC-V ISA test suite on the software simulator, merge the
//! per-test coverage maps (trivial by construction), and remove the cover
//! points hit at least 10 times before building the FPGA image. The paper
//! removes 42 % of counters and cuts the 32-bit LUT overhead from 2.8× to
//! 2.0×.

use rtlcov_bench::{runtime_cover_count, Table};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_core::passes::remove::remove_covered;
use rtlcov_core::CoverageMap;
use rtlcov_designs::workloads::riscv_isa_workloads;
use rtlcov_fpga::{estimate, insert_scan_chain, Device};
use rtlcov_sim::compiled::CompiledSim;

fn main() {
    println!("§5.3: coverage merging and removal (riscv-mini, ISA suite, threshold 10)");
    println!("(paper: 42% of counters removed; 32-bit LUT overhead 2.8x -> 2.0x)\n");
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(rtlcov_designs::riscv_mini::riscv_mini())
        .expect("riscv-mini lowers");
    let total = runtime_cover_count(&inst);

    // run each ISA test and merge the maps
    let mut merged = CoverageMap::new();
    let mut table = Table::new();
    table.row(vec![
        "test".into(),
        "covered".into(),
        "merged so far".into(),
    ]);
    for w in riscv_isa_workloads(800) {
        let mut sim = CompiledSim::new(&inst.circuit).expect("compiles");
        let counts = w.run(&mut sim);
        merged.merge(&counts);
        table.row(vec![
            w.name.to_string(),
            format!("{}/{}", counts.covered(), counts.len()),
            format!("{}/{}", merged.covered(), merged.len()),
        ]);
    }
    println!("{}", table.render());

    // removal
    let mut removed_circuit = inst.circuit.clone();
    let stats = remove_covered(&mut removed_circuit, &merged, 10);
    println!(
        "cover statements: {} declared ({total} runtime points); {} remain after removal",
        stats.before, stats.after
    );
    println!("removed: {:.0}%\n", stats.removed_fraction() * 100.0);

    // LUT impact at 32-bit counters
    let device = Device::default();
    let mut base = inst.circuit.clone();
    remove_covered(&mut base, &CoverageMap::new(), 0); // strip all covers
    let base_luts = estimate(&base).luts;
    let mut full = inst.circuit.clone();
    insert_scan_chain(&mut full, 32).expect("scan chain");
    let full_luts = estimate(&full).luts;
    insert_scan_chain(&mut removed_circuit, 32).expect("scan chain");
    let removed_luts = estimate(&removed_circuit).luts;
    println!("32-bit counters, LUTs: baseline {base_luts}, full {full_luts} ({:.2}x), after removal {removed_luts} ({:.2}x)",
        full_luts as f64 / base_luts as f64, removed_luts as f64 / base_luts as f64);
    let _ = device;
}

//! **Figure 8**: run-time overhead of coverage instrumentation on the
//! compiled (Verilator-analog) simulator, relative to the uninstrumented
//! baseline.
//!
//! Configurations per design: the simulator's *built-in* structural
//! coverage (per-mux branch counting, Verilator's native coverage analog),
//! FIRRTL line coverage, toggle coverage (registers only and all
//! signals), FSM coverage, and line+toggle combined.

use rtlcov_bench::{instrumented_sim, scale, timed, Table};
use rtlcov_core::instrument::Metrics;
use rtlcov_core::passes::toggle::ToggleOptions;
use rtlcov_designs::workloads::{table2_workloads, Workload};

fn measure(w: &Workload, metrics: Metrics, native: bool) -> f64 {
    let (mut sim, _) = instrumented_sim(w, metrics);
    if native {
        sim.enable_native_coverage();
    }
    if let Some((imem, dmem, program)) = &w.program {
        use rtlcov_sim::Simulator;
        let _ = &program;
        program
            .load(&mut sim as &mut dyn Simulator, imem, dmem)
            .expect("fits");
    }
    let (_, elapsed) = timed(|| w.trace.replay(&mut sim));
    elapsed.as_secs_f64()
}

fn main() {
    let scale = scale(4);
    println!("Figure 8: coverage instrumentation overhead over baseline (scale {scale})");
    println!("(paper: FIRRTL coverage has the same or slightly less overhead than");
    println!(" Verilator's built-in coverage; TLRAM line overhead close to zero)\n");
    let configs: Vec<(&str, Metrics, bool)> = vec![
        ("built-in (native mux)", Metrics::none(), true),
        ("line", Metrics::line_only(), false),
        (
            "toggle (regs)",
            Metrics::toggle_only(ToggleOptions::regs_only()),
            false,
        ),
        (
            "toggle (all)",
            Metrics::toggle_only(ToggleOptions::default()),
            false,
        ),
        ("fsm", Metrics::fsm_only(), false),
        (
            "line+toggle",
            Metrics {
                line: true,
                toggle: Some(ToggleOptions::default()),
                ..Metrics::none()
            },
            false,
        ),
    ];
    let mut table = Table::new();
    let mut header = vec!["Design".to_string(), "baseline".to_string()];
    header.extend(configs.iter().map(|(n, _, _)| format!("{n} (×)")));
    table.row(header);
    for w in table2_workloads(scale) {
        // measure baseline 3 times, take the median-ish best
        let mut base = f64::MAX;
        for _ in 0..3 {
            base = base.min(measure(&w, Metrics::none(), false));
        }
        let mut row = vec![w.name.to_string(), format!("{:.3} s", base)];
        for (_, metrics, native) in &configs {
            let mut t = f64::MAX;
            for _ in 0..2 {
                t = t.min(measure(&w, *metrics, *native));
            }
            row.push(format!("{:.2}", t / base));
        }
        table.row(row);
    }
    println!("{}", table.render());
}

//! **§5.5**: formal trace generation.
//!
//! The paper instruments riscv-mini with line coverage and uses bounded
//! model checking to find cover points unreachable within 40 cycles,
//! discovering that the instruction cache (same RTL as the data cache) is
//! read-only — its write-handling code can never execute. It also found
//! that FSM coverage over-approximated transitions. This binary reproduces
//! both findings on the riscv-mini analog (built with small caches so the
//! memory encoding stays tractable; `RTLCOV_BMC_STEPS` overrides the
//! bound, default 40).

use rtlcov_bench::{timed, Table};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_designs::riscv_mini::riscv_mini_with;
use rtlcov_formal::bmc::{check_covers, BmcOptions, CoverOutcome};
use rtlcov_sim::elaborate::elaborate;

fn main() {
    let steps: usize = std::env::var("RTLCOV_BMC_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("§5.5: formal trace generation on riscv-mini (k = {steps})");
    println!("(paper: icache write-handling lines unreachable; FSM analysis");
    println!(" over-approximation revealed by unreachable transitions)\n");

    // line coverage over the tile with 16-word caches (symbolic programs)
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(16))
        .expect("riscv-mini lowers");
    let flat = elaborate(&inst.circuit).expect("elaborates");
    println!(
        "line covers: {} across the tile (Cache instantiated as icache and dcache)",
        flat.covers.len()
    );
    let (results, elapsed) = timed(|| {
        check_covers(
            &flat,
            BmcOptions {
                max_steps: steps,
                conflict_budget: 400_000,
                symbolic_mem_init: true,
                ..BmcOptions::default()
            },
        )
        .expect("bmc runs")
    });
    let mut table = Table::new();
    table.row(vec!["cover".into(), "outcome".into()]);
    let mut icache_unreachable = Vec::new();
    let mut dcache_write_reached = false;
    for r in &results {
        let outcome = match &r.outcome {
            CoverOutcome::Reached { step, .. } => format!("reached @ step {step}"),
            CoverOutcome::UnreachableWithin(k) => {
                if r.name.starts_with("icache.") {
                    icache_unreachable.push(r.name.clone());
                }
                format!("UNREACHABLE within {k}")
            }
            CoverOutcome::Unknown => "unknown (budget)".into(),
        };
        if r.name.starts_with("dcache.") && matches!(r.outcome, CoverOutcome::Reached { .. }) {
            dcache_write_reached = true;
        }
        table.row(vec![r.name.clone(), outcome]);
    }
    println!("{}", table.render());
    println!(
        "BMC time: {:.1} s over {} covers\n",
        elapsed.as_secs_f64(),
        results.len()
    );
    if !icache_unreachable.is_empty() && dcache_write_reached {
        println!(
            "FINDING (paper §5.5): {} icache cover(s) are unreachable while their \
             dcache twins are reachable — the instruction cache is read-only and its \
             write-handling code is dead in this instantiation:",
            icache_unreachable.len()
        );
        for n in &icache_unreachable {
            println!("  {n}");
        }
    }

    // FSM coverage: over-approximated transitions proven unreachable
    println!("\n--- FSM coverage vs formal ---");
    let inst = CoverageCompiler::new(Metrics::fsm_only())
        .run(riscv_mini_with(16))
        .expect("lowers");
    let flat = elaborate(&inst.circuit).expect("elaborates");
    let (results, elapsed) = timed(|| {
        check_covers(
            &flat,
            BmcOptions {
                max_steps: steps,
                conflict_budget: 400_000,
                symbolic_mem_init: true,
                ..BmcOptions::default()
            },
        )
        .expect("bmc runs")
    });
    let unreachable: Vec<&str> = results
        .iter()
        .filter(|r| matches!(r.outcome, CoverOutcome::UnreachableWithin(_)))
        .map(|r| r.name.as_str())
        .collect();
    let transitions: Vec<&&str> = unreachable.iter().filter(|n| n.contains("_t_")).collect();
    println!(
        "{} FSM covers checked in {:.1} s; {} unreachable within {steps} (of which {} are transitions)",
        results.len(),
        elapsed.as_secs_f64(),
        unreachable.len(),
        transitions.len()
    );
    for fsm in &inst.artifacts.fsm.fsms {
        if fsm.over_approximated {
            println!(
                "FSM `{}`.{} over-approximated its transition set — formal verification \
                 shows which of those transitions can never fire (the paper's second finding):",
                fsm.module, fsm.reg
            );
        }
    }
    for t in &transitions {
        println!("  unreachable transition cover: {t}");
    }
}

//! Software-simulator benchmark: the micro-op optimizer and partitioned
//! activity scheduling, A/B'd against the unoptimized seed pipeline.
//!
//! Every campaign design (plus two deliberately idle variants, where
//! activity scheduling shines) is instrumented with line coverage and
//! replayed on four configurations:
//!
//! 1. **compiled-raw** — the straight-line executor, optimizer off;
//! 2. **compiled-opt** — the same executor on the optimized program;
//! 3. **essent-seed**  — the per-instruction dirty-tracking engine, as
//!    seeded, optimizer off;
//! 4. **essent-part**  — the partitioned worklist engine on the optimized
//!    program (the default pipeline).
//!
//! Reports cycles/second per configuration, the executed-instruction and
//! executed-partition activity ratios, the optimizer's static shrink, and
//! the resulting speedups. Writes `BENCH_sim.json` (or `$1`) and prints a
//! summary. Times are integer microseconds and ratios permille, because
//! the workspace's mini-JSON is integer-only by design. `RTLCOV_SCALE`
//! multiplies the stimulus length (default 1).

use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_core::json::Json;
use rtlcov_designs::workloads::{campaign_workload, Workload};
use rtlcov_firrtl::ir::Circuit;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::essent::{EssentOptions, EssentSim};
use rtlcov_sim::opt::{OptOptions, OptStats};
use rtlcov_sim::testbench::InputTrace;
use rtlcov_sim::Simulator;
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-design stimulus scale at `RTLCOV_SCALE=1`, sized so each run takes
/// long enough to time but the full sweep stays CI-friendly.
const DESIGNS: [(&str, usize); 7] = [
    ("gcd", 12),
    ("queue", 30),
    ("tlram", 20),
    ("serv", 10),
    ("neuroproc", 10),
    ("i2c", 20),
    ("riscv-mini", 2),
];

/// Timing repetitions per configuration; the minimum is reported
/// (standard best-of-N to shed scheduler noise).
const REPS: usize = 3;

/// Idle-variant cycle count at `RTLCOV_SCALE=1`.
const IDLE_CYCLES: usize = 20_000;

fn micros(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn per_second(count: u64, elapsed_us: u64) -> u64 {
    if elapsed_us == 0 {
        return u64::MAX;
    }
    count.saturating_mul(1_000_000) / elapsed_us
}

fn permille(num: u64, den: u64) -> u64 {
    num.saturating_mul(1000) / den.max(1)
}

fn fraction_permille(f: f64) -> u64 {
    (f.clamp(0.0, 1.0) * 1000.0).round() as u64
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// An idle variant: same circuit, reset then constant-zero inputs — the
/// low-activity regime where a quiescent design should cost almost
/// nothing to simulate.
fn idle_variant(base: Workload, idle_name: &'static str, cycles: usize) -> Workload {
    let inputs = base.trace.inputs.clone();
    let mut trace = InputTrace::new(inputs.clone());
    let reset_row: Vec<u64> = inputs.iter().map(|n| u64::from(n == "reset")).collect();
    trace.push(reset_row);
    for _ in 0..cycles {
        trace.push(vec![0; inputs.len()]);
    }
    Workload {
        name: idle_name,
        circuit: base.circuit,
        trace,
        program: base.program,
    }
}

struct ConfigRun {
    us: u64,
    cps: u64,
    activity_permille: Option<u64>,
    partition_activity_permille: Option<u64>,
    partitions: Option<usize>,
    opt: Option<OptStats>,
}

/// Best-of-[`REPS`] replay time; returns the last simulator so callers
/// can read its (deterministic, rep-independent) activity statistics.
fn time_run<S: Simulator>(workload: &Workload, mut mk: impl FnMut() -> S) -> (u64, S) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let mut sim = mk();
        let start = Instant::now();
        let map = workload.run(&mut sim);
        best = best.min(micros(start));
        assert!(!map.is_empty(), "instrumentation must yield cover points");
        last = Some(sim);
    }
    (best, last.expect("REPS > 0"))
}

fn run_configs(workload: &Workload, inst: &Circuit) -> Vec<(&'static str, ConfigRun)> {
    let cycles = workload.trace.cycles() as u64;
    let mut out = Vec::new();

    let (us, _) = time_run(workload, || {
        CompiledSim::new_with(inst, &OptOptions::none()).expect("compiled-raw")
    });
    out.push((
        "compiled_raw",
        ConfigRun {
            us,
            cps: per_second(cycles, us),
            activity_permille: None,
            partition_activity_permille: None,
            partitions: None,
            opt: None,
        },
    ));

    let (us, sim) = time_run(workload, || {
        CompiledSim::new_with(inst, &OptOptions::default()).expect("compiled-opt")
    });
    out.push((
        "compiled_opt",
        ConfigRun {
            us,
            cps: per_second(cycles, us),
            activity_permille: None,
            partition_activity_permille: None,
            partitions: None,
            opt: Some(sim.opt_stats()),
        },
    ));

    let seed_opts = EssentOptions {
        optimize: false,
        partition: false,
        ..EssentOptions::default()
    };
    let (us, sim) = time_run(workload, || {
        EssentSim::new_with(inst, &seed_opts).expect("essent-seed")
    });
    out.push((
        "essent_seed",
        ConfigRun {
            us,
            cps: per_second(cycles, us),
            activity_permille: Some(fraction_permille(sim.activity_factor())),
            partition_activity_permille: None,
            partitions: None,
            opt: None,
        },
    ));

    let (us, sim) = time_run(workload, || {
        EssentSim::new_with(inst, &EssentOptions::default()).expect("essent-part")
    });
    out.push((
        "essent_part",
        ConfigRun {
            us,
            cps: per_second(cycles, us),
            activity_permille: Some(fraction_permille(sim.activity_factor())),
            partition_activity_permille: sim.partition_activity().map(fraction_permille),
            partitions: sim.partitions(),
            opt: Some(sim.opt_stats()),
        },
    ));
    out
}

fn config_json(run: &ConfigRun) -> Json {
    let mut entries = vec![
        ("us", Json::UInt(run.us)),
        ("cycles_per_sec", Json::UInt(run.cps)),
    ];
    if let Some(a) = run.activity_permille {
        entries.push(("instr_activity_permille", Json::UInt(a)));
    }
    if let Some(p) = run.partition_activity_permille {
        entries.push(("partition_activity_permille", Json::UInt(p)));
    }
    if let Some(n) = run.partitions {
        entries.push(("partitions", Json::UInt(n as u64)));
    }
    if let Some(s) = run.opt {
        entries.push((
            "opt",
            obj(vec![
                ("instrs_before", Json::UInt(s.instrs_before as u64)),
                ("instrs_after", Json::UInt(s.instrs_after as u64)),
                ("slots_before", Json::UInt(s.slots_before as u64)),
                ("slots_after", Json::UInt(s.slots_after as u64)),
                ("folded", Json::UInt(s.folded as u64)),
                ("peephole", Json::UInt(s.peephole as u64)),
                ("copy_propagated", Json::UInt(s.copy_propagated as u64)),
                ("cse", Json::UInt(s.cse as u64)),
                ("dce_removed", Json::UInt(s.dce_removed as u64)),
            ]),
        ));
    }
    obj(entries)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".into());
    let scale: usize = std::env::var("RTLCOV_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let mut workloads: Vec<Workload> = DESIGNS
        .iter()
        .map(|(name, s)| campaign_workload(name, 0, s * scale).expect("campaign design"))
        .collect();
    workloads.push(idle_variant(
        campaign_workload("queue", 0, 1).unwrap(),
        "queue-idle",
        IDLE_CYCLES * scale,
    ));
    workloads.push(idle_variant(
        campaign_workload("i2c", 0, 1).unwrap(),
        "i2c-idle",
        IDLE_CYCLES * scale,
    ));

    let mut designs = BTreeMap::new();
    for workload in &workloads {
        let inst = CoverageCompiler::new(Metrics::line_only())
            .run(workload.circuit.clone())
            .expect("instrument");
        let runs = run_configs(workload, &inst.circuit);
        let by_name: BTreeMap<&str, &ConfigRun> = runs.iter().map(|(n, r)| (*n, r)).collect();
        let part_vs_seed = permille(by_name["essent_part"].cps, by_name["essent_seed"].cps);
        let opt_vs_raw = permille(by_name["compiled_opt"].cps, by_name["compiled_raw"].cps);

        println!(
            "{:<12} {:>8} cycles | raw {:>9}/s opt {:>9}/s | essent seed {:>9}/s part {:>9}/s \
             ({}.{:03}x, instr activity {}‰)",
            workload.name,
            workload.trace.cycles(),
            by_name["compiled_raw"].cps,
            by_name["compiled_opt"].cps,
            by_name["essent_seed"].cps,
            by_name["essent_part"].cps,
            part_vs_seed / 1000,
            part_vs_seed % 1000,
            by_name["essent_part"].activity_permille.unwrap_or(1000),
        );

        let mut entries = vec![
            ("cycles", Json::UInt(workload.trace.cycles() as u64)),
            (
                "speedup",
                obj(vec![
                    ("essent_part_vs_seed_permille", Json::UInt(part_vs_seed)),
                    ("compiled_opt_vs_raw_permille", Json::UInt(opt_vs_raw)),
                ]),
            ),
        ];
        for (cfg, run) in &runs {
            entries.push((cfg, config_json(run)));
        }
        designs.insert(workload.name.to_string(), obj(entries));
    }

    let report = obj(vec![
        ("version", Json::UInt(1)),
        ("scale", Json::UInt(scale as u64)),
        ("designs", Json::Object(designs)),
    ]);
    let text = report.to_string();
    // self-check: the report must round-trip through the workspace parser
    rtlcov_core::json::parse(&text).expect("report is valid mini-JSON");
    std::fs::write(&out, &text).expect("write BENCH_sim.json");
    println!("wrote {out}");
}

//! **Table 1**: lines of code for coverage passes and report generators.
//!
//! The paper reports the Scala LoC of each instrumentation pass and report
//! generator to show implementation effort; this binary measures the same
//! quantity for this repository's Rust implementation (non-blank,
//! non-comment, non-test lines).

use rtlcov_bench::Table;
use std::path::Path;

fn loc(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut in_tests = false;
    let mut count = 0;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        count += 1;
    }
    count
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let core = root.join("crates/core/src");
    let rows: Vec<(&str, Vec<&str>, Vec<&str>)> = vec![
        (
            "Common Library",
            vec!["map.rs", "instances.rs", "instrument.rs"],
            vec!["report/mod.rs"],
        ),
        (
            "Line Coverage",
            vec!["passes/line.rs"],
            vec!["report/line.rs"],
        ),
        (
            "Toggle Coverage",
            vec!["passes/toggle.rs"],
            vec!["report/toggle.rs"],
        ),
        ("FSM Coverage", vec!["passes/fsm.rs"], vec!["report/fsm.rs"]),
        (
            "Ready/Valid Coverage",
            vec!["passes/ready_valid.rs"],
            vec!["report/ready_valid.rs"],
        ),
    ];
    println!("Table 1: lines of Rust code for coverage passes and report generators");
    println!(
        "(paper: Scala LoC — Common 106/290, Line 89/64, Toggle 279/51, FSM 144/34, R/V 78/26)\n"
    );
    let mut table = Table::new();
    table.row(vec!["".into(), "LoC Instrum.".into(), "LoC Report".into()]);
    for (name, instr_files, report_files) in rows {
        let i: usize = instr_files.iter().map(|f| loc(&core.join(f))).sum();
        let r: usize = report_files.iter().map(|f| loc(&core.join(f))).sum();
        table.row(vec![name.into(), i.to_string(), r.to_string()]);
    }
    println!("{}", table.render());
}

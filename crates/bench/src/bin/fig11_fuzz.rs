//! **Figure 11**: cumulative line coverage of inputs discovered through
//! fuzzing the I2C peripheral with different feedback metrics, averaged
//! over five runs.
//!
//! Feedback metrics: FIRRTL line coverage, rfuzz-style mux-toggle
//! (structural) coverage, and no feedback (random inputs).

use rtlcov_bench::{scale, Table};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_designs::i2c::i2c;
use rtlcov_fuzz::{averaged_campaign, Feedback, FuzzHarness};

fn make_harness(native: bool) -> FuzzHarness {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(i2c())
        .expect("i2c lowers");
    let mut h = FuzzHarness::new(&inst.circuit, 256).expect("harness builds");
    if native {
        h.enable_native_feedback();
    }
    h
}

fn main() {
    let iterations = 5000 * scale(4);
    let runs = 5;
    let samples = 12;
    println!("Figure 11: cumulative line coverage under fuzzing (I2C peripheral,");
    println!("{iterations} executions, averaged over {runs} runs)");
    println!("(paper's shape: coverage-guided feedback dominates; line-coverage");
    println!(" feedback at least matches the rfuzz mux metric)\n");
    let curves: Vec<(&str, Vec<(usize, f64)>)> = vec![
        (
            "line feedback",
            averaged_campaign(
                || make_harness(false),
                Feedback::InstrumentedCovers,
                iterations,
                runs,
                samples,
            ),
        ),
        (
            "mux-toggle feedback (rfuzz)",
            averaged_campaign(
                || make_harness(true),
                Feedback::NativeMux,
                iterations,
                runs,
                samples,
            ),
        ),
        (
            "random (no feedback)",
            averaged_campaign(
                || make_harness(false),
                Feedback::Random,
                iterations,
                runs,
                samples,
            ),
        ),
    ];
    let mut table = Table::new();
    let mut header = vec!["executions".to_string()];
    header.extend(curves.iter().map(|(n, _)| n.to_string()));
    table.row(header);
    for i in 0..samples {
        let mut row = vec![curves[0].1[i].0.to_string()];
        for (_, curve) in &curves {
            row.push(format!("{:.1}%", curve[i].1 * 100.0));
        }
        table.row(row);
    }
    println!("{}", table.render());
}

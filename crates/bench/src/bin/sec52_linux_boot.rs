//! **§5.2**: line coverage while running the boot workload on the
//! FPGA-accelerated simulator with 16-bit counters.
//!
//! The paper boots Linux on FireSim (RocketChip: 3.3 B cycles, 50.4 s at
//! 65 MHz, 12 ms to scan 8060 counts; BOOM: 1.7 B cycles, 42.6 s at
//! 40 MHz, 17 ms for 12059 counts). This binary runs the Linux-boot
//! substitute (DESIGN.md) on the rocket-like and boom-like SoCs, reports
//! the same quantities, and derives the target frequency from the
//! resource/timing model.

use rtlcov_bench::{runtime_cover_count, scale, timed, Table};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_designs::programs::boot_workload;
use rtlcov_designs::soc::{boom_like, rocket_like};
use rtlcov_fpga::{estimate, insert_scan_chain, place_and_route, Device, FpgaHost, PlaceResult};

fn main() {
    let outer = (200 * scale(4)).min(2000) as u32;
    let max_cycles = 3_000_000 * scale(4) as u64;
    println!("§5.2: boot workload with 16-bit coverage counters (outer={outer})\n");
    let device = Device::default();
    let mut table = Table::new();
    table.row(vec![
        "SoC".into(),
        "# covers".into(),
        "cycles".into(),
        "wall time".into(),
        "model target freq".into(),
        "scan-out time".into(),
    ]);
    for (name, tiles, circuit) in [
        ("rocket-like", 4, rocket_like()),
        ("boom-like", 6, boom_like()),
    ] {
        let inst = CoverageCompiler::new(Metrics::line_only())
            .run(circuit)
            .expect("soc lowers");
        let covers = runtime_cover_count(&inst);
        let mut scanned = inst.circuit.clone();
        let info = insert_scan_chain(&mut scanned, 16).expect("scan chain");
        let fmax = match place_and_route(&estimate(&scanned), &device) {
            PlaceResult::Placed { fmax_mhz } => format!("{fmax_mhz:.0} MHz"),
            PlaceResult::FailedPlacement => "failed".into(),
        };
        let mut host = FpgaHost::new(&scanned, info).expect("host builds");
        let p = boot_workload(outer);
        for i in 0..tiles {
            for (a, word) in p.text.iter().enumerate() {
                host.write_mem(&format!("tile{i}.icache.mem"), a as u64, *word as u64)
                    .expect("fits");
            }
        }
        host.reset(2);
        let (cycles, wall) = timed(|| {
            let mut c = 0u64;
            while c < max_cycles {
                host.run(10_000);
                c += 10_000;
                if host.peek("halted") == 1 {
                    break;
                }
            }
            c
        });
        let ((counts, scan_time), _) = timed(|| host.scan_out_counts());
        table.row(vec![
            name.into(),
            covers.to_string(),
            cycles.to_string(),
            format!("{:.1} s", wall.as_secs_f64()),
            fmax,
            format!(
                "{:.1} ms ({} counts)",
                scan_time.as_secs_f64() * 1e3,
                counts.len()
            ),
        ]);
    }
    println!("{}", table.render());
}

//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. toggle coverage **with vs without** the global alias analysis
//!    (§4.2: "necessary to make toggle coverage perform well");
//! 2. line coverage instrumented **before vs after** when-expansion
//!    (§4.1: the pass must run while branches still exist);
//! 3. the **activity-driven** backend vs dense evaluation on low- and
//!    high-activity workloads (the ESSENT premise).

use rtlcov_bench::{instrumented_sim, run_workload, scale, Table};
use rtlcov_core::instrument::Metrics;
use rtlcov_core::passes::line::instrument_line_coverage;
use rtlcov_core::passes::toggle::ToggleOptions;
use rtlcov_designs::workloads::{neuroproc_workload, riscv_mini_workload, table2_workloads};
use rtlcov_firrtl::ir::Stmt;
use rtlcov_firrtl::passes;
use rtlcov_sim::essent::EssentSim;
use rtlcov_sim::Simulator;

fn main() {
    let scale = scale(4);

    println!("=== Ablation 1: toggle coverage alias analysis (§4.2) ===\n");
    let mut table = Table::new();
    table.row(vec![
        "design".into(),
        "covers (alias on)".into(),
        "covers (alias off)".into(),
        "skipped".into(),
        "runtime on".into(),
        "runtime off".into(),
    ]);
    for w in table2_workloads(scale) {
        let with = ToggleOptions::default();
        let without = ToggleOptions {
            use_alias_analysis: false,
            ..ToggleOptions::default()
        };
        let (mut sim_on, inst_on) = instrumented_sim(&w, Metrics::toggle_only(with));
        let (mut sim_off, inst_off) = instrumented_sim(&w, Metrics::toggle_only(without));
        let t_on = run_workload(&w, &mut sim_on);
        let t_off = run_workload(&w, &mut sim_off);
        table.row(vec![
            w.name.to_string(),
            inst_on.artifacts.toggle.cover_count().to_string(),
            inst_off.artifacts.toggle.cover_count().to_string(),
            inst_on.artifacts.toggle.alias_skipped.to_string(),
            format!("{:.3} s", t_on.as_secs_f64()),
            format!("{:.3} s", t_off.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    println!("=== Ablation 2: line coverage before vs after when-expansion (§4.1) ===\n");
    // before (the correct placement)
    let mut pre = passes::lower_types::lower_types(
        passes::infer_widths::infer_widths(
            passes::check::check(rtlcov_designs::riscv_mini::riscv_mini()).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    let info = instrument_line_coverage(&mut pre);
    println!(
        "before expansion: {} branch covers inserted",
        info.cover_count()
    );
    // after: when-expansion removed every branch, so the pass finds nothing
    let mut post = passes::lower(rtlcov_designs::riscv_mini::riscv_mini()).unwrap();
    let info = instrument_line_coverage(&mut post);
    let mut whens = 0;
    for m in &post.modules {
        m.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::When { .. }) {
                whens += 1;
            }
        });
    }
    println!(
        "after expansion:  {} branch covers inserted ({} `when`s remain) — \
         branch identity is gone, exactly the paper's Figure 3 argument\n",
        info.cover_count(),
        whens
    );

    println!("=== Ablation 3: activity-driven evaluation (ESSENT premise) ===\n");
    let mut table = Table::new();
    table.row(vec![
        "workload".into(),
        "activity factor".into(),
        "note".into(),
    ]);
    // low activity: riscv-mini spinning in its fetch FSM with no program
    let w = riscv_mini_workload(2000 * scale);
    let low = passes::lower(w.circuit.clone()).unwrap();
    let mut sim = EssentSim::new(&low).unwrap();
    // no program: the core spins in FETCH with an all-zero icache
    sim.reset(2);
    sim.step_n(2000 * scale);
    table.row(vec![
        "riscv-mini (idle spin)".into(),
        format!("{:.2}", sim.activity_factor()),
        "quiescent logic skipped".into(),
    ]);
    // high activity: neuron processor with constant stimulation
    let w = neuroproc_workload(2000 * scale);
    let low = passes::lower(w.circuit.clone()).unwrap();
    let mut sim = EssentSim::new(&low).unwrap();
    let _ = w.trace.replay(&mut sim);
    table.row(vec![
        "NeuroProc (stimulated)".into(),
        format!("{:.2}", sim.activity_factor()),
        "datapath churns every cycle".into(),
    ]);
    println!("{}", table.render());
}

//! # rtlcov-bench
//!
//! Shared plumbing for the benchmark binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the experiment index).
//! Each `src/bin/*.rs` binary prints the rows/series of one table or
//! figure; `benches/` holds scaled-down Criterion versions.

#![warn(missing_docs)]

use rtlcov_core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov_designs::workloads::Workload;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::Simulator;
use std::time::{Duration, Instant};

/// Instrument a workload's circuit with the given metrics and build a
/// compiled simulator for it.
///
/// # Panics
///
/// Panics on lowering or simulator construction failure (bench designs
/// are known-good).
pub fn instrumented_sim(workload: &Workload, metrics: Metrics) -> (CompiledSim, Instrumented) {
    let inst = CoverageCompiler::new(metrics)
        .run(workload.circuit.clone())
        .expect("benchmark designs lower cleanly");
    let sim = CompiledSim::new(&inst.circuit).expect("benchmark designs compile");
    (sim, inst)
}

/// Run a closure and return its result with the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Replay a workload (loading its program if any) and return the elapsed
/// simulation time.
pub fn run_workload(workload: &Workload, sim: &mut dyn Simulator) -> Duration {
    if let Some((imem, dmem, program)) = &workload.program {
        program.load(sim, imem, dmem).expect("program fits");
    }
    let (_counts, elapsed) = timed(|| workload.trace.replay(sim));
    elapsed
}

/// Number of runtime cover points of an instrumented circuit (covers per
/// instance, i.e. what a simulator reports).
pub fn runtime_cover_count(inst: &Instrumented) -> usize {
    rtlcov_sim::elaborate::elaborate(&inst.circuit)
        .map(|f| f.covers.len())
        .unwrap_or(0)
}

/// Simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Add a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                out.push_str(c);
                out.push_str(&" ".repeat(pad + 2));
            }
            out.push('\n');
        }
        out
    }
}

/// Environment-variable override for experiment scale (`RTLCOV_SCALE`),
/// defaulting to `default_scale`. Benchmarks document their row counts at
/// scale 1.
pub fn scale(default_scale: usize) -> usize {
    std::env::var("RTLCOV_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_designs::workloads::gcd_workload;

    #[test]
    fn instrumented_sim_builds_and_runs() {
        let w = gcd_workload(2);
        let (mut sim, inst) = instrumented_sim(&w, Metrics::line_only());
        assert!(inst.artifacts.line.cover_count() > 0);
        let elapsed = run_workload(&w, &mut sim);
        assert!(elapsed.as_nanos() > 0);
        let counts = sim.cover_counts();
        assert!(counts.covered() > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new();
        t.row(vec!["a".into(), "long-cell".into()]);
        t.row(vec!["longer".into(), "b".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("a       long-cell"));
    }

    #[test]
    fn runtime_covers_count_instances() {
        let w = rtlcov_designs::workloads::riscv_mini_workload(1);
        let (_, inst) = instrumented_sim(&w, Metrics::line_only());
        let per_module = inst.artifacts.line.cover_count();
        let runtime = runtime_cover_count(&inst);
        // Cache is instantiated twice, so runtime covers exceed module covers
        assert!(runtime > per_module, "{runtime} vs {per_module}");
    }
}

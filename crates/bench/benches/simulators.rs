//! Criterion bench: throughput of the three software simulator backends
//! on the same design (the Treadle / Verilator / ESSENT split of §3).

use criterion::{criterion_group, criterion_main, Criterion};
use rtlcov_designs::programs::boot_workload;
use rtlcov_designs::riscv_mini::riscv_mini_with;
use rtlcov_firrtl::passes;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::essent::EssentSim;
use rtlcov_sim::interp::InterpSim;
use rtlcov_sim::Simulator;

fn bench_simulators(c: &mut Criterion) {
    let low = passes::lower(riscv_mini_with(256)).unwrap();
    let program = boot_workload(50);
    let mut group = c.benchmark_group("riscv-mini-1k-cycles");
    group.sample_size(10);

    group.bench_function("compiled (Verilator analog)", |b| {
        b.iter(|| {
            let mut sim = CompiledSim::new(&low).unwrap();
            program.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
            sim.reset(2);
            sim.step_n(1000);
            sim.peek("retired")
        })
    });
    group.bench_function("essent (activity-driven analog)", |b| {
        b.iter(|| {
            let mut sim = EssentSim::new(&low).unwrap();
            program.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
            sim.reset(2);
            sim.step_n(1000);
            sim.peek("retired")
        })
    });
    group.bench_function("interpreter (Treadle analog)", |b| {
        b.iter(|| {
            let mut sim = InterpSim::new(&low).unwrap();
            program.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
            sim.reset(2);
            sim.step_n(100); // 10x fewer cycles: the interpreter is slow
            sim.peek("retired")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);

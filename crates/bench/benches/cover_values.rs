//! Criterion bench: Figure 12 scaled down — native `cover_values` versus
//! the exponential plain-cover lowering at 8 bits.

use criterion::{criterion_group, criterion_main, Criterion};
use rtlcov_core::cover_values::lower_cover_values;
use rtlcov_firrtl::parser::parse;
use rtlcov_firrtl::passes;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::Simulator;

fn circuit() -> rtlcov_firrtl::ir::Circuit {
    parse(
        "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg x : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    x <= tail(add(x, UInt<8>(1)), 1)
    o <= x
    cover_values(clock, x, UInt<1>(1)) : vals
",
    )
    .unwrap()
}

fn bench_cover_values(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover-values-8bit-5k-cycles");
    group.sample_size(20);

    let native = passes::lower(circuit()).unwrap();
    group.bench_function("native cover_values", |b| {
        let mut sim = CompiledSim::new(&native).unwrap();
        b.iter(|| sim.step_n(5000))
    });

    let mut lowered_circuit = circuit();
    lower_cover_values(&mut lowered_circuit).unwrap();
    let lowered = passes::lower(lowered_circuit).unwrap();
    group.bench_function("lowered to 256 plain covers", |b| {
        let mut sim = CompiledSim::new(&lowered).unwrap();
        b.iter(|| sim.step_n(5000))
    });
    group.finish();
}

criterion_group!(benches, bench_cover_values);
criterion_main!(benches);

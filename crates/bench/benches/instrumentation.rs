//! Criterion bench: Figure 8 scaled down — run-time cost of each coverage
//! instrumentation on the compiled simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rtlcov_core::instrument::{CoverageCompiler, Metrics};
use rtlcov_core::passes::toggle::ToggleOptions;
use rtlcov_designs::workloads::gcd_workload;
use rtlcov_sim::compiled::CompiledSim;

fn bench_instrumentation(c: &mut Criterion) {
    let workload = gcd_workload(20);
    let configs: Vec<(&str, Metrics)> = vec![
        ("baseline", Metrics::none()),
        ("line", Metrics::line_only()),
        (
            "toggle-regs",
            Metrics::toggle_only(ToggleOptions::regs_only()),
        ),
        ("toggle-all", Metrics::toggle_only(ToggleOptions::default())),
        ("all-metrics", Metrics::all()),
    ];
    let mut group = c.benchmark_group("gcd-replay");
    group.sample_size(20);
    for (name, metrics) in configs {
        let inst = CoverageCompiler::new(metrics)
            .run(workload.circuit.clone())
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = CompiledSim::new(&inst.circuit).unwrap();
                workload.trace.replay(&mut sim)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instrumentation);
criterion_main!(benches);

//! VCD (Value Change Dump) waveform recording.
//!
//! The paper's §5.1 methodology records a waveform VCD of each benchmark
//! and replays only the top-level inputs. [`VcdRecorder`] produces standard
//! VCD text from any [`Simulator`], and [`trace_from_vcd`] recovers an
//! [`InputTrace`] from a dump — closing the same record/replay loop.

use crate::testbench::InputTrace;
use crate::Simulator;
use std::fmt::Write;

/// Records selected signals of a simulation into VCD text.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    signals: Vec<(String, u32, String)>, // (name, width, vcd id)
    last: Vec<Option<u64>>,
    body: String,
    time: u64,
}

fn vcd_id(i: usize) -> String {
    // printable id characters per the VCD spec: '!'..='~'
    let mut n = i;
    let mut id = String::new();
    loop {
        id.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

impl VcdRecorder {
    /// Record the given `(name, width)` signals.
    pub fn new(signals: Vec<(String, u32)>) -> Self {
        let signals: Vec<(String, u32, String)> = signals
            .into_iter()
            .enumerate()
            .map(|(i, (n, w))| (n, w, vcd_id(i)))
            .collect();
        let last = vec![None; signals.len()];
        VcdRecorder {
            signals,
            last,
            body: String::new(),
            time: 0,
        }
    }

    /// Sample the simulator's current values; emits only changes.
    pub fn sample(&mut self, sim: &dyn Simulator) {
        let mut changes = String::new();
        for (i, (name, width, id)) in self.signals.iter().enumerate() {
            let v = sim.peek(name);
            if self.last[i] != Some(v) {
                self.last[i] = Some(v);
                if *width == 1 {
                    let _ = writeln!(changes, "{v}{id}");
                } else {
                    let _ = writeln!(changes, "b{v:b} {id}");
                }
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.time);
            self.body.push_str(&changes);
        }
        self.time += 1;
    }

    /// Render the complete VCD file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date rtlcov $end");
        let _ = writeln!(out, "$version rtlcov vcd recorder $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module top $end");
        for (name, width, id) in &self.signals {
            let safe = name.replace('.', "_");
            let _ = writeln!(out, "$var wire {width} {id} {safe} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// Recover an input trace from a VCD dump produced by [`VcdRecorder`].
///
/// Only the named signals are extracted; the value of a signal holds until
/// its next change (standard VCD semantics). The trace covers times
/// `0..end`.
///
/// # Errors
///
/// Returns a message for malformed VCD text or unknown signal names.
pub fn trace_from_vcd(vcd: &str, inputs: &[&str]) -> Result<InputTrace, String> {
    // id -> input index
    let mut id_of: std::collections::HashMap<String, usize> = Default::default();
    let mut end_time = 0u64;
    for line in vcd.lines() {
        let t = line.trim();
        if t.starts_with("$var") {
            let parts: Vec<&str> = t.split_whitespace().collect();
            // $var wire <w> <id> <name> $end
            if parts.len() >= 6 {
                let (id, name) = (parts[3], parts[4]);
                if let Some(pos) = inputs.iter().position(|n| n.replace('.', "_") == name) {
                    id_of.insert(id.to_string(), pos);
                }
            }
        }
    }
    let found: std::collections::HashSet<usize> = id_of.values().copied().collect();
    for (i, name) in inputs.iter().enumerate() {
        if !found.contains(&i) {
            return Err(format!("signal `{name}` not found in VCD"));
        }
    }

    let mut current = vec![0u64; inputs.len()];
    let mut values: Vec<Vec<u64>> = Vec::new();
    let flush_until = |values: &mut Vec<Vec<u64>>, current: &[u64], t: u64| {
        while (values.len() as u64) < t {
            values.push(current.to_vec());
        }
    };
    for line in vcd.lines() {
        let t = line.trim();
        if let Some(ts) = t.strip_prefix('#') {
            let new_time: u64 = ts.parse().map_err(|_| format!("bad timestamp `{t}`"))?;
            flush_until(&mut values, &current, new_time);
            end_time = end_time.max(new_time);
        } else if let Some(rest) = t.strip_prefix('b') {
            let mut parts = rest.split_whitespace();
            let bits = parts.next().ok_or("missing bits")?;
            let id = parts.next().ok_or("missing id")?;
            if let Some(&idx) = id_of.get(id) {
                current[idx] =
                    u64::from_str_radix(bits, 2).map_err(|_| format!("bad binary `{bits}`"))?;
            }
        } else if !t.is_empty()
            && !t.starts_with('$')
            && t.chars().next().is_some_and(|c| c == '0' || c == '1')
        {
            let (v, id) = t.split_at(1);
            if let Some(&idx) = id_of.get(id) {
                current[idx] = v.parse().map_err(|_| "bad scalar value".to_string())?;
            }
        }
    }
    flush_until(&mut values, &current, end_time);
    let mut trace = InputTrace::new(inputs.iter().map(|s| s.to_string()).collect());
    for v in values {
        trace.push(v);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledSim;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn sim() -> CompiledSim {
        let low = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<4>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    when en :
      r <= tail(add(r, UInt<4>(1)), 1)
    o <= r
",
            )
            .unwrap(),
        )
        .unwrap();
        CompiledSim::new(&low).unwrap()
    }

    #[test]
    fn records_value_changes_only() {
        let mut s = sim();
        let mut rec = VcdRecorder::new(vec![("en".into(), 1), ("o".into(), 4)]);
        s.reset(1);
        s.poke("en", 1);
        for _ in 0..4 {
            rec.sample(&s);
            s.step();
        }
        let vcd = rec.render();
        assert!(vcd.contains("$var wire 1 ! en $end"), "{vcd}");
        assert!(vcd.contains("$var wire 4 \" o $end"), "{vcd}");
        // o changes every cycle; en only once
        assert_eq!(vcd.matches("1!").count(), 1, "{vcd}");
        assert!(vcd.matches("b").count() >= 4, "{vcd}");
    }

    #[test]
    fn record_then_replay_roundtrip() {
        // record a run's inputs as VCD, recover the trace, replay it, and
        // require identical outputs — the §5.1 methodology end-to-end
        let mut s = sim();
        let mut rec = VcdRecorder::new(vec![("reset".into(), 1), ("en".into(), 1)]);
        let stimulus = [(1u64, 0u64), (0, 1), (0, 1), (0, 0), (0, 1), (0, 1), (0, 1)];
        for (reset, en) in stimulus {
            s.poke("reset", reset);
            s.poke("en", en);
            rec.sample(&s);
            s.step();
        }
        let final_o = s.peek("o");
        let vcd = rec.render();

        let trace = trace_from_vcd(&vcd, &["reset", "en"]).unwrap();
        assert_eq!(trace.cycles(), stimulus.len());
        let mut replayed = sim();
        trace.replay(&mut replayed);
        assert_eq!(replayed.peek("o"), final_o);
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let rec = VcdRecorder::new(vec![("a".into(), 1)]);
        let vcd = rec.render();
        assert!(trace_from_vcd(&vcd, &["missing"]).is_err());
    }
}

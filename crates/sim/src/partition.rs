//! Topological partitioning of a compiled [`Program`] for activity-driven
//! execution (the ESSENT/GSIM-style scheduling layer, §3.5).
//!
//! Instructions are grouped into *partitions*: contiguous chunks of the
//! dataflow connected components, in topological order. Two structural
//! facts make partition-granular dirty tracking sound:
//!
//! 1. Instructions are unioned only through *producer* edges (an
//!    instruction joins the component of each operand's producer), so a
//!    cross-partition data dependency always flows from a partition with
//!    smaller instruction indices to one with larger indices.
//! 2. Partitions are laid out (and executed) in ascending first-index
//!    order, so a single forward sweep over the dirty-partition bitmap
//!    executes producers before consumers — no worklist iteration needed.
//!
//! Each partition records its *escape slots*: destinations read by later
//! partitions or watched by a cover. After executing a partition, only
//! escapes whose value changed propagate dirtiness — the direct analog of
//! the seed backend's per-slot change check, hoisted to partition
//! granularity.

use crate::compile::{Instr, MicroOp, Program};

/// Default cap on instructions per partition. Small enough that quiescent
/// subtrees of a large cone are skipped, large enough that the per-cycle
/// dirty sweep is a fraction of instruction count.
pub const DEFAULT_MAX_PARTITION: usize = 32;

/// One acyclic partition: the instruction range `[start, end)` in the
/// reordered program plus its escape slots.
#[derive(Debug, Clone)]
pub struct PartInfo {
    /// First instruction index (in [`PartitionedProgram::prog`]).
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Destination slots observed outside the partition (consumed by a
    /// later partition or watched by a cover / cover_values point).
    pub escapes: Vec<u32>,
}

/// A program reordered into acyclic partitions with the lookup tables the
/// activity-driven executor needs for change propagation.
#[derive(Debug, Clone)]
pub struct PartitionedProgram {
    /// The program with instructions laid out partition-contiguously
    /// (still a valid topological order).
    pub prog: Program,
    /// Partitions in execution order.
    pub parts: Vec<PartInfo>,
    /// `slot → sorted partition ids` reading that slot as an operand.
    /// Drives dirtiness from pokes, register commits, and escapes.
    pub consumers: Vec<Vec<u32>>,
    /// `memory id → partition ids` containing a `MemRead` of it.
    pub mem_readers: Vec<Vec<u32>>,
    /// `slot → cover indices` whose predicate or enable reads the slot.
    pub cover_watch: Vec<Vec<u32>>,
    /// `slot → cover_values indices` whose signal or enable reads the slot.
    pub cv_watch: Vec<Vec<u32>>,
}

struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            self.0[x as usize] = self.0[self.0[x as usize] as usize];
            x = self.0[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[rb as usize] = ra;
        }
    }
}

/// Partition a program into acyclic, topologically ordered chunks of at
/// most `max_part` instructions.
pub fn partition(prog: Program, max_part: usize) -> PartitionedProgram {
    let max_part = max_part.max(1);
    let n = prog.instrs.len();
    let nslots = prog.init_slots.len();

    // slot → producing instruction (programs are single-assignment per
    // settle; a defensive later-producer-wins matches execution order)
    let mut producer = vec![u32::MAX; nslots];
    for (i, instr) in prog.instrs.iter().enumerate() {
        producer[instr.dst as usize] = i as u32;
    }

    // connected components over producer edges
    let mut dsu = Dsu::new(n);
    for (i, instr) in prog.instrs.iter().enumerate() {
        for s in [instr.a, instr.b, instr.c] {
            let p = producer[s as usize];
            if p != u32::MAX {
                dsu.union(i as u32, p);
            }
        }
    }

    // component → member instructions (ascending index order)
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n as u32 {
        let r = dsu.find(i);
        members[r as usize].push(i);
    }

    // chunk each component, then order all chunks by first instruction
    let mut chunks: Vec<Vec<u32>> = Vec::new();
    for m in members {
        for chunk in m.chunks(max_part) {
            chunks.push(chunk.to_vec());
        }
    }
    chunks.sort_by_key(|c| c[0]);

    // reorder instructions partition-contiguously
    let mut instrs: Vec<Instr> = Vec::with_capacity(n);
    let mut parts: Vec<PartInfo> = Vec::with_capacity(chunks.len());
    let mut part_of_instr = vec![0u32; n]; // old index → partition id
    for (p, chunk) in chunks.iter().enumerate() {
        let start = instrs.len() as u32;
        for &old in chunk {
            part_of_instr[old as usize] = p as u32;
            instrs.push(prog.instrs[old as usize]);
        }
        parts.push(PartInfo {
            start,
            end: instrs.len() as u32,
            escapes: Vec::new(),
        });
    }

    // consumers / mem_readers from the reordered layout
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); nslots];
    let mut mem_readers: Vec<Vec<u32>> = vec![Vec::new(); prog.mems.len()];
    for (p, part) in parts.iter().enumerate() {
        let p = p as u32;
        for instr in &instrs[part.start as usize..part.end as usize] {
            for s in [instr.a, instr.b, instr.c] {
                if s != 0 && consumers[s as usize].last() != Some(&p) {
                    consumers[s as usize].push(p);
                }
            }
            if instr.op == MicroOp::MemRead && mem_readers[instr.imm as usize].last() != Some(&p) {
                mem_readers[instr.imm as usize].push(p);
            }
        }
    }

    // cover watch tables
    let mut cover_watch: Vec<Vec<u32>> = vec![Vec::new(); nslots];
    for (i, c) in prog.covers.iter().enumerate() {
        for s in [c.pred, c.enable] {
            if !cover_watch[s as usize].contains(&(i as u32)) {
                cover_watch[s as usize].push(i as u32);
            }
        }
    }
    let mut cv_watch: Vec<Vec<u32>> = vec![Vec::new(); nslots];
    for (i, cv) in prog.cover_values.iter().enumerate() {
        for s in [cv.signal, cv.enable] {
            if !cv_watch[s as usize].contains(&(i as u32)) {
                cv_watch[s as usize].push(i as u32);
            }
        }
    }

    // escapes: dsts consumed outside their partition or watched by covers
    for (p, part) in parts.iter_mut().enumerate() {
        let p = p as u32;
        for instr in &instrs[part.start as usize..part.end as usize] {
            let d = instr.dst;
            let escapes = consumers[d as usize].iter().any(|&q| q != p)
                || !cover_watch[d as usize].is_empty()
                || !cv_watch[d as usize].is_empty();
            if escapes && !part.escapes.contains(&d) {
                part.escapes.push(d);
            }
        }
    }

    // soundness: every data dependency flows forward in the new layout
    // (first writer precedes every reader)
    let mut first_writer = vec![u32::MAX; nslots];
    for (k, instr) in instrs.iter().enumerate().rev() {
        first_writer[instr.dst as usize] = k as u32;
    }
    for (k, instr) in instrs.iter().enumerate() {
        for s in [instr.a, instr.b, instr.c] {
            let pos = first_writer[s as usize];
            assert!(
                pos == u32::MAX || pos < k as u32,
                "partitioning broke topological order"
            );
        }
    }

    let prog = Program { instrs, ..prog };
    PartitionedProgram {
        prog,
        parts,
        consumers,
        mem_readers,
        cover_watch,
        cv_watch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::elaborate::elaborate;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn prog_for(src: &str) -> Program {
        let low = passes::lower(parse(src).unwrap()).unwrap();
        compile(&elaborate(&low).unwrap()).unwrap()
    }

    const TWO_CONES: &str = "
circuit T :
  module T :
    input a : UInt<4>
    input b : UInt<4>
    input c : UInt<4>
    output o1 : UInt<5>
    output o2 : UInt<4>
    o1 <= add(a, b)
    o2 <= not(c)
";

    #[test]
    fn independent_cones_get_distinct_partitions() {
        let pp = partition(prog_for(TWO_CONES), 32);
        assert!(pp.parts.len() >= 2, "parts: {}", pp.parts.len());
        let total: usize = pp.parts.iter().map(|p| (p.end - p.start) as usize).sum();
        assert_eq!(total, pp.prog.instrs.len());
    }

    #[test]
    fn small_caps_split_big_cones() {
        let pp = partition(prog_for(TWO_CONES), 1);
        for p in &pp.parts {
            assert_eq!(p.end - p.start, 1);
        }
    }

    #[test]
    fn consumers_cover_input_slots() {
        let pp = partition(prog_for(TWO_CONES), 32);
        for (name, slot) in &pp.prog.inputs {
            if name == "a" || name == "b" || name == "c" {
                assert!(
                    !pp.consumers[*slot as usize].is_empty(),
                    "input {name} has no consuming partition"
                );
            }
        }
    }

    #[test]
    fn covers_are_watched() {
        let pp = partition(
            prog_for(
                "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : hit
",
            ),
            32,
        );
        let watched: usize = pp.cover_watch.iter().map(Vec::len).sum();
        assert!(watched >= 1);
    }

    #[test]
    fn mem_readers_registered() {
        let pp = partition(
            prog_for(
                "
circuit T :
  module T :
    input clock : Clock
    input addr : UInt<4>
    output o : UInt<8>
    mem m : UInt<8>[16], readers(r), writers(w)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
    m.w.addr <= addr
    m.w.en <= UInt<1>(0)
    m.w.data <= UInt<8>(0)
    m.w.mask <= UInt<1>(1)
    o <= m.r.data
",
            ),
            32,
        );
        assert_eq!(pp.mem_readers.len(), 1);
        assert!(!pp.mem_readers[0].is_empty());
    }
}

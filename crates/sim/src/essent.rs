//! The activity-driven simulator backend (ESSENT analog, §3.5).
//!
//! Reuses the compiled [`Program`] but skips work whose inputs did not
//! change since the last evaluation — ESSENT's "exploit low activity
//! factors" insight. Two engines share the [`EssentSim`] interface:
//!
//! * **Partitioned** (default): the program is grouped into acyclic
//!   partitions ([`crate::partition`]) and a dirty-partition worklist
//!   gates execution at partition granularity. Cover sampling is
//!   *batched*: a cover's count is materialized lazily from
//!   `(active, since-cycle)` pairs and only recomputed when a partition
//!   that feeds it actually changed its watched slots — quiescent cycles
//!   never touch the cover list at all.
//! * **Per-instruction**: the seed implementation (per-slot dirty bits,
//!   per-cycle cover scan), kept as the A/B baseline for
//!   `bench_sim` and as an escape hatch (`RTLCOV_SIM_NO_PARTITION`).
//!
//! On quiescent designs the partitioned engine's step cost is O(number of
//! registers) bookkeeping; on fully active designs it degrades to the
//! compiled backend plus a partition sweep.

use crate::compile::{compile, MicroOp, Program};
use crate::compiled::exec_instr;
use crate::elaborate::elaborate;
use crate::opt::{optimize, OptOptions, OptStats};
use crate::partition::{partition, PartitionedProgram, DEFAULT_MAX_PARTITION};
use crate::{Fuel, SimError, Simulator};
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::cell::RefCell;
use std::collections::HashMap;

/// Construction knobs for [`EssentSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EssentOptions {
    /// Run the [`crate::opt`] pipeline on the program first.
    pub optimize: bool,
    /// Use the partitioned engine (otherwise the seed per-instruction one).
    pub partition: bool,
    /// Partition size cap (see [`DEFAULT_MAX_PARTITION`]).
    pub max_partition: usize,
}

impl Default for EssentOptions {
    fn default() -> Self {
        EssentOptions {
            optimize: true,
            partition: true,
            max_partition: DEFAULT_MAX_PARTITION,
        }
    }
}

impl EssentOptions {
    /// Defaults, honoring the `RTLCOV_SIM_NO_OPT` and
    /// `RTLCOV_SIM_NO_PARTITION` escape hatches.
    pub fn from_env() -> Self {
        EssentOptions {
            optimize: std::env::var_os("RTLCOV_SIM_NO_OPT").is_none(),
            partition: std::env::var_os("RTLCOV_SIM_NO_PARTITION").is_none(),
            max_partition: DEFAULT_MAX_PARTITION,
        }
    }
}

/// Activity-driven simulator.
#[derive(Debug, Clone)]
pub struct EssentSim {
    /// Interior-mutable so `peek(&self)` can settle combinational logic.
    inner: RefCell<Engine>,
    fuel: Fuel,
    opt_stats: OptStats,
}

#[derive(Debug, Clone)]
enum Engine {
    PerInstr(Box<PerInstr>),
    Partitioned(Box<Partitioned>),
}

impl EssentSim {
    /// Build an activity-driven simulator from a lowered circuit with the
    /// default optimize+partition pipeline (honoring the env escape
    /// hatches).
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures.
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        Self::new_with(circuit, &EssentOptions::from_env())
    }

    /// Build with explicit options (for A/B benchmarking the seed
    /// per-instruction engine against the partitioned one).
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures.
    pub fn new_with(circuit: &Circuit, opts: &EssentOptions) -> Result<Self, SimError> {
        let flat = elaborate(circuit).map_err(|e| SimError(e.0))?;
        let prog = compile(&flat).map_err(|e| SimError(e.0))?;
        let opt_opts = if opts.optimize {
            OptOptions::default()
        } else {
            OptOptions::none()
        };
        let (prog, opt_stats) = optimize(&prog, &opt_opts);
        let engine = if opts.partition {
            Engine::Partitioned(Box::new(Partitioned::new(partition(
                prog,
                opts.max_partition,
            ))))
        } else {
            Engine::PerInstr(Box::new(PerInstr::new(prog)))
        };
        Ok(EssentSim {
            inner: RefCell::new(engine),
            fuel: Fuel::unlimited(),
            opt_stats,
        })
    }

    /// What the optimizer did while building this simulator.
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// Fraction of instruction evaluations actually executed (activity
    /// factor); 1.0 before the first step.
    pub fn activity_factor(&self) -> f64 {
        match &*self.inner.borrow() {
            Engine::PerInstr(e) => activity(e.executed_instrs, e.total_instr_opportunities),
            Engine::Partitioned(e) => activity(e.executed_instrs, e.total_instr_opportunities),
        }
    }

    /// Fraction of partition evaluations actually executed; `None` on the
    /// per-instruction engine, 1.0 before the first step.
    pub fn partition_activity(&self) -> Option<f64> {
        match &*self.inner.borrow() {
            Engine::PerInstr(_) => None,
            Engine::Partitioned(e) => Some(activity(e.parts_executed, e.part_opportunities)),
        }
    }

    /// Number of partitions (`None` on the per-instruction engine).
    pub fn partitions(&self) -> Option<usize> {
        match &*self.inner.borrow() {
            Engine::PerInstr(_) => None,
            Engine::Partitioned(e) => Some(e.pp.parts.len()),
        }
    }

    /// Number of cycles executed.
    pub fn cycles(&self) -> u64 {
        match &*self.inner.borrow() {
            Engine::PerInstr(e) => e.cycles,
            Engine::Partitioned(e) => e.cycles,
        }
    }
}

fn activity(executed: u64, opportunities: u64) -> f64 {
    if opportunities == 0 {
        1.0
    } else {
        executed as f64 / opportunities as f64
    }
}

fn find_mem(prog: &Program, mem: &str) -> Result<usize, SimError> {
    prog.mems
        .iter()
        .position(|m| m.name == mem)
        .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))
}

// ---------------------------------------------------------------------------
// Per-instruction engine (the seed implementation, kept as A/B baseline)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PerInstr {
    prog: Program,
    slots: Vec<u64>,
    mems: Vec<Vec<u64>>,
    dirty: Vec<bool>,
    mem_dirty: Vec<bool>,
    first_eval: bool,
    cover_counts: Vec<u64>,
    cover_values_counts: Vec<HashMap<u64, u64>>,
    cycles: u64,
    executed_instrs: u64,
    total_instr_opportunities: u64,
}

impl PerInstr {
    fn new(prog: Program) -> Self {
        let slots = prog.init_slots.clone();
        let mems: Vec<Vec<u64>> = prog.mems.iter().map(|m| vec![0u64; m.depth]).collect();
        let dirty = vec![false; slots.len()];
        let mem_dirty = vec![false; mems.len()];
        let cover_counts = vec![0; prog.covers.len()];
        let cover_values_counts = vec![HashMap::new(); prog.cover_values.len()];
        PerInstr {
            prog,
            slots,
            mems,
            dirty,
            mem_dirty,
            first_eval: true,
            cover_counts,
            cover_values_counts,
            cycles: 0,
            executed_instrs: 0,
            total_instr_opportunities: 0,
        }
    }

    fn eval_comb(&mut self) {
        let all = self.first_eval;
        self.first_eval = false;
        for instr in &self.prog.instrs {
            self.total_instr_opportunities += 1;
            let inputs_dirty = all
                || self.dirty[instr.a as usize]
                || self.dirty[instr.b as usize]
                || self.dirty[instr.c as usize]
                || (instr.op == MicroOp::MemRead && self.mem_dirty[instr.imm as usize]);
            if !inputs_dirty {
                continue;
            }
            self.executed_instrs += 1;
            let before = self.slots[instr.dst as usize];
            exec_instr(instr, &mut self.slots, &self.mems);
            if self.slots[instr.dst as usize] != before || all {
                self.dirty[instr.dst as usize] = true;
            }
        }
    }

    fn sample_covers(&mut self) {
        for (i, cov) in self.prog.covers.iter().enumerate() {
            if self.slots[cov.pred as usize] != 0 && self.slots[cov.enable as usize] != 0 {
                self.cover_counts[i] = self.cover_counts[i].saturating_add(1);
            }
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            if self.slots[cv.enable as usize] != 0 {
                let v = self.slots[cv.signal as usize];
                let entry = self.cover_values_counts[i].entry(v).or_insert(0);
                *entry = entry.saturating_add(1);
            }
        }
    }

    fn commit(&mut self) {
        // clear the per-cycle dirty flags, then re-dirty what state changed
        for d in self.dirty.iter_mut() {
            *d = false;
        }
        for d in self.mem_dirty.iter_mut() {
            *d = false;
        }
        for m in 0..self.prog.mems.len() {
            let mem = &self.prog.mems[m];
            for w in &mem.writers {
                if self.slots[w.en as usize] != 0 && self.slots[w.mask as usize] != 0 {
                    let addr = self.slots[w.addr as usize] as usize;
                    if addr < mem.depth {
                        let data = self.slots[w.data as usize] & mem.mask;
                        if self.mems[m][addr] != data {
                            self.mems[m][addr] = data;
                            self.mem_dirty[m] = true;
                        }
                    }
                }
            }
        }
        for r in &self.prog.regs {
            let next = self.slots[r.next as usize];
            if self.slots[r.value as usize] != next {
                self.slots[r.value as usize] = next;
                self.dirty[r.value as usize] = true;
            }
        }
    }

    fn poke(&mut self, signal: &str, value: u64) {
        let slot = self.prog.signal_slot[signal] as usize;
        let w = self.prog.slot_width[slot];
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let v = value & mask;
        if self.slots[slot] != v {
            self.slots[slot] = v;
            self.dirty[slot] = true;
        }
    }

    fn step(&mut self) {
        self.eval_comb();
        self.sample_covers();
        self.commit();
        self.cycles += 1;
    }

    fn cover_counts(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        for (i, cov) in self.prog.covers.iter().enumerate() {
            map.record(&cov.name, self.cover_counts[i]);
            map.declare(&cov.name);
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            for (value, count) in &self.cover_values_counts[i] {
                map.record(format!("{}[{value}]", cv.name), *count);
            }
        }
        map
    }
}

// ---------------------------------------------------------------------------
// Partitioned engine (dirty-partition worklist + batched cover sampling)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Partitioned {
    pp: PartitionedProgram,
    slots: Vec<u64>,
    mems: Vec<Vec<u64>>,
    part_dirty: Vec<bool>,
    /// Fast path: nothing is dirty, skip the partition sweep entirely.
    any_dirty: bool,
    /// Escape-value snapshot buffer (reused across partitions).
    scratch: Vec<u64>,
    // Batched cover state: count covers cycles `< since`; `active` is the
    // predicate state for cycles `since..now`. A cover is only recomputed
    // ("flushed") when a watched slot actually changed.
    cov_active: Vec<bool>,
    cov_since: Vec<u64>,
    cov_count: Vec<u64>,
    cov_stale: Vec<bool>,
    cov_stale_list: Vec<u32>,
    // Same scheme for cover_values: `cv_val` is the sampled value for
    // cycles `since..now` while `cv_en` gates it.
    cv_en: Vec<bool>,
    cv_val: Vec<u64>,
    cv_since: Vec<u64>,
    cv_counts: Vec<HashMap<u64, u64>>,
    cv_stale: Vec<bool>,
    cv_stale_list: Vec<u32>,
    cycles: u64,
    executed_instrs: u64,
    total_instr_opportunities: u64,
    parts_executed: u64,
    part_opportunities: u64,
}

impl Partitioned {
    fn new(pp: PartitionedProgram) -> Self {
        let slots = pp.prog.init_slots.clone();
        let mems: Vec<Vec<u64>> = pp.prog.mems.iter().map(|m| vec![0u64; m.depth]).collect();
        let nparts = pp.parts.len();
        let ncov = pp.prog.covers.len();
        let ncv = pp.prog.cover_values.len();
        Partitioned {
            slots,
            mems,
            part_dirty: vec![true; nparts],
            any_dirty: true,
            scratch: Vec::new(),
            cov_active: vec![false; ncov],
            cov_since: vec![0; ncov],
            cov_count: vec![0; ncov],
            cov_stale: vec![true; ncov],
            cov_stale_list: (0..ncov as u32).collect(),
            cv_en: vec![false; ncv],
            cv_val: vec![0; ncv],
            cv_since: vec![0; ncv],
            cv_counts: vec![HashMap::new(); ncv],
            cv_stale: vec![true; ncv],
            cv_stale_list: (0..ncv as u32).collect(),
            cycles: 0,
            executed_instrs: 0,
            total_instr_opportunities: 0,
            parts_executed: 0,
            part_opportunities: 0,
            pp,
        }
    }

    /// Mark everything observing `slot` after its value changed: consumer
    /// partitions become dirty, watching covers become stale.
    fn touch_slot(&mut self, slot: usize) {
        for &q in &self.pp.consumers[slot] {
            self.part_dirty[q as usize] = true;
            self.any_dirty = true;
        }
        for &ci in &self.pp.cover_watch[slot] {
            if !self.cov_stale[ci as usize] {
                self.cov_stale[ci as usize] = true;
                self.cov_stale_list.push(ci);
            }
        }
        for &ci in &self.pp.cv_watch[slot] {
            if !self.cv_stale[ci as usize] {
                self.cv_stale[ci as usize] = true;
                self.cv_stale_list.push(ci);
            }
        }
    }

    /// Execute dirty partitions in ascending order (a valid topological
    /// order — see [`crate::partition`]), propagating dirtiness through
    /// changed escape slots only.
    fn settle(&mut self) {
        if !self.any_dirty {
            return;
        }
        for p in 0..self.pp.parts.len() {
            if !self.part_dirty[p] {
                continue;
            }
            self.part_dirty[p] = false;
            let part = &self.pp.parts[p];
            let (start, end) = (part.start as usize, part.end as usize);
            self.scratch.clear();
            for &s in &part.escapes {
                self.scratch.push(self.slots[s as usize]);
            }
            for instr in &self.pp.prog.instrs[start..end] {
                exec_instr(instr, &mut self.slots, &self.mems);
            }
            self.executed_instrs += (end - start) as u64;
            self.parts_executed += 1;
            for k in 0..self.pp.parts[p].escapes.len() {
                let s = self.pp.parts[p].escapes[k] as usize;
                if self.slots[s] != self.scratch[k] {
                    // cross-partition deps always flow to later partitions,
                    // so marking here is seen by this same sweep
                    for ci in 0..self.pp.consumers[s].len() {
                        let q = self.pp.consumers[s][ci] as usize;
                        if q != p {
                            self.part_dirty[q] = true;
                        }
                    }
                    for ci in 0..self.pp.cover_watch[s].len() {
                        let c = self.pp.cover_watch[s][ci];
                        if !self.cov_stale[c as usize] {
                            self.cov_stale[c as usize] = true;
                            self.cov_stale_list.push(c);
                        }
                    }
                    for ci in 0..self.pp.cv_watch[s].len() {
                        let c = self.pp.cv_watch[s][ci];
                        if !self.cv_stale[c as usize] {
                            self.cv_stale[c as usize] = true;
                            self.cv_stale_list.push(c);
                        }
                    }
                }
            }
        }
        self.any_dirty = false;
    }

    /// Flush stale covers: close the `[since, now)` interval under the old
    /// predicate state, then latch the new state. Clean covers cost
    /// nothing per cycle.
    fn sample_covers(&mut self) {
        let t = self.cycles;
        while let Some(ci) = self.cov_stale_list.pop() {
            let i = ci as usize;
            self.cov_stale[i] = false;
            if self.cov_active[i] {
                self.cov_count[i] = self.cov_count[i].saturating_add(t - self.cov_since[i]);
            }
            let cov = &self.pp.prog.covers[i];
            self.cov_active[i] =
                self.slots[cov.pred as usize] != 0 && self.slots[cov.enable as usize] != 0;
            self.cov_since[i] = t;
        }
        while let Some(ci) = self.cv_stale_list.pop() {
            let i = ci as usize;
            self.cv_stale[i] = false;
            if self.cv_en[i] {
                let delta = t - self.cv_since[i];
                if delta > 0 {
                    let entry = self.cv_counts[i].entry(self.cv_val[i]).or_insert(0);
                    *entry = entry.saturating_add(delta);
                }
            }
            let cv = &self.pp.prog.cover_values[i];
            self.cv_en[i] = self.slots[cv.enable as usize] != 0;
            self.cv_val[i] = self.slots[cv.signal as usize];
            self.cv_since[i] = t;
        }
    }

    fn commit(&mut self) {
        // memory writes use pre-edge values
        for m in 0..self.pp.prog.mems.len() {
            let mem = &self.pp.prog.mems[m];
            for w in &mem.writers {
                if self.slots[w.en as usize] != 0 && self.slots[w.mask as usize] != 0 {
                    let addr = self.slots[w.addr as usize] as usize;
                    if addr < mem.depth {
                        let data = self.slots[w.data as usize] & mem.mask;
                        if self.mems[m][addr] != data {
                            self.mems[m][addr] = data;
                            for &q in &self.pp.mem_readers[m] {
                                self.part_dirty[q as usize] = true;
                                self.any_dirty = true;
                            }
                        }
                    }
                }
            }
        }
        for r in 0..self.pp.prog.regs.len() {
            let (value, next) = (
                self.pp.prog.regs[r].value as usize,
                self.pp.prog.regs[r].next as usize,
            );
            let nv = self.slots[next];
            if self.slots[value] != nv {
                self.slots[value] = nv;
                self.touch_slot(value);
            }
        }
    }

    fn poke(&mut self, signal: &str, value: u64) {
        let slot = self.pp.prog.signal_slot[signal] as usize;
        let w = self.pp.prog.slot_width[slot];
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let v = value & mask;
        if self.slots[slot] != v {
            self.slots[slot] = v;
            self.touch_slot(slot);
        }
    }

    fn step(&mut self) {
        self.settle();
        self.sample_covers();
        self.commit();
        self.cycles += 1;
        self.total_instr_opportunities += self.pp.prog.instrs.len() as u64;
        self.part_opportunities += self.pp.parts.len() as u64;
    }

    /// Materialize counts: flushed intervals plus the still-open one.
    fn cover_counts(&self) -> CoverageMap {
        let t = self.cycles;
        let mut map = CoverageMap::new();
        for (i, cov) in self.pp.prog.covers.iter().enumerate() {
            let mut c = self.cov_count[i];
            if self.cov_active[i] {
                c = c.saturating_add(t - self.cov_since[i]);
            }
            map.record(&cov.name, c);
            map.declare(&cov.name);
        }
        for (i, cv) in self.pp.prog.cover_values.iter().enumerate() {
            for (value, count) in &self.cv_counts[i] {
                map.record(format!("{}[{value}]", cv.name), *count);
            }
            if self.cv_en[i] && t > self.cv_since[i] {
                // record() saturating-adds, so the open interval stacks on
                // top of whatever the flushed map already holds for cv_val
                map.record(
                    format!("{}[{}]", cv.name, self.cv_val[i]),
                    t - self.cv_since[i],
                );
            }
        }
        map
    }
}

// ---------------------------------------------------------------------------
// Shared Simulator impl
// ---------------------------------------------------------------------------

impl Simulator for EssentSim {
    fn poke(&mut self, signal: &str, value: u64) {
        match self.inner.get_mut() {
            Engine::PerInstr(e) => e.poke(signal, value),
            Engine::Partitioned(e) => e.poke(signal, value),
        }
    }

    fn peek(&self, signal: &str) -> u64 {
        let mut inner = self.inner.borrow_mut();
        match &mut *inner {
            Engine::PerInstr(e) => {
                e.eval_comb();
                e.slots[e.prog.signal_slot[signal] as usize]
            }
            Engine::Partitioned(e) => {
                e.settle();
                e.slots[e.pp.prog.signal_slot[signal] as usize]
            }
        }
    }

    fn step(&mut self) {
        if !self.fuel.consume() {
            return;
        }
        match self.inner.get_mut() {
            Engine::PerInstr(e) => e.step(),
            Engine::Partitioned(e) => e.step(),
        }
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel.starved()
    }

    fn cover_counts(&self) -> CoverageMap {
        match &*self.inner.borrow() {
            Engine::PerInstr(e) => e.cover_counts(),
            Engine::Partitioned(e) => e.cover_counts(),
        }
    }

    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        match self.inner.get_mut() {
            Engine::PerInstr(e) => {
                let idx = find_mem(&e.prog, mem)?;
                if addr as usize >= e.prog.mems[idx].depth {
                    return Err(SimError(format!("address {addr} out of range for `{mem}`")));
                }
                e.mems[idx][addr as usize] = value & e.prog.mems[idx].mask;
                e.mem_dirty[idx] = true;
                Ok(())
            }
            Engine::Partitioned(e) => {
                let idx = find_mem(&e.pp.prog, mem)?;
                if addr as usize >= e.pp.prog.mems[idx].depth {
                    return Err(SimError(format!("address {addr} out of range for `{mem}`")));
                }
                e.mems[idx][addr as usize] = value & e.pp.prog.mems[idx].mask;
                for qi in 0..e.pp.mem_readers[idx].len() {
                    let q = e.pp.mem_readers[idx][qi] as usize;
                    e.part_dirty[q] = true;
                    e.any_dirty = true;
                }
                Ok(())
            }
        }
    }

    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        let inner = self.inner.borrow();
        let (prog, mems) = match &*inner {
            Engine::PerInstr(e) => (&e.prog, &e.mems),
            Engine::Partitioned(e) => (&e.pp.prog, &e.mems),
        };
        let idx = find_mem(prog, mem)?;
        mems[idx]
            .get(addr as usize)
            .copied()
            .ok_or_else(|| SimError(format!("address {addr} out of range for `{mem}`")))
    }

    fn signals(&self) -> Vec<String> {
        let inner = self.inner.borrow();
        let prog = match &*inner {
            Engine::PerInstr(e) => &e.prog,
            Engine::Partitioned(e) => &e.pp.prog,
        };
        let mut v: Vec<String> = prog.signal_slot.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn sim(src: &str) -> EssentSim {
        EssentSim::new(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    fn sim_with(src: &str, opts: &EssentOptions) -> EssentSim {
        EssentSim::new_with(&passes::lower(parse(src).unwrap()).unwrap(), opts).unwrap()
    }

    const COUNTER: &str = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
";

    #[test]
    fn matches_counter_semantics() {
        let mut s = sim(COUNTER);
        s.reset(1);
        s.poke("en", 1);
        s.step_n(5);
        s.poke("en", 0);
        s.step_n(10);
        assert_eq!(s.peek("o"), 5);
    }

    #[test]
    fn quiescent_logic_is_skipped() {
        let mut s = sim(COUNTER);
        s.reset(1);
        s.poke("en", 0);
        // after settling, nothing changes: activity drops
        s.step_n(100);
        assert!(
            s.activity_factor() < 0.5,
            "activity {}",
            s.activity_factor()
        );
    }

    #[test]
    fn covers_still_counted_when_quiescent() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : hit
");
        s.poke("a", 1);
        s.step_n(10);
        assert_eq!(s.cover_counts().count("hit"), Some(10));
    }

    #[test]
    fn engines_agree_on_counter() {
        let per = EssentOptions {
            optimize: false,
            partition: false,
            ..EssentOptions::default()
        };
        let mut a = sim(COUNTER);
        let mut b = sim_with(COUNTER, &per);
        for s in [&mut a as &mut dyn Simulator, &mut b] {
            s.reset(2);
            s.poke("en", 1);
            s.step_n(7);
            s.poke("en", 0);
            s.step_n(3);
        }
        assert_eq!(a.peek("o"), b.peek("o"));
        assert_eq!(a.cover_counts(), b.cover_counts());
    }

    #[test]
    fn batched_covers_match_toggling_predicate() {
        const SRC: &str = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    input en : UInt<1>
    cover(clock, a, en) : hit
";
        let per = EssentOptions {
            optimize: false,
            partition: false,
            ..EssentOptions::default()
        };
        let mut p = sim(SRC);
        let mut b = sim_with(SRC, &per);
        let script = [
            (1u64, 1u64, 3usize),
            (0, 1, 2),
            (1, 0, 4),
            (1, 1, 1),
            (0, 0, 5),
            (1, 1, 2),
        ];
        for s in [&mut p as &mut dyn Simulator, &mut b] {
            for (a, en, n) in script {
                s.poke("a", a);
                s.poke("en", en);
                s.step_n(n);
            }
        }
        assert_eq!(p.cover_counts(), b.cover_counts());
        assert_eq!(p.cover_counts().count("hit"), Some(6));
    }

    #[test]
    fn partition_activity_is_observable() {
        let mut s = sim(COUNTER);
        s.reset(1);
        s.poke("en", 0);
        s.step_n(50);
        let pa = s.partition_activity().expect("partitioned engine");
        assert!(pa < 0.5, "partition activity {pa}");
        assert!(s.partitions().unwrap() >= 1);
    }

    #[test]
    fn cover_values_batching_matches_per_cycle_scan() {
        const SRC: &str = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<2>
    reg r : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    when en :
      r <= tail(add(r, UInt<2>(1)), 1)
    o <= r
    cover_values(clock, r, en) : vals
";
        let per = EssentOptions {
            optimize: false,
            partition: false,
            ..EssentOptions::default()
        };
        let mut p = sim(SRC);
        let mut b = sim_with(SRC, &per);
        for s in [&mut p as &mut dyn Simulator, &mut b] {
            s.reset(1);
            s.poke("en", 1);
            s.step_n(3);
            s.poke("en", 0);
            s.step_n(9);
            s.poke("en", 1);
            s.step_n(2);
        }
        assert_eq!(p.cover_counts(), b.cover_counts());
    }
}

//! The activity-driven simulator backend (ESSENT analog, §3.5).
//!
//! Reuses the compiled [`Program`] but skips instructions whose inputs did
//! not change since the last evaluation — ESSENT's "exploit low activity
//! factors" insight. On quiescent designs this evaluates only the active
//! cone each cycle; on fully active designs it degrades to the compiled
//! backend plus bookkeeping.

use crate::compile::{compile, MicroOp, Program};
use crate::compiled::exec_instr;
use crate::elaborate::elaborate;
use crate::{Fuel, SimError, Simulator};
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::collections::HashMap;

/// Activity-driven simulator.
#[derive(Debug, Clone)]
pub struct EssentSim {
    prog: Program,
    slots: Vec<u64>,
    mems: Vec<Vec<u64>>,
    dirty: Vec<bool>,
    mem_dirty: Vec<bool>,
    first_eval: bool,
    cover_counts: Vec<u64>,
    cover_values_counts: Vec<HashMap<u64, u64>>,
    cycles: u64,
    executed_instrs: u64,
    total_instr_opportunities: u64,
    fuel: Fuel,
}

impl EssentSim {
    /// Build an activity-driven simulator from a lowered circuit.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures.
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        let flat = elaborate(circuit).map_err(|e| SimError(e.0))?;
        let prog = compile(&flat).map_err(|e| SimError(e.0))?;
        let slots = prog.init_slots.clone();
        let mems: Vec<Vec<u64>> = prog.mems.iter().map(|m| vec![0u64; m.depth]).collect();
        let dirty = vec![false; slots.len()];
        let mem_dirty = vec![false; mems.len()];
        let cover_counts = vec![0; prog.covers.len()];
        let cover_values_counts = vec![HashMap::new(); prog.cover_values.len()];
        Ok(EssentSim {
            prog,
            slots,
            mems,
            dirty,
            mem_dirty,
            first_eval: true,
            cover_counts,
            cover_values_counts,
            cycles: 0,
            executed_instrs: 0,
            total_instr_opportunities: 0,
            fuel: Fuel::unlimited(),
        })
    }

    /// Fraction of instruction evaluations actually executed (activity
    /// factor); 1.0 before the first step.
    pub fn activity_factor(&self) -> f64 {
        if self.total_instr_opportunities == 0 {
            1.0
        } else {
            self.executed_instrs as f64 / self.total_instr_opportunities as f64
        }
    }

    /// Number of cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn eval_comb(&mut self) {
        let all = self.first_eval;
        self.first_eval = false;
        for instr in &self.prog.instrs {
            self.total_instr_opportunities += 1;
            let inputs_dirty = all
                || self.dirty[instr.a as usize]
                || self.dirty[instr.b as usize]
                || self.dirty[instr.c as usize]
                || (instr.op == MicroOp::MemRead && self.mem_dirty[instr.imm as usize]);
            if !inputs_dirty {
                continue;
            }
            self.executed_instrs += 1;
            let before = self.slots[instr.dst as usize];
            exec_instr(instr, &mut self.slots, &self.mems);
            if self.slots[instr.dst as usize] != before || all {
                self.dirty[instr.dst as usize] = true;
            }
        }
    }

    fn sample_covers(&mut self) {
        for (i, cov) in self.prog.covers.iter().enumerate() {
            if self.slots[cov.pred as usize] != 0 && self.slots[cov.enable as usize] != 0 {
                self.cover_counts[i] = self.cover_counts[i].saturating_add(1);
            }
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            if self.slots[cv.enable as usize] != 0 {
                let v = self.slots[cv.signal as usize];
                let entry = self.cover_values_counts[i].entry(v).or_insert(0);
                *entry = entry.saturating_add(1);
            }
        }
    }

    fn commit(&mut self) {
        // clear the per-cycle dirty flags, then re-dirty what state changed
        for d in self.dirty.iter_mut() {
            *d = false;
        }
        for d in self.mem_dirty.iter_mut() {
            *d = false;
        }
        for m in 0..self.prog.mems.len() {
            let mem = &self.prog.mems[m];
            for w in &mem.writers {
                if self.slots[w.en as usize] != 0 && self.slots[w.mask as usize] != 0 {
                    let addr = self.slots[w.addr as usize] as usize;
                    if addr < mem.depth {
                        let data = self.slots[w.data as usize] & mem.mask;
                        if self.mems[m][addr] != data {
                            self.mems[m][addr] = data;
                            self.mem_dirty[m] = true;
                        }
                    }
                }
            }
        }
        for r in &self.prog.regs {
            let next = self.slots[r.next as usize];
            if self.slots[r.value as usize] != next {
                self.slots[r.value as usize] = next;
                self.dirty[r.value as usize] = true;
            }
        }
    }
}

impl Simulator for EssentSim {
    fn poke(&mut self, signal: &str, value: u64) {
        let slot = self.prog.signal_slot[signal] as usize;
        let w = self.prog.slot_width[slot];
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let v = value & mask;
        if self.slots[slot] != v {
            self.slots[slot] = v;
            self.dirty[slot] = true;
        }
    }

    fn peek(&mut self, signal: &str) -> u64 {
        self.eval_comb();
        self.slots[self.prog.signal_slot[signal] as usize]
    }

    fn step(&mut self) {
        if !self.fuel.consume() {
            return;
        }
        self.eval_comb();
        self.sample_covers();
        self.commit();
        self.cycles += 1;
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel.starved()
    }

    fn cover_counts(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        for (i, cov) in self.prog.covers.iter().enumerate() {
            map.record(&cov.name, self.cover_counts[i]);
            map.declare(&cov.name);
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            for (value, count) in &self.cover_values_counts[i] {
                map.record(format!("{}[{value}]", cv.name), *count);
            }
        }
        map
    }

    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        let idx = self
            .prog
            .mems
            .iter()
            .position(|m| m.name == mem)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        if addr as usize >= self.prog.mems[idx].depth {
            return Err(SimError(format!("address {addr} out of range for `{mem}`")));
        }
        self.mems[idx][addr as usize] = value & self.prog.mems[idx].mask;
        self.mem_dirty[idx] = true;
        Ok(())
    }

    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        let idx = self
            .prog
            .mems
            .iter()
            .position(|m| m.name == mem)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        self.mems[idx]
            .get(addr as usize)
            .copied()
            .ok_or_else(|| SimError(format!("address {addr} out of range for `{mem}`")))
    }

    fn signals(&self) -> Vec<String> {
        let mut v: Vec<String> = self.prog.signal_slot.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn sim(src: &str) -> EssentSim {
        EssentSim::new(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    const COUNTER: &str = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
";

    #[test]
    fn matches_counter_semantics() {
        let mut s = sim(COUNTER);
        s.reset(1);
        s.poke("en", 1);
        s.step_n(5);
        s.poke("en", 0);
        s.step_n(10);
        assert_eq!(s.peek("o"), 5);
    }

    #[test]
    fn quiescent_logic_is_skipped() {
        let mut s = sim(COUNTER);
        s.reset(1);
        s.poke("en", 0);
        // after settling, nothing changes: activity drops
        s.step_n(100);
        assert!(
            s.activity_factor() < 0.5,
            "activity {}",
            s.activity_factor()
        );
    }

    #[test]
    fn covers_still_counted_when_quiescent() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : hit
");
        s.poke("a", 1);
        s.step_n(10);
        assert_eq!(s.cover_counts().count("hit"), Some(10));
    }
}

//! Micro-op program optimizer — the GSIM-style compile-time layer between
//! [`compile`](crate::compile::compile) and execution.
//!
//! Rewrites a [`Program`] with constant folding, peephole simplification,
//! common-subexpression elimination, dead-slot elimination, and slot
//! compaction. Every pass preserves two invariants the rest of the system
//! depends on:
//!
//! 1. **Bit-exact slot semantics** — after any settle, every surviving
//!    slot holds exactly the value the unoptimized program would compute
//!    (masked to its width), so `peek` answers are unchanged.
//! 2. **Bit-identical coverage** — cover predicate/enable slots and
//!    cover-values slots are pinned, so the `CoverageMap` a backend reports
//!    is byte-for-byte identical with or without optimization.
//!
//! Slots fall into three classes: *variable* slots written each settle
//! (instruction destinations), *state* slots written between settles
//! (inputs, register values, memory-backed reads), and *constant* slots —
//! anonymous literals that are never written. Only constants participate
//! in folding; named signals are never folded through so that an
//! out-of-contract `poke` of an internal wire still behaves like the
//! unoptimized program (the producing instruction recomputes it on the
//! next settle).

use crate::compile::{mask_for, Instr, MicroOp, Program};
use crate::compiled::exec_instr;
use std::collections::HashMap;

/// Which slots dead-code elimination must treat as observable roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Observability {
    /// Every named signal stays computed — `peek` of any internal wire
    /// returns the same value as the unoptimized program. The safe
    /// default.
    #[default]
    AllSignals,
    /// Only registers, memories, covers, inputs and outputs are roots;
    /// internal wires feeding none of them are eliminated. `peek` of an
    /// eliminated wire returns its initial value — use only for harnesses
    /// that read outputs and coverage exclusively.
    StateAndOutputs,
}

/// Optimizer knobs. [`OptOptions::default`] enables every pass;
/// [`OptOptions::none`] is the A/B escape hatch that reproduces the seed
/// per-instruction program bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// Constant-fold instructions whose operands are all constants.
    pub fold: bool,
    /// Eliminate repeated identical computations.
    pub cse: bool,
    /// Algebraic rewrites (constant-condition mux, shift-by-zero,
    /// compare-with-zero → `Orr`, identity arithmetic).
    pub peephole: bool,
    /// Drop instructions whose results nobody observes.
    pub dce: bool,
    /// Renumber slots densely after elimination.
    pub compact: bool,
    /// Root set for dead-code elimination.
    pub observe: Observability,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            fold: true,
            cse: true,
            peephole: true,
            dce: true,
            compact: true,
            observe: Observability::AllSignals,
        }
    }
}

impl OptOptions {
    /// Disable every pass — the compiled program is returned untouched.
    pub fn none() -> Self {
        OptOptions {
            fold: false,
            cse: false,
            peephole: false,
            dce: false,
            compact: false,
            observe: Observability::AllSignals,
        }
    }

    /// Default options honoring the `RTLCOV_SIM_NO_OPT` environment escape
    /// hatch (set to any value to disable optimization globally).
    pub fn from_env() -> Self {
        if std::env::var_os("RTLCOV_SIM_NO_OPT").is_some() {
            Self::none()
        } else {
            Self::default()
        }
    }

    fn any(&self) -> bool {
        self.fold || self.cse || self.peephole || self.dce || self.compact
    }
}

/// What the optimizer did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instruction count before optimization.
    pub instrs_before: usize,
    /// Instruction count after optimization.
    pub instrs_after: usize,
    /// Slot count before optimization.
    pub slots_before: usize,
    /// Slot count after optimization.
    pub slots_after: usize,
    /// Instructions folded to compile-time constants.
    pub folded: usize,
    /// Peephole rewrites applied.
    pub peephole: usize,
    /// Copies propagated away.
    pub copy_propagated: usize,
    /// Common subexpressions eliminated.
    pub cse: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
}

/// Operand usage per op: whether `b` participates in the computation.
fn uses_b(op: MicroOp) -> bool {
    use MicroOp::*;
    matches!(
        op,
        Add | Sub
            | Mul
            | Div
            | DivS
            | Rem
            | RemS
            | Lt
            | LtS
            | Leq
            | LeqS
            | Gt
            | GtS
            | Geq
            | GeqS
            | Eq
            | Neq
            | And
            | Or
            | Xor
            | Dshl
            | Dshr
            | DshrS
            | Cat
            | MemRead
    )
}

fn commutative(op: MicroOp) -> bool {
    use MicroOp::*;
    matches!(op, Add | Mul | And | Or | Xor | Eq | Neq)
}

/// Evaluate an instruction whose used operands are all constants by
/// running it through the real executor on a scratch slot file — the
/// folder can never disagree with the interpreter it replaces.
fn try_fold(ri: &Instr, cv: &[Option<u64>]) -> Option<u64> {
    if ri.op == MicroOp::MemRead {
        return None;
    }
    let va = cv[ri.a as usize]?;
    let vb = if uses_b(ri.op) { cv[ri.b as usize]? } else { 0 };
    let vc = if ri.op == MicroOp::Mux {
        cv[ri.c as usize]?
    } else {
        0
    };
    let mut scratch = [0u64, va, vb, vc];
    let si = Instr {
        op: ri.op,
        dst: 0,
        a: 1,
        b: 2,
        c: 3,
        imm: ri.imm,
        aw: ri.aw,
        mask: ri.mask,
    };
    exec_instr(&si, &mut scratch, &[]);
    Some(scratch[0])
}

fn to_copy(ri: &mut Instr, src: u32) {
    ri.op = MicroOp::Copy;
    ri.a = src;
    ri.b = 0;
    ri.c = 0;
    ri.imm = 0;
}

/// Algebraic rewrites on a single (operand-resolved) instruction. Every
/// rewrite produces the identical masked result: operand slot values are
/// invariantly ≤ their width mask, and `Copy` re-applies the destination
/// mask, so identity rewrites hold whenever the source width fits the
/// destination (which the compiler's width rules guarantee for the cases
/// below). Returns true if the instruction was rewritten.
fn peephole(ri: &mut Instr, cv: &[Option<u64>], widths: &[u32]) -> bool {
    use MicroOp::*;
    let ca = cv[ri.a as usize];
    let cb = cv[ri.b as usize];
    match ri.op {
        Mux => {
            if let Some(c) = cv[ri.c as usize] {
                let src = if c != 0 { ri.a } else { ri.b };
                to_copy(ri, src);
                return true;
            }
        }
        Add | Or | Xor => {
            if cb == Some(0) {
                let s = ri.a;
                to_copy(ri, s);
                return true;
            }
            if ca == Some(0) {
                let s = ri.b;
                to_copy(ri, s);
                return true;
            }
        }
        Sub if cb == Some(0) => {
            let s = ri.a;
            to_copy(ri, s);
            return true;
        }
        Mul => {
            if ca == Some(0) || cb == Some(0) {
                to_copy(ri, 0);
                return true;
            }
            if cb == Some(1) {
                let s = ri.a;
                to_copy(ri, s);
                return true;
            }
            if ca == Some(1) {
                let s = ri.b;
                to_copy(ri, s);
                return true;
            }
        }
        And => {
            if ca == Some(0) || cb == Some(0) {
                to_copy(ri, 0);
                return true;
            }
            if cb == Some(mask_for(widths[ri.a as usize])) {
                let s = ri.a;
                to_copy(ri, s);
                return true;
            }
            if ca == Some(mask_for(widths[ri.b as usize])) {
                let s = ri.b;
                to_copy(ri, s);
                return true;
            }
        }
        Shl | Shr | Bits if ri.imm == 0 => {
            let s = ri.a;
            to_copy(ri, s);
            return true;
        }
        ShrS if ri.imm == 0 => {
            // shift-by-zero on a signed operand is exactly sign extension
            ri.op = Sext;
            return true;
        }
        Dshl => {
            if let Some(k) = cb {
                if k >= 64 {
                    to_copy(ri, 0);
                } else {
                    ri.op = Shl;
                    ri.imm = k as u32;
                    ri.b = 0;
                }
                return true;
            }
        }
        Dshr => {
            if let Some(k) = cb {
                if k >= 64 {
                    to_copy(ri, 0);
                } else {
                    ri.op = Shr;
                    ri.imm = k as u32;
                    ri.b = 0;
                }
                return true;
            }
        }
        DshrS => {
            if let Some(k) = cb {
                ri.op = ShrS;
                ri.imm = k.min(63) as u32;
                ri.b = 0;
                return true;
            }
        }
        Neq => {
            if cb == Some(0) {
                ri.op = Orr;
                ri.b = 0;
                return true;
            }
            if ca == Some(0) {
                ri.op = Orr;
                ri.a = ri.b;
                ri.b = 0;
                return true;
            }
        }
        Gt => {
            if cb == Some(0) {
                // a > 0 (unsigned) ⇔ a ≠ 0
                ri.op = Orr;
                ri.b = 0;
                return true;
            }
            if ca == Some(0) {
                to_copy(ri, 0);
                return true;
            }
        }
        Lt => {
            if ca == Some(0) {
                // 0 < b (unsigned) ⇔ b ≠ 0
                ri.op = Orr;
                ri.a = ri.b;
                ri.b = 0;
                return true;
            }
            if cb == Some(0) {
                to_copy(ri, 0);
                return true;
            }
        }
        Eq => {
            if cb == Some(0) && widths[ri.a as usize] == 1 {
                ri.op = Not;
                ri.b = 0;
                return true;
            }
            if ca == Some(0) && widths[ri.b as usize] == 1 {
                ri.op = Not;
                ri.a = ri.b;
                ri.b = 0;
                return true;
            }
        }
        _ => {}
    }
    false
}

#[derive(PartialEq, Eq, Hash)]
struct CseKey {
    op: u8,
    a: u32,
    b: u32,
    c: u32,
    imm: u32,
    aw: u32,
    mask: u64,
}

fn cse_key(ri: &Instr) -> CseKey {
    let (a, b) = if commutative(ri.op) && ri.a > ri.b {
        (ri.b, ri.a)
    } else {
        (ri.a, ri.b)
    };
    CseKey {
        op: ri.op as u8,
        a,
        b,
        c: ri.c,
        imm: ri.imm,
        aw: ri.aw,
        mask: ri.mask,
    }
}

/// Optimize a program. Returns the rewritten program and pass statistics.
///
/// The result is execution-equivalent to the input: identical values in
/// every surviving slot after any settle, identical register/memory/cover
/// behavior across steps, identical `CoverageMap` output.
pub fn optimize(prog: &Program, opts: &OptOptions) -> (Program, OptStats) {
    let n = prog.init_slots.len();
    let mut stats = OptStats {
        instrs_before: prog.instrs.len(),
        instrs_after: prog.instrs.len(),
        slots_before: n,
        slots_after: n,
        ..Default::default()
    };
    if !opts.any() {
        return (prog.clone(), stats);
    }

    // --- classify slots -------------------------------------------------
    let mut written = vec![0u32; n];
    for i in &prog.instrs {
        written[i.dst as usize] += 1;
    }
    // pinned slots must keep their producing instruction and may never be
    // substituted away: anything with a name or read by the runtime
    // (commit, cover sampling, peek, poke)
    let mut pinned = vec![false; n];
    pinned[0] = true;
    for &s in prog.signal_slot.values() {
        pinned[s as usize] = true;
    }
    for r in &prog.regs {
        pinned[r.value as usize] = true;
        pinned[r.next as usize] = true;
    }
    for m in &prog.mems {
        for w in &m.writers {
            for s in [w.addr, w.en, w.data, w.mask] {
                pinned[s as usize] = true;
            }
        }
    }
    for c in &prog.covers {
        pinned[c.pred as usize] = true;
        pinned[c.enable as usize] = true;
    }
    for cv in &prog.cover_values {
        pinned[cv.signal as usize] = true;
        pinned[cv.enable as usize] = true;
    }
    for (_, s) in prog.inputs.iter().chain(prog.outputs.iter()) {
        pinned[*s as usize] = true;
    }

    // constants: anonymous literal slots — never written, never pinned
    let mut const_val: Vec<Option<u64>> = (0..n)
        .map(|s| (written[s] == 0 && !pinned[s]).then(|| prog.init_slots[s]))
        .collect();
    // slot 0 is the shared constant-zero scratch
    const_val[0] = Some(0);

    // --- forward pass: fold / peephole / copy-prop / CSE ----------------
    let mut subst: Vec<u32> = (0..n as u32).collect();
    let mut new_init = prog.init_slots.clone();
    let mut new_widths = prog.slot_width.clone();
    let mut out: Vec<Instr> = Vec::with_capacity(prog.instrs.len());
    let mut cse_map: HashMap<CseKey, u32> = HashMap::new();
    let mut const_memo: HashMap<(u64, u32), u32> = HashMap::new();

    for instr in &prog.instrs {
        let mut ri = *instr;
        ri.a = subst[ri.a as usize];
        ri.b = subst[ri.b as usize];
        ri.c = subst[ri.c as usize];

        if opts.peephole && peephole(&mut ri, &const_val, &new_widths) {
            stats.peephole += 1;
        }

        let free = !pinned[ri.dst as usize] && written[ri.dst as usize] == 1;

        if opts.fold {
            if let Some(v) = try_fold(&ri, &const_val) {
                stats.folded += 1;
                if free {
                    const_val[ri.dst as usize] = Some(v);
                    new_init[ri.dst as usize] = v;
                    continue;
                }
                // pinned destination: keep an instruction so the slot is
                // recomputed every settle (poke-override semantics), but
                // load it from a shared constant slot
                if ri.op == MicroOp::Copy && const_val[ri.a as usize] == Some(v) {
                    out.push(ri);
                    continue;
                }
                let w = new_widths[ri.dst as usize];
                let cs = *const_memo.entry((v, w)).or_insert_with(|| {
                    let s = new_init.len() as u32;
                    new_init.push(v);
                    new_widths.push(w);
                    const_val.push(Some(v));
                    s
                });
                to_copy(&mut ri, cs);
                out.push(ri);
                continue;
            }
        }

        // copy propagation: an identity copy (no truncation) of a
        // non-pinned single-assignment destination is pure aliasing
        if ri.op == MicroOp::Copy && free && (mask_for(new_widths[ri.a as usize]) & !ri.mask) == 0 {
            subst[ri.dst as usize] = ri.a;
            stats.copy_propagated += 1;
            continue;
        }

        if opts.cse {
            use std::collections::hash_map::Entry;
            match cse_map.entry(cse_key(&ri)) {
                Entry::Occupied(e) => {
                    let rep = *e.get();
                    stats.cse += 1;
                    if free {
                        subst[ri.dst as usize] = rep;
                        continue;
                    }
                    if rep != ri.dst {
                        to_copy(&mut ri, rep);
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(ri.dst);
                }
            }
        }

        out.push(ri);
    }

    // --- dead-code elimination ------------------------------------------
    if opts.dce {
        let mut live = vec![false; new_init.len()];
        match opts.observe {
            Observability::AllSignals => {
                for (s, &p) in pinned.iter().enumerate() {
                    live[s] = p;
                }
            }
            Observability::StateAndOutputs => {
                live[0] = true;
                for r in &prog.regs {
                    live[r.value as usize] = true;
                    live[r.next as usize] = true;
                }
                for m in &prog.mems {
                    for w in &m.writers {
                        for s in [w.addr, w.en, w.data, w.mask] {
                            live[s as usize] = true;
                        }
                    }
                }
                for c in &prog.covers {
                    live[c.pred as usize] = true;
                    live[c.enable as usize] = true;
                }
                for cv in &prog.cover_values {
                    live[cv.signal as usize] = true;
                    live[cv.enable as usize] = true;
                }
                for (_, s) in prog.inputs.iter().chain(prog.outputs.iter()) {
                    live[*s as usize] = true;
                }
            }
        }
        let mut keep = vec![false; out.len()];
        for (k, i) in out.iter().enumerate().rev() {
            if live[i.dst as usize] {
                keep[k] = true;
                live[i.a as usize] = true;
                live[i.b as usize] = true;
                live[i.c as usize] = true;
            }
        }
        let before = out.len();
        let mut k = 0;
        out.retain(|_| {
            k += 1;
            keep[k - 1]
        });
        stats.dce_removed = before - out.len();
    }

    // --- slot compaction -------------------------------------------------
    let (init_slots, slot_width, remap): (Vec<u64>, Vec<u32>, Vec<u32>) = if opts.compact {
        let mut used = vec![false; new_init.len()];
        used[0] = true;
        for (s, &p) in pinned.iter().enumerate() {
            used[s] |= p;
        }
        for i in &out {
            used[i.dst as usize] = true;
            used[i.a as usize] = true;
            used[i.b as usize] = true;
            used[i.c as usize] = true;
        }
        let mut map = vec![u32::MAX; new_init.len()];
        let mut init = Vec::new();
        let mut widths = Vec::new();
        for (s, &u) in used.iter().enumerate() {
            if u {
                map[s] = init.len() as u32;
                init.push(new_init[s]);
                widths.push(new_widths[s]);
            }
        }
        (init, widths, map)
    } else {
        let map = (0..new_init.len() as u32).collect();
        (new_init, new_widths, map)
    };
    let m = |s: u32| remap[s as usize];

    let optimized = Program {
        init_slots,
        slot_width,
        signal_slot: prog
            .signal_slot
            .iter()
            .map(|(k, &s)| (k.clone(), m(s)))
            .collect(),
        instrs: out
            .iter()
            .map(|i| Instr {
                dst: m(i.dst),
                a: m(i.a),
                b: m(i.b),
                c: m(i.c),
                ..*i
            })
            .collect(),
        regs: prog
            .regs
            .iter()
            .map(|r| crate::compile::RegSlots {
                value: m(r.value),
                next: m(r.next),
                name: r.name.clone(),
            })
            .collect(),
        mems: prog
            .mems
            .iter()
            .map(|mm| crate::compile::MemSlots {
                name: mm.name.clone(),
                depth: mm.depth,
                mask: mm.mask,
                writers: mm
                    .writers
                    .iter()
                    .map(|w| crate::compile::WriterSlots {
                        addr: m(w.addr),
                        en: m(w.en),
                        data: m(w.data),
                        mask: m(w.mask),
                    })
                    .collect(),
            })
            .collect(),
        covers: prog
            .covers
            .iter()
            .map(|c| crate::compile::CoverSlots {
                name: c.name.clone(),
                pred: m(c.pred),
                enable: m(c.enable),
            })
            .collect(),
        cover_values: prog
            .cover_values
            .iter()
            .map(|cv| crate::compile::CoverValuesSlots {
                name: cv.name.clone(),
                signal: m(cv.signal),
                enable: m(cv.enable),
                width: cv.width,
            })
            .collect(),
        inputs: prog
            .inputs
            .iter()
            .map(|(k, s)| (k.clone(), m(*s)))
            .collect(),
        outputs: prog
            .outputs
            .iter()
            .map(|(k, s)| (k.clone(), m(*s)))
            .collect(),
    };
    stats.instrs_after = optimized.instrs.len();
    stats.slots_after = optimized.init_slots.len();
    (optimized, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::compiled::CompiledSim;
    use crate::elaborate::elaborate;
    use crate::Simulator;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn prog_for(src: &str) -> Program {
        let low = passes::lower(parse(src).unwrap()).unwrap();
        compile(&elaborate(&low).unwrap()).unwrap()
    }

    /// Hand-built program: the FIRRTL lowering already const-folds and
    /// DCEs trivial sources, so micro-op-level pass tests construct their
    /// input directly.
    fn raw_prog(
        init: &[u64],
        widths: &[u32],
        instrs: Vec<Instr>,
        named: &[(&str, u32)],
        inputs: &[(&str, u32)],
        outputs: &[(&str, u32)],
    ) -> Program {
        Program {
            init_slots: init.to_vec(),
            slot_width: widths.to_vec(),
            signal_slot: named.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            instrs,
            regs: Vec::new(),
            mems: Vec::new(),
            covers: Vec::new(),
            cover_values: Vec::new(),
            inputs: inputs.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            outputs: outputs.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn ins(op: MicroOp, dst: u32, a: u32, b: u32, c: u32, imm: u32, aw: u32, mask: u64) -> Instr {
        Instr {
            op,
            dst,
            a,
            b,
            c,
            imm,
            aw,
            mask,
        }
    }

    fn sims_for(src: &str) -> (CompiledSim, CompiledSim, OptStats) {
        let low = passes::lower(parse(src).unwrap()).unwrap();
        let raw = CompiledSim::new_with(&low, &OptOptions::none()).unwrap();
        let opt = CompiledSim::new_with(&low, &OptOptions::default()).unwrap();
        let stats = opt.opt_stats();
        (raw, opt, stats)
    }

    #[test]
    fn constant_expressions_fold() {
        // slot 1 = const 3, slot 2 = const 4, slot 3 = anon temp, slot 4 = o
        let prog = raw_prog(
            &[0, 3, 4, 0, 0],
            &[1, 4, 4, 5, 5],
            vec![
                ins(MicroOp::Add, 3, 1, 2, 0, 0, 4, 0x1F),
                ins(MicroOp::Copy, 4, 3, 0, 0, 0, 5, 0x1F),
            ],
            &[("o", 4)],
            &[],
            &[("o", 4)],
        );
        let (optd, stats) = optimize(&prog, &OptOptions::default());
        assert!(stats.folded >= 1, "{stats:?}");
        assert!(optd.instrs.len() < prog.instrs.len());
        let s = CompiledSim::from_program(optd);
        assert_eq!(s.peek("o"), 7);
    }

    #[test]
    fn mux_with_constant_condition_is_rewritten() {
        // slot 3 = const 1 condition; o = mux(c, a, b)
        let prog = raw_prog(
            &[0, 0, 0, 1, 0],
            &[1, 4, 4, 1, 4],
            vec![ins(MicroOp::Mux, 4, 1, 2, 3, 0, 4, 0xF)],
            &[("a", 1), ("b", 2), ("o", 4)],
            &[("a", 1), ("b", 2)],
            &[("o", 4)],
        );
        let (optd, stats) = optimize(&prog, &OptOptions::default());
        assert!(stats.peephole >= 1, "{stats:?}");
        assert!(optd.instrs.iter().all(|i| i.op != MicroOp::Mux));
        let mut raw = CompiledSim::from_program(prog);
        let mut opt = CompiledSim::from_program(optd);
        for v in 0..16u64 {
            raw.poke("a", v);
            raw.poke("b", 15 - v);
            opt.poke("a", v);
            opt.poke("b", 15 - v);
            assert_eq!(raw.peek("o"), opt.peek("o"));
            assert_eq!(opt.peek("o"), v);
        }
    }

    #[test]
    fn compare_with_zero_becomes_orr() {
        let prog = prog_for(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<1>
    o <= neq(a, UInt<4>(0))
",
        );
        let (optd, stats) = optimize(&prog, &OptOptions::default());
        assert!(stats.peephole >= 1, "{stats:?}");
        assert!(optd.instrs.iter().any(|i| i.op == MicroOp::Orr));
        let mut s = CompiledSim::from_program(optd);
        s.poke("a", 0);
        assert_eq!(s.peek("o"), 0);
        s.poke("a", 9);
        assert_eq!(s.peek("o"), 1);
    }

    #[test]
    fn common_subexpressions_are_shared() {
        let (mut raw, mut opt, stats) = sims_for(
            "
circuit T :
  module T :
    input a : UInt<4>
    input b : UInt<4>
    output o1 : UInt<5>
    output o2 : UInt<5>
    o1 <= add(a, b)
    o2 <= add(b, a)
",
        );
        assert!(stats.cse >= 1, "{stats:?}");
        raw.poke("a", 7);
        raw.poke("b", 9);
        opt.poke("a", 7);
        opt.poke("b", 9);
        assert_eq!(raw.peek("o1"), opt.peek("o1"));
        assert_eq!(raw.peek("o2"), opt.peek("o2"));
        assert_eq!(opt.peek("o1"), 16);
    }

    /// Named wire `u = add(a, b)` feeding nothing observable, plus
    /// `o = a`. Exercises the two DCE root policies.
    fn dead_wire_prog() -> Program {
        raw_prog(
            &[0, 0, 0, 0, 0],
            &[1, 4, 4, 5, 4],
            vec![
                ins(MicroOp::Add, 3, 1, 2, 0, 0, 4, 0x1F),
                ins(MicroOp::Copy, 4, 1, 0, 0, 0, 4, 0xF),
            ],
            &[("a", 1), ("b", 2), ("u", 3), ("o", 4)],
            &[("a", 1), ("b", 2)],
            &[("o", 4)],
        )
    }

    #[test]
    fn named_signals_survive_default_dce() {
        let (optd, _) = optimize(&dead_wire_prog(), &OptOptions::default());
        let mut s = CompiledSim::from_program(optd);
        s.poke("a", 3);
        s.poke("b", 4);
        // the unused wire is still peekable under AllSignals
        assert_eq!(s.peek("u"), 7);
        assert_eq!(s.peek("o"), 3);
    }

    #[test]
    fn state_and_outputs_dce_drops_unobserved_wires() {
        let prog = dead_wire_prog();
        let all = optimize(&prog, &OptOptions::default()).0;
        let lean = optimize(
            &prog,
            &OptOptions {
                observe: Observability::StateAndOutputs,
                ..OptOptions::default()
            },
        );
        assert!(lean.1.dce_removed >= 1, "{:?}", lean.1);
        assert!(lean.0.instrs.len() < all.instrs.len());
        let mut s = CompiledSim::from_program(lean.0);
        s.poke("a", 5);
        assert_eq!(s.peek("o"), 5);
    }

    #[test]
    fn counter_equivalence_with_all_passes() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
";
        let (mut raw, mut opt, _) = sims_for(src);
        for s in [&mut raw as &mut dyn Simulator, &mut opt] {
            s.reset(1);
            s.poke("en", 1);
            s.step_n(5);
            s.poke("en", 0);
            s.step_n(3);
        }
        assert_eq!(raw.peek("o"), 5);
        assert_eq!(opt.peek("o"), 5);
        assert_eq!(raw.peek("r"), opt.peek("r"));
    }

    #[test]
    fn shift_by_zero_is_removed() {
        let prog = prog_for(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    o <= shr(a, 0)
",
        );
        let (optd, _) = optimize(&prog, &OptOptions::default());
        assert!(optd.instrs.iter().all(|i| i.op != MicroOp::Shr));
        let mut s = CompiledSim::from_program(optd);
        s.poke("a", 11);
        assert_eq!(s.peek("o"), 11);
    }

    #[test]
    fn none_options_are_identity() {
        let prog = prog_for(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<5>
    o <= add(a, UInt<4>(0))
",
        );
        let (same, stats) = optimize(&prog, &OptOptions::none());
        assert_eq!(same.instrs.len(), prog.instrs.len());
        assert_eq!(
            stats.folded + stats.peephole + stats.cse + stats.dce_removed,
            0
        );
    }
}

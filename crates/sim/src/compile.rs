//! Compilation of a [`FlatCircuit`] into a dense micro-op program.
//!
//! This is the Verilator-analog architecture: the combinational logic is
//! topologically sorted and flattened into three-address code over `u64`
//! value slots, executed in a tight loop. The activity-driven (ESSENT
//! analog) backend reuses the same program with per-instruction skipping.
//!
//! Restriction: every signal (including intermediate node widths) must fit
//! in 64 bits; wider designs are served by the interpreter backend.

use crate::elaborate::{Def, FlatCircuit};
use rtlcov_firrtl::ir::{Expr, PrimOp};
use std::collections::HashMap;
use std::fmt;

/// Error produced during program compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// A micro operation. `dst` and operand fields index the slot array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroOp {
    /// `dst = a`
    Copy,
    /// `dst = (a + b) & mask`
    Add,
    /// `dst = (a - b) & mask`
    Sub,
    /// `dst = (a * b) & mask` (128-bit intermediate)
    Mul,
    /// unsigned divide, 0 on division by zero
    Div,
    /// signed divide
    DivS,
    /// unsigned remainder
    Rem,
    /// signed remainder
    RemS,
    /// unsigned less-than
    Lt,
    /// signed less-than
    LtS,
    /// unsigned ≤
    Leq,
    /// signed ≤
    LeqS,
    /// unsigned >
    Gt,
    /// signed >
    GtS,
    /// unsigned ≥
    Geq,
    /// signed ≥
    GeqS,
    /// equality
    Eq,
    /// inequality
    Neq,
    /// bitwise and
    And,
    /// bitwise or
    Or,
    /// bitwise xor
    Xor,
    /// bitwise not (masked)
    Not,
    /// arithmetic negate (masked)
    Neg,
    /// reduction and: all `aw` bits set
    Andr,
    /// reduction or
    Orr,
    /// reduction xor (parity)
    Xorr,
    /// sign-extend from `aw` bits into the dst width (pad on SInt)
    Sext,
    /// static shift left by `imm`
    Shl,
    /// static logical shift right by `imm`
    Shr,
    /// static arithmetic shift right by `imm` (operand width `aw`)
    ShrS,
    /// dynamic shift left
    Dshl,
    /// dynamic logical shift right
    Dshr,
    /// dynamic arithmetic shift right (operand width `aw`)
    DshrS,
    /// `dst = (a << imm) | b` — concatenation, `imm` = width of `b`
    Cat,
    /// `dst = (a >> imm) & mask` — bit slice
    Bits,
    /// `dst = c ? a : b`
    Mux,
    /// `dst = en(b) ? mem[a & addr_mask] : 0`, `imm` = memory index
    MemRead,
}

/// One three-address instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instr {
    /// Operation.
    pub op: MicroOp,
    /// Destination slot.
    pub dst: u32,
    /// First operand slot.
    pub a: u32,
    /// Second operand slot (0 when unused).
    pub b: u32,
    /// Third operand slot (mux condition; 0 when unused).
    pub c: u32,
    /// Immediate (shift amounts, slice offsets, memory index).
    pub imm: u32,
    /// Width of operand `a` (needed by signed/reduction ops).
    pub aw: u32,
    /// Result mask (`(1 << width) - 1`, or `!0` for width 64).
    pub mask: u64,
}

/// Register bookkeeping in a compiled program.
#[derive(Debug, Clone)]
pub struct RegSlots {
    /// Slot holding the committed register value.
    pub value: u32,
    /// Slot holding the computed next value (committed at the clock edge).
    pub next: u32,
    /// Register name.
    pub name: String,
}

/// Memory write port slots.
#[derive(Debug, Clone)]
pub struct WriterSlots {
    /// Address slot.
    pub addr: u32,
    /// Enable slot.
    pub en: u32,
    /// Data slot.
    pub data: u32,
    /// Mask slot.
    pub mask: u32,
}

/// Memory bookkeeping.
#[derive(Debug, Clone)]
pub struct MemSlots {
    /// Memory name.
    pub name: String,
    /// Element count.
    pub depth: usize,
    /// Element mask.
    pub mask: u64,
    /// Write ports.
    pub writers: Vec<WriterSlots>,
}

/// Cover bookkeeping.
#[derive(Debug, Clone)]
pub struct CoverSlots {
    /// Hierarchical cover name.
    pub name: String,
    /// Predicate slot.
    pub pred: u32,
    /// Enable slot.
    pub enable: u32,
}

/// Cover-values bookkeeping (§6).
#[derive(Debug, Clone)]
pub struct CoverValuesSlots {
    /// Hierarchical cover name.
    pub name: String,
    /// Observed signal slot.
    pub signal: u32,
    /// Enable slot.
    pub enable: u32,
    /// Signal width (bins = `2^width`, capped by the runtime).
    pub width: u32,
}

/// A compiled program: slots + instructions + state bookkeeping.
#[derive(Debug, Clone)]
pub struct Program {
    /// Initial slot values (constants pre-folded).
    pub init_slots: Vec<u64>,
    /// Width of each slot.
    pub slot_width: Vec<u32>,
    /// Signal name → slot.
    pub signal_slot: HashMap<String, u32>,
    /// Topologically ordered combinational instructions.
    pub instrs: Vec<Instr>,
    /// Registers.
    pub regs: Vec<RegSlots>,
    /// Memories (index = `imm` of `MemRead`).
    pub mems: Vec<MemSlots>,
    /// Covers.
    pub covers: Vec<CoverSlots>,
    /// Cover-values statements.
    pub cover_values: Vec<CoverValuesSlots>,
    /// Top-level input slots.
    pub inputs: Vec<(String, u32)>,
    /// Top-level output slots.
    pub outputs: Vec<(String, u32)>,
}

pub(crate) fn mask_for(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

struct Compiler {
    prog: Program,
    /// signal name -> (slot, signed)
    bound: HashMap<String, (u32, bool)>,
    mem_index: HashMap<String, u32>,
}

impl Compiler {
    fn new_slot(&mut self, width: u32, init: u64) -> u32 {
        if width > 64 {
            // caught earlier for signals; defensive for temps
            panic!("slot width {width} exceeds 64 bits");
        }
        let slot = self.prog.init_slots.len() as u32;
        self.prog.init_slots.push(init & mask_for(width));
        self.prog.slot_width.push(width);
        slot
    }

    /// Compile an expression, returning `(slot, width, signed)`.
    fn emit(&mut self, e: &Expr) -> Result<(u32, u32, bool), CompileError> {
        match e {
            Expr::Ref(name) => {
                let (slot, signed) = *self
                    .bound
                    .get(name)
                    .ok_or_else(|| CompileError(format!("unbound signal `{name}`")))?;
                Ok((slot, self.prog.slot_width[slot as usize], signed))
            }
            Expr::UIntLit(v) => {
                if v.width() > 64 {
                    return Err(CompileError("literal wider than 64 bits".into()));
                }
                let slot = self.new_slot(v.width().max(1), v.to_u64());
                Ok((slot, v.width().max(1), false))
            }
            Expr::SIntLit(v) => {
                if v.width() > 64 {
                    return Err(CompileError("literal wider than 64 bits".into()));
                }
                let slot = self.new_slot(v.width().max(1), v.to_u64());
                Ok((slot, v.width().max(1), true))
            }
            Expr::Mux(c, t, f) => {
                let (cs, _, _) = self.emit(c)?;
                let (ts, tw, tsg) = self.emit(t)?;
                let (fs, fw, fsg) = self.emit(f)?;
                let w = tw.max(fw);
                let signed = tsg && fsg;
                let ts = self.extend(ts, tw, w, tsg)?;
                let fs = self.extend(fs, fw, w, fsg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: MicroOp::Mux,
                    dst,
                    a: ts,
                    b: fs,
                    c: cs,
                    imm: 0,
                    aw: w,
                    mask: mask_for(w),
                });
                Ok((dst, w, signed))
            }
            Expr::ValidIf(c, v) => {
                let (cs, _, _) = self.emit(c)?;
                let (vs, vw, vsg) = self.emit(v)?;
                let zero = self.new_slot(vw, 0);
                let dst = self.new_slot(vw, 0);
                self.prog.instrs.push(Instr {
                    op: MicroOp::Mux,
                    dst,
                    a: vs,
                    b: zero,
                    c: cs,
                    imm: 0,
                    aw: vw,
                    mask: mask_for(vw),
                });
                Ok((dst, vw, vsg))
            }
            Expr::Prim { op, args, consts } => self.emit_prim(*op, args, consts),
            other => Err(CompileError(format!("unexpected expression {other:?}"))),
        }
    }

    /// Zero/sign extend a slot from `from` to `to` bits; identity if equal.
    fn extend(&mut self, slot: u32, from: u32, to: u32, signed: bool) -> Result<u32, CompileError> {
        if from == to {
            return Ok(slot);
        }
        if to < from {
            // truncate
            let dst = self.new_slot(to, 0);
            self.prog.instrs.push(Instr {
                op: MicroOp::Bits,
                dst,
                a: slot,
                b: 0,
                c: 0,
                imm: 0,
                aw: from,
                mask: mask_for(to),
            });
            return Ok(dst);
        }
        if to > 64 {
            return Err(CompileError(format!(
                "width {to} exceeds the 64-bit fast path"
            )));
        }
        let dst = self.new_slot(to, 0);
        let op = if signed { MicroOp::Sext } else { MicroOp::Copy };
        self.prog.instrs.push(Instr {
            op,
            dst,
            a: slot,
            b: 0,
            c: 0,
            imm: 0,
            aw: from,
            mask: mask_for(to),
        });
        Ok(dst)
    }

    fn emit_prim(
        &mut self,
        op: PrimOp,
        args: &[Expr],
        consts: &[u64],
    ) -> Result<(u32, u32, bool), CompileError> {
        use MicroOp as M;
        use PrimOp as P;
        match op {
            P::Add | P::Sub => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, bsg) = self.emit(&args[1])?;
                let w = aw.max(bw) + 1;
                if w > 64 {
                    return Err(CompileError("add/sub result exceeds 64 bits".into()));
                }
                let signed = asg || bsg;
                let a = self.extend(as_, aw, w, asg)?;
                let b = self.extend(bs, bw, w, bsg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: if op == P::Add { M::Add } else { M::Sub },
                    dst,
                    a,
                    b,
                    c: 0,
                    imm: 0,
                    aw: w,
                    mask: mask_for(w),
                });
                Ok((dst, w, signed))
            }
            P::Mul => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, bsg) = self.emit(&args[1])?;
                let w = aw + bw;
                if w > 64 {
                    return Err(CompileError("mul result exceeds 64 bits".into()));
                }
                let signed = asg || bsg;
                let a = self.extend(as_, aw, w, asg)?;
                let b = self.extend(bs, bw, w, bsg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Mul,
                    dst,
                    a,
                    b,
                    c: 0,
                    imm: 0,
                    aw: w,
                    mask: mask_for(w),
                });
                Ok((dst, w, signed))
            }
            P::Div => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, bsg) = self.emit(&args[1])?;
                let w = if asg { aw + 1 } else { aw };
                if w > 64 {
                    return Err(CompileError("div result exceeds 64 bits".into()));
                }
                let ew = aw.max(bw).max(w);
                let a = self.extend(as_, aw, ew, asg)?;
                let b = self.extend(bs, bw, ew, bsg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: if asg { M::DivS } else { M::Div },
                    dst,
                    a,
                    b,
                    c: 0,
                    imm: 0,
                    aw: ew,
                    mask: mask_for(w),
                });
                Ok((dst, w, asg))
            }
            P::Rem => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, bsg) = self.emit(&args[1])?;
                let w = aw.min(bw).max(1);
                let ew = aw.max(bw);
                let a = self.extend(as_, aw, ew, asg)?;
                let b = self.extend(bs, bw, ew, bsg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: if asg { M::RemS } else { M::Rem },
                    dst,
                    a,
                    b,
                    c: 0,
                    imm: 0,
                    aw: ew,
                    mask: mask_for(w),
                });
                Ok((dst, w, asg))
            }
            P::Lt => bin_cmp(self, args, M::Lt, M::LtS),
            P::Leq => bin_cmp(self, args, M::Leq, M::LeqS),
            P::Gt => bin_cmp(self, args, M::Gt, M::GtS),
            P::Geq => bin_cmp(self, args, M::Geq, M::GeqS),
            P::Eq => bin_cmp(self, args, M::Eq, M::Eq),
            P::Neq => bin_cmp(self, args, M::Neq, M::Neq),
            P::And | P::Or | P::Xor => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, bsg) = self.emit(&args[1])?;
                let w = aw.max(bw);
                let a = self.extend(as_, aw, w, asg)?;
                let b = self.extend(bs, bw, w, bsg)?;
                let dst = self.new_slot(w, 0);
                let micro = match op {
                    P::And => M::And,
                    P::Or => M::Or,
                    _ => M::Xor,
                };
                self.prog.instrs.push(Instr {
                    op: micro,
                    dst,
                    a,
                    b,
                    c: 0,
                    imm: 0,
                    aw: w,
                    mask: mask_for(w),
                });
                Ok((dst, w, false))
            }
            P::Not => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let dst = self.new_slot(aw, 0);
                self.prog.instrs.push(Instr {
                    op: M::Not,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: 0,
                    aw,
                    mask: mask_for(aw),
                });
                Ok((dst, aw, false))
            }
            P::Neg => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let w = aw + 1;
                if w > 64 {
                    return Err(CompileError("neg result exceeds 64 bits".into()));
                }
                let a = self.extend(as_, aw, w, asg)?;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Neg,
                    dst,
                    a,
                    b: 0,
                    c: 0,
                    imm: 0,
                    aw: w,
                    mask: mask_for(w),
                });
                Ok((dst, w, true))
            }
            P::Andr | P::Orr | P::Xorr => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let dst = self.new_slot(1, 0);
                let micro = match op {
                    P::Andr => M::Andr,
                    P::Orr => M::Orr,
                    _ => M::Xorr,
                };
                self.prog.instrs.push(Instr {
                    op: micro,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: 0,
                    aw,
                    mask: 1,
                });
                Ok((dst, 1, false))
            }
            P::Pad => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let w = aw.max(consts[0] as u32);
                let slot = self.extend(as_, aw, w, asg)?;
                Ok((slot, w, asg))
            }
            P::Shl => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let n = consts[0] as u32;
                let w = aw + n;
                if w > 64 {
                    return Err(CompileError("shl result exceeds 64 bits".into()));
                }
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Shl,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: n,
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, asg))
            }
            P::Shr => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let n = consts[0] as u32;
                let w = aw.saturating_sub(n).max(1);
                if !asg && n >= aw {
                    // everything shifted out: constant zero (slot 0)
                    return Ok((0, 1, false));
                }
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: if asg { M::ShrS } else { M::Shr },
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    // a signed shift past the width drains to the sign bit,
                    // which shifting by aw-1 already produces
                    imm: n.min(aw.saturating_sub(1)),
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, asg))
            }
            P::Dshl => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, bw, _) = self.emit(&args[1])?;
                let grow = if bw >= 7 { 64 } else { (1u32 << bw) - 1 };
                let w = aw + grow;
                if w > 64 {
                    return Err(CompileError(format!(
                        "dshl result width {w} exceeds 64 bits; narrow the shift amount"
                    )));
                }
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Dshl,
                    dst,
                    a: as_,
                    b: bs,
                    c: 0,
                    imm: 0,
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, asg))
            }
            P::Dshr => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                let (bs, _, _) = self.emit(&args[1])?;
                let dst = self.new_slot(aw, 0);
                self.prog.instrs.push(Instr {
                    op: if asg { M::DshrS } else { M::Dshr },
                    dst,
                    a: as_,
                    b: bs,
                    c: 0,
                    imm: 0,
                    aw,
                    mask: mask_for(aw),
                });
                Ok((dst, aw, asg))
            }
            P::Cat => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let (bs, bw, _) = self.emit(&args[1])?;
                let w = aw + bw;
                if w > 64 {
                    return Err(CompileError("cat result exceeds 64 bits".into()));
                }
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Cat,
                    dst,
                    a: as_,
                    b: bs,
                    c: 0,
                    imm: bw,
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, false))
            }
            P::Bits => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let (hi, lo) = (consts[0] as u32, consts[1] as u32);
                if hi >= aw || hi < lo {
                    return Err(CompileError(format!(
                        "bits({hi},{lo}) out of range for {aw}"
                    )));
                }
                let w = hi - lo + 1;
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Bits,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: lo,
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, false))
            }
            P::Head => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let n = (consts[0] as u32).max(1);
                let dst = self.new_slot(n, 0);
                self.prog.instrs.push(Instr {
                    op: M::Bits,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: aw - n,
                    aw,
                    mask: mask_for(n),
                });
                Ok((dst, n, false))
            }
            P::Tail => {
                let (as_, aw, _) = self.emit(&args[0])?;
                let n = consts[0] as u32;
                let w = aw.saturating_sub(n).max(1);
                let dst = self.new_slot(w, 0);
                self.prog.instrs.push(Instr {
                    op: M::Bits,
                    dst,
                    a: as_,
                    b: 0,
                    c: 0,
                    imm: 0,
                    aw,
                    mask: mask_for(w),
                });
                Ok((dst, w, false))
            }
            P::AsUInt | P::AsClock => {
                let (as_, aw, _) = self.emit(&args[0])?;
                Ok((as_, aw, false))
            }
            P::AsSInt => {
                let (as_, aw, _) = self.emit(&args[0])?;
                Ok((as_, aw, true))
            }
            P::Cvt => {
                let (as_, aw, asg) = self.emit(&args[0])?;
                if asg {
                    Ok((as_, aw, true))
                } else {
                    let w = aw + 1;
                    if w > 64 {
                        return Err(CompileError("cvt result exceeds 64 bits".into()));
                    }
                    let slot = self.extend(as_, aw, w, false)?;
                    Ok((slot, w, true))
                }
            }
        }
    }
}

fn bin_cmp(
    this: &mut Compiler,
    args: &[Expr],
    u: MicroOp,
    s: MicroOp,
) -> Result<(u32, u32, bool), CompileError> {
    let (as_, aw, asg) = this.emit(&args[0])?;
    let (bs, bw, bsg) = this.emit(&args[1])?;
    let signed = asg || bsg;
    let w = aw.max(bw);
    let a = this.extend(as_, aw, w, asg)?;
    let b = this.extend(bs, bw, w, bsg)?;
    let dst = this.new_slot(1, 0);
    this.prog.instrs.push(Instr {
        op: if signed { s } else { u },
        dst,
        a,
        b,
        c: 0,
        imm: 0,
        aw: w,
        mask: 1,
    });
    // comparison results are UInt<1> regardless of operand signedness
    Ok((dst, 1, false))
}

/// Compile a flat circuit into a program.
///
/// # Errors
///
/// Fails on combinational loops, signals wider than 64 bits, or unbound
/// references.
pub fn compile(flat: &FlatCircuit) -> Result<Program, CompileError> {
    for sig in flat.signals.values() {
        if sig.width > 64 {
            return Err(CompileError(format!(
                "signal `{}` is {} bits wide; the compiled backend supports ≤ 64 (use the interpreter)",
                sig.name, sig.width
            )));
        }
    }

    let mut c = Compiler {
        prog: Program {
            init_slots: vec![0], // slot 0 is a constant zero scratch
            slot_width: vec![1],
            signal_slot: HashMap::new(),
            instrs: Vec::new(),
            regs: Vec::new(),
            mems: Vec::new(),
            covers: Vec::new(),
            cover_values: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        },
        bound: HashMap::new(),
        mem_index: HashMap::new(),
    };

    // 1. allocate slots for every named signal
    let mut names: Vec<&String> = flat.signals.keys().collect();
    names.sort();
    for name in &names {
        let sig = &flat.signals[*name];
        let slot = c.new_slot(sig.width, 0);
        c.bound.insert((*name).clone(), (slot, sig.signed));
        c.prog.signal_slot.insert((*name).clone(), slot);
    }
    for (i, m) in flat.mems.iter().enumerate() {
        c.mem_index.insert(m.name.clone(), i as u32);
    }

    // 2. topological order over signal defs
    let order = topo_order(flat)?;

    // 3. emit instructions per def in topo order
    for name in &order {
        let sig = &flat.signals[name];
        let dst = c.prog.signal_slot[name];
        match &sig.def {
            Def::Expr(e) => {
                let (slot, w, sg) = c.emit(e)?;
                let src = c.extend(slot, w, sig.width, sg)?;
                c.prog.instrs.push(Instr {
                    op: MicroOp::Copy,
                    dst,
                    a: src,
                    b: 0,
                    c: 0,
                    imm: 0,
                    aw: sig.width,
                    mask: mask_for(sig.width),
                });
            }
            Def::MemRead { mem, addr, en } => {
                let mem_id = c.mem_index[mem];
                let addr_slot = c.prog.signal_slot[addr];
                let en_slot = c.prog.signal_slot[en];
                c.prog.instrs.push(Instr {
                    op: MicroOp::MemRead,
                    dst,
                    a: addr_slot,
                    b: en_slot,
                    c: 0,
                    imm: mem_id,
                    aw: sig.width,
                    mask: mask_for(sig.width),
                });
            }
            Def::Input | Def::Reg | Def::Zero => {}
        }
    }

    // 4. registers: compile next = mux(reset, init, next_expr)
    for r in &flat.regs {
        let value = c.prog.signal_slot[&r.name];
        let (next_slot, nw, nsg) = c.emit(&r.next)?;
        let next_sized = c.extend(next_slot, nw, r.width, nsg)?;
        let final_next = match &r.reset {
            None => next_sized,
            Some((rst, init)) => {
                let (rs, _, _) = c.emit(rst)?;
                let (is_, iw, isg) = c.emit(init)?;
                let init_sized = c.extend(is_, iw, r.width, isg)?;
                let dst = c.new_slot(r.width, 0);
                c.prog.instrs.push(Instr {
                    op: MicroOp::Mux,
                    dst,
                    a: init_sized,
                    b: next_sized,
                    c: rs,
                    imm: 0,
                    aw: r.width,
                    mask: mask_for(r.width),
                });
                dst
            }
        };
        // commit copies slots[next] -> slots[value] for every register in
        // sequence; if `next` aliased another register's value slot (e.g.
        // `next = Ref(other_reg)`), an earlier commit could clobber it.
        // A dedicated next slot decouples the phases.
        let dedicated = c.new_slot(r.width, 0);
        c.prog.instrs.push(Instr {
            op: MicroOp::Copy,
            dst: dedicated,
            a: final_next,
            b: 0,
            c: 0,
            imm: 0,
            aw: r.width,
            mask: mask_for(r.width),
        });
        c.prog.regs.push(RegSlots {
            value,
            next: dedicated,
            name: r.name.clone(),
        });
    }

    // 5. memories
    for m in &flat.mems {
        let writers = m
            .writers
            .iter()
            .map(|w| WriterSlots {
                addr: c.prog.signal_slot[&w.addr],
                en: c.prog.signal_slot[&w.en],
                data: c.prog.signal_slot[&w.data],
                mask: c.prog.signal_slot[&w.mask],
            })
            .collect();
        c.prog.mems.push(MemSlots {
            name: m.name.clone(),
            depth: m.depth,
            mask: mask_for(m.width),
            writers,
        });
    }

    // 6. covers
    for cov in &flat.covers {
        let (p, _, _) = c.emit(&cov.pred)?;
        let (e, _, _) = c.emit(&cov.enable)?;
        c.prog.covers.push(CoverSlots {
            name: cov.name.clone(),
            pred: p,
            enable: e,
        });
    }
    for cv in &flat.cover_values {
        let (s, _, _) = c.emit(&cv.signal)?;
        let (e, _, _) = c.emit(&cv.enable)?;
        c.prog.cover_values.push(CoverValuesSlots {
            name: cv.name.clone(),
            signal: s,
            enable: e,
            width: cv.width,
        });
    }

    // 7. io
    for i in &flat.inputs {
        c.prog.inputs.push((i.clone(), c.prog.signal_slot[i]));
    }
    for o in &flat.outputs {
        c.prog.outputs.push((o.clone(), c.prog.signal_slot[o]));
    }

    Ok(c.prog)
}

/// Topological order of combinational signal definitions.
pub fn topo_order(flat: &FlatCircuit) -> Result<Vec<String>, CompileError> {
    // deps: comb signal -> comb signals it reads
    let mut deps: HashMap<&str, Vec<String>> = HashMap::new();
    for (name, sig) in &flat.signals {
        let mut reads = Vec::new();
        match &sig.def {
            Def::Expr(e) => e.refs(&mut reads),
            Def::MemRead { addr, en, .. } => {
                reads.push(addr.clone());
                reads.push(en.clone());
            }
            _ => {}
        }
        // registers/inputs/zeros are sources, not deps
        reads.retain(|r| {
            flat.signals
                .get(r)
                .map(|s| matches!(s.def, Def::Expr(_) | Def::MemRead { .. }))
                .unwrap_or(false)
        });
        deps.insert(name.as_str(), reads);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        White,
        Grey,
        Black,
    }
    let mut state: HashMap<&str, State> = deps.keys().map(|&k| (k, State::White)).collect();
    let mut order: Vec<String> = Vec::new();

    // iterative DFS
    let mut names: Vec<&str> = deps.keys().copied().collect();
    names.sort();
    for start in names {
        if state[start] != State::White {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        state.insert(start, State::Grey);
        while let Some((node, idx)) = stack.last().copied() {
            let node_deps = &deps[node];
            if idx < node_deps.len() {
                stack.last_mut().expect("non-empty stack").1 += 1;
                let dep = node_deps[idx].as_str();
                if let Some((&dep_key, _)) = deps.get_key_value(dep) {
                    match state[dep_key] {
                        State::White => {
                            state.insert(dep_key, State::Grey);
                            stack.push((dep_key, 0));
                        }
                        State::Grey => {
                            return Err(CompileError(format!(
                                "combinational loop through `{dep}`"
                            )));
                        }
                        State::Black => {}
                    }
                }
            } else {
                state.insert(node, State::Black);
                order.push(node.to_string());
                stack.pop();
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn program(src: &str) -> Program {
        let low = passes::lower(parse(src).unwrap()).unwrap();
        compile(&elaborate(&low).unwrap()).unwrap()
    }

    #[test]
    fn compiles_simple_logic() {
        let p = program(
            "
circuit T :
  module T :
    input a : UInt<4>
    input b : UInt<4>
    output o : UInt<5>
    o <= add(a, b)
",
        );
        assert!(!p.instrs.is_empty());
        assert_eq!(p.inputs.len(), 2);
        assert_eq!(p.outputs.len(), 1);
    }

    #[test]
    fn rejects_combinational_loop() {
        let src = "
circuit T :
  module T :
    input a : UInt<1>
    output o : UInt<1>
    wire x : UInt<1>
    wire y : UInt<1>
    x <= and(y, a)
    y <= or(x, a)
    o <= x
";
        let low = passes::lower(parse(src).unwrap()).unwrap();
        let err = compile(&elaborate(&low).unwrap()).unwrap_err();
        assert!(err.0.contains("loop"), "{err}");
    }

    #[test]
    fn rejects_wide_signals() {
        let src = "
circuit T :
  module T :
    input a : UInt<80>
    output o : UInt<80>
    o <= a
";
        let low = passes::lower(parse(src).unwrap()).unwrap();
        let err = compile(&elaborate(&low).unwrap()).unwrap_err();
        assert!(err.0.contains("64"), "{err}");
    }

    #[test]
    fn topological_order_respects_deps() {
        let p = program(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    wire w1 : UInt<4>
    wire w2 : UInt<4>
    w2 <= not(w1)
    w1 <= not(a)
    o <= w2
",
        );
        // find copy-to-w1 and copy-to-w2 positions
        let w1 = p.signal_slot["w1"];
        let w2 = p.signal_slot["w2"];
        let pos = |slot: u32| p.instrs.iter().position(|i| i.dst == slot).unwrap();
        assert!(pos(w1) < pos(w2));
    }
}

//! The compiled simulator backend (Verilator analog).
//!
//! Executes a [`Program`] over dense `u64` slots in a tight loop. By
//! default the program first runs through the [`crate::opt`] pipeline
//! (constant folding, CSE, peephole rewrites, dead-slot elimination);
//! [`CompiledSim::new_with`] and [`CompiledSim::from_program`] expose the
//! unoptimized path for A/B benchmarking. Optionally collects *native*
//! structural coverage — per-mux condition counters, the analog of
//! Verilator's built-in coverage on the generated Verilog — which
//! Figure 8 compares against the paper's FIRRTL-level instrumentation.
//!
//! Mutable execution state lives behind a [`RefCell`] so that
//! [`Simulator::peek`] can lazily settle combinational logic through a
//! shared reference; a `settled` flag makes repeated peeks (e.g. VCD
//! sampling of every signal) O(1) instead of a full re-evaluation each.

use crate::compile::{compile, Instr, MicroOp, Program};
use crate::elaborate::elaborate;
use crate::opt::{optimize, OptOptions, OptStats};
use crate::{Fuel, SimError, Simulator};
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::cell::RefCell;
use std::collections::HashMap;

/// Mutable execution state, interior-mutable so `peek(&self)` can settle.
#[derive(Debug, Clone)]
struct ExecState {
    slots: Vec<u64>,
    mems: Vec<Vec<u64>>,
    /// Combinational logic is consistent with current inputs/state.
    settled: bool,
}

/// Dense-slot compiled simulator.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    prog: Program,
    st: RefCell<ExecState>,
    cover_counts: Vec<u64>,
    cover_values_counts: Vec<HashMap<u64, u64>>,
    /// Verilator-style structural coverage: (true_count, false_count) per
    /// mux, with names interned at enable time.
    native_mux: Option<Vec<(u64, u64)>>,
    native_names: Vec<(String, String)>,
    /// Condition slot of each mux instruction (dense, precomputed).
    mux_conds: Vec<u32>,
    cycles: u64,
    fuel: Fuel,
    opt_stats: OptStats,
}

impl CompiledSim {
    /// Build a compiled simulator from a lowered circuit with the default
    /// optimization pipeline (honoring the `RTLCOV_SIM_NO_OPT` escape
    /// hatch).
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures (combinational loops,
    /// >64-bit signals).
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        Self::new_with(circuit, &OptOptions::from_env())
    }

    /// Build with explicit optimizer options ([`OptOptions::none`] gives
    /// the seed unoptimized program, for A/B benchmarking).
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures.
    pub fn new_with(circuit: &Circuit, opts: &OptOptions) -> Result<Self, SimError> {
        let flat = elaborate(circuit).map_err(|e| SimError(e.0))?;
        let prog = compile(&flat).map_err(|e| SimError(e.0))?;
        let (prog, stats) = optimize(&prog, opts);
        let mut sim = Self::from_program(prog);
        sim.opt_stats = stats;
        Ok(sim)
    }

    /// Build from an already-compiled program, as-is (no optimization).
    pub fn from_program(prog: Program) -> Self {
        let slots = prog.init_slots.clone();
        let mems = prog.mems.iter().map(|m| vec![0u64; m.depth]).collect();
        let cover_counts = vec![0; prog.covers.len()];
        let cover_values_counts = vec![HashMap::new(); prog.cover_values.len()];
        let mux_conds = prog
            .instrs
            .iter()
            .filter(|i| i.op == MicroOp::Mux)
            .map(|i| i.c)
            .collect();
        CompiledSim {
            prog,
            st: RefCell::new(ExecState {
                slots,
                mems,
                settled: false,
            }),
            cover_counts,
            cover_values_counts,
            native_mux: None,
            native_names: Vec::new(),
            mux_conds,
            cycles: 0,
            fuel: Fuel::unlimited(),
            opt_stats: OptStats::default(),
        }
    }

    /// What the optimizer did while building this simulator (all zeros
    /// when constructed via [`CompiledSim::from_program`]).
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// Enable native structural (per-mux branch) coverage — the built-in
    /// coverage a monolithic simulator would offer. Counter names are
    /// interned once here instead of formatted per query.
    pub fn enable_native_coverage(&mut self) {
        self.native_mux = Some(vec![(0, 0); self.mux_conds.len()]);
        self.native_names = (0..self.mux_conds.len())
            .map(|i| (format!("native.mux{i}.t"), format!("native.mux{i}.f")))
            .collect();
    }

    /// Native structural coverage counts, named `native.mux<i>.{t,f}`.
    pub fn native_coverage(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        if let Some(counts) = &self.native_mux {
            for (i, (t, f)) in counts.iter().enumerate() {
                map.record_ref(&self.native_names[i].0, *t);
                map.record_ref(&self.native_names[i].1, *f);
            }
        }
        map
    }

    /// Number of cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The compiled program (for the activity-driven backend and tests).
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Bring combinational logic up to date with inputs/state. Idempotent
    /// until the next poke/step/memory write.
    fn settle(&self) {
        let st = &mut *self.st.borrow_mut();
        if st.settled {
            return;
        }
        for instr in &self.prog.instrs {
            exec_instr(instr, &mut st.slots, &st.mems);
        }
        st.settled = true;
    }

    fn sample_covers(&mut self) {
        let st = self.st.get_mut();
        for (i, cov) in self.prog.covers.iter().enumerate() {
            if st.slots[cov.pred as usize] != 0 && st.slots[cov.enable as usize] != 0 {
                self.cover_counts[i] = self.cover_counts[i].saturating_add(1);
            }
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            if st.slots[cv.enable as usize] != 0 {
                let v = st.slots[cv.signal as usize];
                let entry = self.cover_values_counts[i].entry(v).or_insert(0);
                *entry = entry.saturating_add(1);
            }
        }
    }

    fn commit(&mut self) {
        let st = self.st.get_mut();
        // memory writes use pre-edge values
        for m in 0..self.prog.mems.len() {
            let mem = &self.prog.mems[m];
            for w in &mem.writers {
                if st.slots[w.en as usize] != 0 && st.slots[w.mask as usize] != 0 {
                    let addr = st.slots[w.addr as usize] as usize;
                    if addr < mem.depth {
                        let data = st.slots[w.data as usize] & mem.mask;
                        st.mems[m][addr] = data;
                    }
                }
            }
        }
        for r in &self.prog.regs {
            st.slots[r.value as usize] = st.slots[r.next as usize];
        }
        st.settled = false;
    }
}

#[inline(always)]
fn sext(v: u64, w: u32) -> i64 {
    if w == 0 || w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

#[inline(always)]
pub(crate) fn exec_instr(i: &Instr, slots: &mut [u64], mems: &[Vec<u64>]) {
    let a = slots[i.a as usize];
    let b = slots[i.b as usize];
    let v = match i.op {
        MicroOp::Copy => a,
        MicroOp::Add => a.wrapping_add(b),
        MicroOp::Sub => a.wrapping_sub(b),
        MicroOp::Mul => ((a as u128).wrapping_mul(b as u128)) as u64,
        MicroOp::Div => a.checked_div(b).unwrap_or(0),
        MicroOp::DivS => {
            let (sa, sb) = (sext(a, i.aw), sext(b, i.aw));
            if sb == 0 {
                0
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        MicroOp::Rem => a.checked_rem(b).unwrap_or(0),
        MicroOp::RemS => {
            let (sa, sb) = (sext(a, i.aw), sext(b, i.aw));
            if sb == 0 {
                0
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        MicroOp::Lt => (a < b) as u64,
        MicroOp::LtS => (sext(a, i.aw) < sext(b, i.aw)) as u64,
        MicroOp::Leq => (a <= b) as u64,
        MicroOp::LeqS => (sext(a, i.aw) <= sext(b, i.aw)) as u64,
        MicroOp::Gt => (a > b) as u64,
        MicroOp::GtS => (sext(a, i.aw) > sext(b, i.aw)) as u64,
        MicroOp::Geq => (a >= b) as u64,
        MicroOp::GeqS => (sext(a, i.aw) >= sext(b, i.aw)) as u64,
        MicroOp::Eq => (a == b) as u64,
        MicroOp::Neq => (a != b) as u64,
        MicroOp::And => a & b,
        MicroOp::Or => a | b,
        MicroOp::Xor => a ^ b,
        MicroOp::Not => !a,
        MicroOp::Neg => (a as i64).wrapping_neg() as u64,
        MicroOp::Andr => {
            let mask = if i.aw >= 64 {
                u64::MAX
            } else {
                (1u64 << i.aw) - 1
            };
            (a & mask == mask) as u64
        }
        MicroOp::Orr => (a != 0) as u64,
        MicroOp::Xorr => (a.count_ones() % 2) as u64,
        MicroOp::Sext => sext(a, i.aw) as u64,
        MicroOp::Shl => a << i.imm,
        MicroOp::Shr => a >> i.imm,
        MicroOp::ShrS => (sext(a, i.aw) >> i.imm) as u64,
        MicroOp::Dshl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        MicroOp::Dshr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        MicroOp::DshrS => {
            let sa = sext(a, i.aw);
            let sh = b.min(63);
            (sa >> sh) as u64
        }
        MicroOp::Cat => (a << i.imm) | b,
        MicroOp::Bits => a >> i.imm,
        MicroOp::Mux => {
            let c = slots[i.c as usize];
            if c != 0 {
                a
            } else {
                b
            }
        }
        MicroOp::MemRead => {
            let mem = &mems[i.imm as usize];
            let addr = a as usize;
            if b != 0 && addr < mem.len() {
                mem[addr]
            } else {
                0
            }
        }
    };
    slots[i.dst as usize] = v & i.mask;
}

impl Simulator for CompiledSim {
    fn poke(&mut self, signal: &str, value: u64) {
        let slot = self.prog.signal_slot[signal] as usize;
        let w = self.prog.slot_width[slot];
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let st = self.st.get_mut();
        st.slots[slot] = value & mask;
        st.settled = false;
    }

    fn peek(&self, signal: &str) -> u64 {
        self.settle();
        self.st.borrow().slots[self.prog.signal_slot[signal] as usize]
    }

    fn step(&mut self) {
        if !self.fuel.consume() {
            return;
        }
        self.settle();
        // native mux counting happens once per clock cycle (peeks between
        // steps no longer inflate the branch counters)
        if let Some(native) = &mut self.native_mux {
            let st = self.st.get_mut();
            for (k, &cs) in self.mux_conds.iter().enumerate() {
                if st.slots[cs as usize] != 0 {
                    native[k].0 = native[k].0.saturating_add(1);
                } else {
                    native[k].1 = native[k].1.saturating_add(1);
                }
            }
        }
        self.sample_covers();
        self.commit();
        self.cycles += 1;
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel.starved()
    }

    fn cover_counts(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        for (i, cov) in self.prog.covers.iter().enumerate() {
            map.record(&cov.name, self.cover_counts[i]);
            map.declare(&cov.name);
        }
        for (i, cv) in self.prog.cover_values.iter().enumerate() {
            for (value, count) in &self.cover_values_counts[i] {
                map.record(format!("{}[{value}]", cv.name), *count);
            }
        }
        map
    }

    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        let idx = self
            .prog
            .mems
            .iter()
            .position(|m| m.name == mem)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        let depth = self.prog.mems[idx].depth;
        if addr as usize >= depth {
            return Err(SimError(format!("address {addr} out of range for `{mem}`")));
        }
        let mask = self.prog.mems[idx].mask;
        let st = self.st.get_mut();
        st.mems[idx][addr as usize] = value & mask;
        st.settled = false;
        Ok(())
    }

    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        let idx = self
            .prog
            .mems
            .iter()
            .position(|m| m.name == mem)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        self.st.borrow().mems[idx]
            .get(addr as usize)
            .copied()
            .ok_or_else(|| SimError(format!("address {addr} out of range for `{mem}`")))
    }

    fn signals(&self) -> Vec<String> {
        let mut v: Vec<String> = self.prog.signal_slot.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn sim(src: &str) -> CompiledSim {
        CompiledSim::new(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn combinational_add() {
        let mut s = sim("
circuit T :
  module T :
    input a : UInt<4>
    input b : UInt<4>
    output o : UInt<5>
    o <= add(a, b)
");
        s.poke("a", 9);
        s.poke("b", 8);
        assert_eq!(s.peek("o"), 17);
    }

    #[test]
    fn register_counts() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
");
        s.poke("reset", 1);
        s.step();
        s.poke("reset", 0);
        for _ in 0..5 {
            s.step();
        }
        assert_eq!(s.peek("o"), 5);
    }

    #[test]
    fn cover_counting() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : hit
");
        s.poke("a", 1);
        s.step();
        s.step();
        s.poke("a", 0);
        s.step();
        assert_eq!(s.cover_counts().count("hit"), Some(2));
    }

    #[test]
    fn memory_write_read() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input addr : UInt<4>
    input wdata : UInt<8>
    input wen : UInt<1>
    output o : UInt<8>
    mem m : UInt<8>[16], readers(r), writers(w)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
    m.w.addr <= addr
    m.w.en <= wen
    m.w.data <= wdata
    m.w.mask <= UInt<1>(1)
    o <= m.r.data
");
        s.poke("addr", 3);
        s.poke("wdata", 42);
        s.poke("wen", 1);
        s.step();
        s.poke("wen", 0);
        assert_eq!(s.peek("o"), 42);
        assert_eq!(s.read_mem("m", 3).unwrap(), 42);
        s.write_mem("m", 5, 7).unwrap();
        s.poke("addr", 5);
        assert_eq!(s.peek("o"), 7);
    }

    #[test]
    fn hierarchy_executes() {
        let mut s = sim("
circuit Top :
  module Inv :
    input in : UInt<4>
    output out : UInt<4>
    out <= not(in)
  module Top :
    input x : UInt<4>
    output o : UInt<4>
    inst i1 of Inv
    inst i2 of Inv
    i1.in <= x
    i2.in <= i1.out
    o <= i2.out
");
        s.poke("x", 0b1010);
        assert_eq!(s.peek("o"), 0b1010);
        assert_eq!(s.peek("i1.out"), 0b0101);
    }

    #[test]
    fn native_mux_coverage() {
        let mut s = sim("
circuit T :
  module T :
    input s : UInt<1>
    input a : UInt<4>
    input b : UInt<4>
    output o : UInt<4>
    o <= mux(s, a, b)
");
        s.enable_native_coverage();
        s.poke("s", 1);
        s.step();
        s.poke("s", 0);
        s.step();
        s.step();
        let native = s.native_coverage();
        assert_eq!(native.count("native.mux0.t"), Some(1));
        assert_eq!(native.count("native.mux0.f"), Some(2));
    }

    #[test]
    fn peeks_between_steps_do_not_inflate_native_counts() {
        let mut s = sim("
circuit T :
  module T :
    input s : UInt<1>
    input a : UInt<4>
    input b : UInt<4>
    output o : UInt<4>
    o <= mux(s, a, b)
");
        s.enable_native_coverage();
        s.poke("s", 1);
        s.peek("o");
        s.peek("o");
        s.step();
        let native = s.native_coverage();
        assert_eq!(native.count("native.mux0.t"), Some(1));
    }

    #[test]
    fn signed_arithmetic() {
        let mut s = sim("
circuit T :
  module T :
    input a : SInt<8>
    input b : SInt<8>
    output lt : UInt<1>
    output d : SInt<9>
    lt <= lt(a, b)
    d <= div(a, b)
");
        s.poke("a", 0xF8); // -8
        s.poke("b", 3);
        assert_eq!(s.peek("lt"), 1);
        let d = s.peek("d");
        assert_eq!(sext(d, 9), -2);
    }

    #[test]
    fn validif_reads_zero_when_invalid() {
        let mut s = sim("
circuit T :
  module T :
    input c : UInt<1>
    input v : UInt<8>
    output o : UInt<8>
    o <= validif(c, v)
");
        s.poke("v", 99);
        s.poke("c", 0);
        assert_eq!(s.peek("o"), 0);
        s.poke("c", 1);
        assert_eq!(s.peek("o"), 99);
    }
}

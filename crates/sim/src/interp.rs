//! The tree-walking interpreter backend (Treadle analog, §3.1).
//!
//! Evaluates the flat netlist's expression trees directly over
//! arbitrary-width [`Bv`] values each cycle. Slower than the compiled
//! backend but with instant spin-up and no 64-bit width restriction —
//! exactly the Treadle/Verilator trade-off the paper describes. The value
//! environment sits behind a [`RefCell`] so `peek(&self)` can settle
//! combinational logic lazily.

use crate::compile::topo_order;
use crate::elaborate::{elaborate, Def, FlatCircuit};
use crate::{Fuel, SimError, Simulator};
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::bv::Bv;
use rtlcov_firrtl::eval::{eval, Value};
use rtlcov_firrtl::ir::Circuit;
use std::cell::RefCell;
use std::collections::HashMap;

/// Tree-walking interpreter.
#[derive(Debug, Clone)]
pub struct InterpSim {
    flat: FlatCircuit,
    /// Pre-resolved evaluation schedule: (name, def, width, signed).
    schedule: Vec<(String, Def, u32, bool)>,
    values: RefCell<HashMap<String, Value>>,
    mems: HashMap<String, Vec<Bv>>,
    cover_counts: Vec<u64>,
    cover_values_counts: Vec<HashMap<u64, u64>>,
    cycles: u64,
    fuel: Fuel,
}

fn eval_in(values: &HashMap<String, Value>, e: &rtlcov_firrtl::ir::Expr) -> Value {
    eval(e, &|n| values.get(n).cloned()).expect("elaboration guarantees bound references")
}

/// Evaluate the combinational schedule in topological order, writing each
/// result back into `values` (memories are only read here).
fn settle_in(
    schedule: &[(String, Def, u32, bool)],
    values: &mut HashMap<String, Value>,
    mems: &HashMap<String, Vec<Bv>>,
) {
    for (name, def, width, signed) in schedule {
        let (width, signed) = (*width, *signed);
        let value = match def {
            Def::Expr(e) => {
                let v = eval_in(values, e);
                Value {
                    bits: v.extend_to(width).resize_zext(width),
                    signed,
                }
            }
            Def::MemRead { mem, addr, en } => {
                let en_v = values[en].is_true();
                let addr_v = values[addr].bits.to_u64() as usize;
                let storage = &mems[mem];
                let bits = if en_v && addr_v < storage.len() {
                    storage[addr_v].clone()
                } else {
                    Bv::zero(width)
                };
                Value {
                    bits,
                    signed: false,
                }
            }
            _ => continue,
        };
        // reuse the existing key allocation where possible
        if let Some(slot) = values.get_mut(name) {
            *slot = value;
        } else {
            values.insert(name.clone(), value);
        }
    }
}

impl InterpSim {
    /// Build an interpreter from a lowered circuit.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors and combinational loops.
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        let flat = elaborate(circuit).map_err(|e| SimError(e.0))?;
        let order = topo_order(&flat).map_err(|e| SimError(e.0))?;
        let schedule: Vec<(String, Def, u32, bool)> = order
            .iter()
            .filter(|n| matches!(flat.signals[*n].def, Def::Expr(_) | Def::MemRead { .. }))
            .map(|n| {
                let s = &flat.signals[n];
                (n.clone(), s.def.clone(), s.width, s.signed)
            })
            .collect();
        let mut values = HashMap::new();
        for (name, sig) in &flat.signals {
            values.insert(
                name.clone(),
                Value {
                    bits: Bv::zero(sig.width),
                    signed: sig.signed,
                },
            );
        }
        let mems = flat
            .mems
            .iter()
            .map(|m| (m.name.clone(), vec![Bv::zero(m.width); m.depth]))
            .collect();
        let cover_counts = vec![0; flat.covers.len()];
        let cover_values_counts = vec![HashMap::new(); flat.cover_values.len()];
        Ok(InterpSim {
            flat,
            schedule,
            values: RefCell::new(values),
            mems,
            cover_counts,
            cover_values_counts,
            cycles: 0,
            fuel: Fuel::unlimited(),
        })
    }

    /// Number of cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn settle(&self) {
        settle_in(&self.schedule, &mut self.values.borrow_mut(), &self.mems);
    }

    fn sample_covers(&mut self) {
        let values = self.values.get_mut();
        for (i, c) in self.flat.covers.iter().enumerate() {
            let pred = eval_in(values, &c.pred).is_true();
            let en = eval_in(values, &c.enable).is_true();
            if pred && en {
                self.cover_counts[i] = self.cover_counts[i].saturating_add(1);
            }
        }
        for (i, cv) in self.flat.cover_values.iter().enumerate() {
            let en = eval_in(values, &cv.enable).is_true();
            if en {
                let v = eval_in(values, &cv.signal).bits.to_u64();
                let entry = self.cover_values_counts[i].entry(v).or_insert(0);
                *entry = entry.saturating_add(1);
            }
        }
    }

    fn commit(&mut self) {
        let values = self.values.get_mut();
        // memory writes with pre-edge values
        for m in &self.flat.mems {
            for w in &m.writers {
                let en = values[&w.en].is_true() && values[&w.mask].is_true();
                if en {
                    let addr = values[&w.addr].bits.to_u64() as usize;
                    if addr < m.depth {
                        let data = values[&w.data].bits.resize_zext(m.width);
                        self.mems.get_mut(&m.name).expect("mem exists")[addr] = data;
                    }
                }
            }
        }
        // register updates with pre-edge values
        let mut updates = Vec::with_capacity(self.flat.regs.len());
        for r in &self.flat.regs {
            let next = eval_in(values, &r.next);
            let mut value = next.extend_to(r.width).resize_zext(r.width);
            if let Some((rst, init)) = &r.reset {
                if eval_in(values, rst).is_true() {
                    value = eval_in(values, init)
                        .extend_to(r.width)
                        .resize_zext(r.width);
                }
            }
            updates.push((
                r.name.clone(),
                Value {
                    bits: value,
                    signed: r.signed,
                },
            ));
        }
        for (name, value) in updates {
            values.insert(name, value);
        }
    }

    /// Read a wide signal as a [`Bv`] (no 64-bit restriction).
    pub fn peek_bv(&self, signal: &str) -> Bv {
        self.settle();
        self.values.borrow()[signal].bits.clone()
    }

    /// Drive a wide input.
    pub fn poke_bv(&mut self, signal: &str, value: Bv) {
        let sig = &self.flat.signals[signal];
        let v = Value {
            bits: value.resize_zext(sig.width),
            signed: sig.signed,
        };
        self.values.get_mut().insert(signal.to_string(), v);
    }
}

impl Simulator for InterpSim {
    fn poke(&mut self, signal: &str, value: u64) {
        let width = self.flat.signals[signal].width;
        self.poke_bv(signal, Bv::from_u64(value, width.min(64)));
    }

    fn peek(&self, signal: &str) -> u64 {
        self.peek_bv(signal).to_u64()
    }

    fn step(&mut self) {
        if !self.fuel.consume() {
            return;
        }
        self.settle();
        self.sample_covers();
        self.commit();
        self.cycles += 1;
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel.starved()
    }

    fn cover_counts(&self) -> CoverageMap {
        let mut map = CoverageMap::new();
        for (i, c) in self.flat.covers.iter().enumerate() {
            map.record(&c.name, self.cover_counts[i]);
            map.declare(&c.name);
        }
        for (i, cv) in self.flat.cover_values.iter().enumerate() {
            for (value, count) in &self.cover_values_counts[i] {
                map.record(format!("{}[{value}]", cv.name), *count);
            }
        }
        map
    }

    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        let width = self
            .flat
            .mems
            .iter()
            .find(|m| m.name == mem)
            .map(|m| m.width)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        let storage = self
            .mems
            .get_mut(mem)
            .ok_or_else(|| SimError(format!("unknown memory `{mem}`")))?;
        let slot = storage
            .get_mut(addr as usize)
            .ok_or_else(|| SimError(format!("address {addr} out of range for `{mem}`")))?;
        *slot = Bv::from_u64(value, width.min(64)).resize_zext(width);
        Ok(())
    }

    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        self.mems
            .get(mem)
            .and_then(|s| s.get(addr as usize))
            .map(|b| b.to_u64())
            .ok_or_else(|| SimError(format!("unknown memory `{mem}` or bad address {addr}")))
    }

    fn signals(&self) -> Vec<String> {
        let mut v: Vec<String> = self.flat.signals.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn sim(src: &str) -> InterpSim {
        InterpSim::new(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn counter_with_reset() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
");
        s.reset(2);
        s.step_n(7);
        assert_eq!(s.peek("o"), 7);
    }

    #[test]
    fn wide_signals_work() {
        let mut s = sim("
circuit T :
  module T :
    input a : UInt<100>
    output o : UInt<100>
    o <= not(a)
");
        s.poke_bv("a", Bv::zero(100));
        assert_eq!(s.peek_bv("o"), Bv::ones(100));
    }

    #[test]
    fn covers_match_semantics() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    cover(clock, and(a, b), UInt<1>(1)) : both
");
        s.poke("a", 1);
        s.poke("b", 0);
        s.step();
        s.poke("b", 1);
        s.step_n(3);
        assert_eq!(s.cover_counts().count("both"), Some(3));
    }

    #[test]
    fn cover_values_bins() {
        let mut s = sim("
circuit T :
  module T :
    input clock : Clock
    input v : UInt<2>
    cover_values(clock, v, UInt<1>(1)) : vals
");
        for v in [0u64, 1, 1, 3] {
            s.poke("v", v);
            s.step();
        }
        let m = s.cover_counts();
        assert_eq!(m.count("vals[0]"), Some(1));
        assert_eq!(m.count("vals[1]"), Some(2));
        assert_eq!(m.count("vals[3]"), Some(1));
        assert_eq!(m.count("vals[2]"), None);
    }
}

//! Elaboration: flatten the module hierarchy of a lowered circuit into a
//! single flat netlist.
//!
//! Every backend in this repository (interpreter, compiled simulator,
//! activity-driven simulator, FPGA host, formal transition system) consumes
//! the [`FlatCircuit`] produced here. Signal names are instance-path
//! qualified with `.` separators (`core.alu.out`); cover names follow the
//! same convention, which is exactly the hierarchical naming scheme the
//! paper's `CoverageMap` uses.

use rtlcov_firrtl::ir::*;
use rtlcov_firrtl::typecheck::{addr_width, expr_type, module_env};
use std::collections::HashMap;
use std::fmt;

/// Error produced during elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError(pub String);

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.0)
    }
}

impl std::error::Error for ElabError {}

/// How a flat signal gets its value.
#[derive(Debug, Clone, PartialEq)]
pub enum Def {
    /// Driven by an expression over flat signal names.
    Expr(Expr),
    /// Combinational memory read: `en ? mem[addr] : 0`.
    MemRead {
        /// Flat memory name.
        mem: String,
        /// Flat name of the address signal.
        addr: String,
        /// Flat name of the enable signal.
        en: String,
    },
    /// Externally driven (top-level input).
    Input,
    /// Register output (committed at clock edges).
    Reg,
    /// Undriven: constant zero.
    Zero,
}

/// A flat combinational or state signal.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSignal {
    /// Hierarchical name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Two's complement interpretation.
    pub signed: bool,
    /// Value definition.
    pub def: Def,
}

/// A flat register.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatReg {
    /// Hierarchical name (also the name of its output signal).
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Signedness.
    pub signed: bool,
    /// Next-value expression over flat names (the register itself if never
    /// assigned).
    pub next: Expr,
    /// Optional `(reset expr, init expr)`, both over flat names.
    pub reset: Option<(Expr, Expr)>,
}

/// A write port of a flat memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMemWriter {
    /// Flat name of the address signal.
    pub addr: String,
    /// Flat name of the enable signal.
    pub en: String,
    /// Flat name of the data signal.
    pub data: String,
    /// Flat name of the mask signal.
    pub mask: String,
}

/// A flat memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMem {
    /// Hierarchical name.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// Number of elements.
    pub depth: usize,
    /// Write ports (reads appear as [`Def::MemRead`] signals).
    pub writers: Vec<FlatMemWriter>,
}

/// A flat cover statement.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatCover {
    /// Hierarchical cover name (`path.name`).
    pub name: String,
    /// Predicate over flat names.
    pub pred: Expr,
    /// Enable over flat names.
    pub enable: Expr,
}

/// A flat cover-values statement (§6 extension).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatCoverValues {
    /// Hierarchical cover name.
    pub name: String,
    /// Observed signal expression.
    pub signal: Expr,
    /// Width of the observed signal.
    pub width: u32,
    /// Enable over flat names.
    pub enable: Expr,
}

/// The flattened design every backend executes.
#[derive(Debug, Clone, Default)]
pub struct FlatCircuit {
    /// All signals, keyed by hierarchical name.
    pub signals: HashMap<String, FlatSignal>,
    /// Top-level input names in declaration order (excluding clock).
    pub inputs: Vec<String>,
    /// Top-level output names in declaration order.
    pub outputs: Vec<String>,
    /// Registers.
    pub regs: Vec<FlatReg>,
    /// Memories.
    pub mems: Vec<FlatMem>,
    /// Cover statements.
    pub covers: Vec<FlatCover>,
    /// Cover-values statements.
    pub cover_values: Vec<FlatCoverValues>,
}

impl FlatCircuit {
    /// Width of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal does not exist.
    pub fn width(&self, name: &str) -> u32 {
        self.signals[name].width
    }
}

fn prefixed(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{path}.{name}")
    }
}

/// Elaborate a lowered circuit (run [`rtlcov_firrtl::passes::lower`] first).
///
/// # Errors
///
/// Fails on remaining `when` statements, unknown modules, untypeable
/// expressions, or clock-typed cover predicates.
pub fn elaborate(circuit: &Circuit) -> Result<FlatCircuit, ElabError> {
    let mut flat = FlatCircuit::default();
    elaborate_module(circuit, &circuit.top, "", &mut flat)?;

    // Signals that are referenced but never defined default to zero.
    let mut referenced: Vec<String> = Vec::new();
    let visit_expr = |e: &Expr, referenced: &mut Vec<String>| {
        e.for_each(&mut |x| {
            if let Expr::Ref(n) = x {
                referenced.push(n.clone());
            }
        });
    };
    for sig in flat.signals.values() {
        if let Def::Expr(e) = &sig.def {
            visit_expr(e, &mut referenced);
        }
    }
    for r in &flat.regs {
        visit_expr(&r.next, &mut referenced);
        if let Some((rst, init)) = &r.reset {
            visit_expr(rst, &mut referenced);
            visit_expr(init, &mut referenced);
        }
    }
    for c in &flat.covers {
        visit_expr(&c.pred, &mut referenced);
        visit_expr(&c.enable, &mut referenced);
    }
    for cv in &flat.cover_values {
        visit_expr(&cv.signal, &mut referenced);
        visit_expr(&cv.enable, &mut referenced);
    }
    for name in referenced {
        if !flat.signals.contains_key(&name) {
            return Err(ElabError(format!("undeclared signal `{name}` referenced")));
        }
    }
    Ok(flat)
}

fn elaborate_module(
    circuit: &Circuit,
    mod_name: &str,
    path: &str,
    flat: &mut FlatCircuit,
) -> Result<(), ElabError> {
    let module = circuit
        .module(mod_name)
        .ok_or_else(|| ElabError(format!("unknown module `{mod_name}`")))?;
    let env = module_env(module, circuit).map_err(|e| ElabError(e.0))?;

    // instance table for reference rewriting
    let mut insts: HashMap<String, String> = HashMap::new();
    let mut mems: HashMap<String, Mem> = HashMap::new();
    module.for_each_stmt(&mut |s| match s {
        Stmt::Inst {
            name,
            module: target,
            ..
        } => {
            insts.insert(name.clone(), target.clone());
        }
        Stmt::Mem(m) => {
            mems.insert(m.name.clone(), m.clone());
        }
        _ => {}
    });

    // Rewrite an expression into flat-name space.
    let flatten_expr = |e: &Expr| -> Result<Expr, ElabError> {
        let insts = &insts;
        let mems = &mems;
        let out = e.clone().map(&|x| match x {
            Expr::Ref(n) => Expr::Ref(prefixed(path, &n)),
            Expr::SubField(inner, field) => {
                // inner was already rewritten bottom-up into a prefixed ref
                if let Expr::Ref(name) = inner.as_ref() {
                    Expr::Ref(format!("{name}.{field}"))
                } else {
                    Expr::SubField(inner, field)
                }
            }
            other => other,
        });
        // validate: no remaining aggregates accesses
        let mut bad = None;
        out.for_each(&mut |x| {
            if matches!(x, Expr::SubField(..) | Expr::SubIndex(..)) && bad.is_none() {
                bad = Some(format!("{x:?}"));
            }
        });
        let _ = (insts, mems);
        match bad {
            Some(b) => Err(ElabError(format!("unlowered aggregate access {b}"))),
            None => Ok(out),
        }
    };

    // 1. declare ports
    for p in &module.ports {
        let flat_name = prefixed(path, &p.name);
        let width = p.ty.width().ok_or_else(|| {
            ElabError(format!(
                "port `{}` of `{mod_name}` has unknown width",
                p.name
            ))
        })?;
        let is_clock = matches!(p.ty, Type::Clock);
        let def = if path.is_empty() {
            match p.dir {
                Direction::Input => Def::Input,
                Direction::Output => Def::Zero, // overwritten by its connect
            }
        } else {
            Def::Zero // driven by parent connect or child logic
        };
        flat.signals.insert(
            flat_name.clone(),
            FlatSignal {
                name: flat_name.clone(),
                width,
                signed: p.ty.is_signed(),
                def,
            },
        );
        if path.is_empty() && !is_clock {
            match p.dir {
                Direction::Input => flat.inputs.push(flat_name),
                Direction::Output => flat.outputs.push(flat_name),
            }
        }
    }

    // 2. walk the body
    for s in &module.body {
        match s {
            Stmt::When { .. } => {
                return Err(ElabError(
                    "circuit still contains `when`; run lower() first".into(),
                ))
            }
            Stmt::Wire { name, ty, .. } => {
                let flat_name = prefixed(path, name);
                let width = ty
                    .width()
                    .ok_or_else(|| ElabError(format!("wire `{name}` unknown width")))?;
                flat.signals.insert(
                    flat_name.clone(),
                    FlatSignal {
                        name: flat_name,
                        width,
                        signed: ty.is_signed(),
                        def: Def::Zero,
                    },
                );
            }
            Stmt::Node { name, value, .. } => {
                let flat_name = prefixed(path, name);
                let ty = expr_type(value, &env).map_err(|e| ElabError(e.0))?;
                let width = ty
                    .width()
                    .ok_or_else(|| ElabError(format!("node `{name}` unknown width")))?;
                let def = Def::Expr(flatten_expr(value)?);
                flat.signals.insert(
                    flat_name.clone(),
                    FlatSignal {
                        name: flat_name,
                        width,
                        signed: ty.is_signed(),
                        def,
                    },
                );
            }
            Stmt::Reg {
                name, ty, reset, ..
            } => {
                let flat_name = prefixed(path, name);
                let width = ty
                    .width()
                    .ok_or_else(|| ElabError(format!("reg `{name}` unknown width")))?;
                let reset = reset
                    .as_ref()
                    .map(|(r, i)| Ok::<_, ElabError>((flatten_expr(r)?, flatten_expr(i)?)))
                    .transpose()?;
                flat.signals.insert(
                    flat_name.clone(),
                    FlatSignal {
                        name: flat_name.clone(),
                        width,
                        signed: ty.is_signed(),
                        def: Def::Reg,
                    },
                );
                flat.regs.push(FlatReg {
                    name: flat_name.clone(),
                    width,
                    signed: ty.is_signed(),
                    next: Expr::Ref(flat_name),
                    reset,
                });
            }
            Stmt::Mem(mem) => {
                let flat_name = prefixed(path, &mem.name);
                let width = mem
                    .data_ty
                    .width()
                    .ok_or_else(|| ElabError(format!("mem `{}` unknown width", mem.name)))?;
                let aw = addr_width(mem.depth);
                let declare =
                    |flat: &mut FlatCircuit, port: &str, field: &str, w: u32, def: Def| {
                        let n = format!("{flat_name}.{port}.{field}");
                        flat.signals.insert(
                            n.clone(),
                            FlatSignal {
                                name: n,
                                width: w,
                                signed: false,
                                def,
                            },
                        );
                    };
                for r in &mem.readers {
                    declare(flat, r, "addr", aw, Def::Zero);
                    declare(flat, r, "en", 1, Def::Zero);
                    declare(
                        flat,
                        r,
                        "data",
                        width,
                        Def::MemRead {
                            mem: flat_name.clone(),
                            addr: format!("{flat_name}.{r}.addr"),
                            en: format!("{flat_name}.{r}.en"),
                        },
                    );
                }
                let mut writers = Vec::new();
                for w in &mem.writers {
                    declare(flat, w, "addr", aw, Def::Zero);
                    declare(flat, w, "en", 1, Def::Zero);
                    declare(flat, w, "data", width, Def::Zero);
                    declare(flat, w, "mask", 1, Def::Zero);
                    writers.push(FlatMemWriter {
                        addr: format!("{flat_name}.{w}.addr"),
                        en: format!("{flat_name}.{w}.en"),
                        data: format!("{flat_name}.{w}.data"),
                        mask: format!("{flat_name}.{w}.mask"),
                    });
                }
                flat.mems.push(FlatMem {
                    name: flat_name,
                    width,
                    depth: mem.depth,
                    writers,
                });
            }
            Stmt::Inst {
                name,
                module: target,
                ..
            } => {
                let child_path = prefixed(path, name);
                elaborate_module(circuit, target, &child_path, flat)?;
            }
            Stmt::Connect { loc, value, .. } => {
                let sink = flatten_sink(loc, path)?;
                let value = flatten_expr(value)?;
                // register sinks update `next`, everything else is a def
                if let Some(reg) = flat.regs.iter_mut().find(|r| r.name == sink) {
                    reg.next = value;
                } else {
                    let sig = flat.signals.get_mut(&sink).ok_or_else(|| {
                        ElabError(format!("connect to undeclared signal `{sink}`"))
                    })?;
                    sig.def = Def::Expr(value);
                }
            }
            Stmt::Invalid { loc, .. } => {
                let sink = flatten_sink(loc, path)?;
                if let Some(sig) = flat.signals.get_mut(&sink) {
                    sig.def = Def::Zero;
                }
            }
            Stmt::Cover {
                name, pred, enable, ..
            } => {
                flat.covers.push(FlatCover {
                    name: prefixed(path, name),
                    pred: flatten_expr(pred)?,
                    enable: flatten_expr(enable)?,
                });
            }
            Stmt::CoverValues {
                name,
                signal,
                enable,
                ..
            } => {
                let ty = expr_type(signal, &env).map_err(|e| ElabError(e.0))?;
                let width = ty
                    .width()
                    .ok_or_else(|| ElabError(format!("cover_values `{name}` unknown width")))?;
                flat.cover_values.push(FlatCoverValues {
                    name: prefixed(path, name),
                    signal: flatten_expr(signal)?,
                    width,
                    enable: flatten_expr(enable)?,
                });
            }
            Stmt::Skip => {}
        }
    }
    Ok(())
}

fn flatten_sink(loc: &Expr, path: &str) -> Result<String, ElabError> {
    match loc {
        Expr::Ref(n) => Ok(prefixed(path, n)),
        Expr::SubField(inner, field) => Ok(format!("{}.{field}", flatten_sink(inner, path)?)),
        other => Err(ElabError(format!("connect to non-reference {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn flat(src: &str) -> FlatCircuit {
        elaborate(&passes::lower(parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn flattens_simple_module() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    o <= not(a)
",
        );
        assert_eq!(f.inputs, vec!["a"]);
        assert_eq!(f.outputs, vec!["o"]);
        assert!(matches!(&f.signals["o"].def, Def::Expr(_)));
        assert!(matches!(&f.signals["a"].def, Def::Input));
    }

    #[test]
    fn hierarchical_names() {
        let f = flat(
            "
circuit Top :
  module Child :
    input clock : Clock
    input in : UInt<4>
    output out : UInt<4>
    out <= not(in)
  module Top :
    input clock : Clock
    input x : UInt<4>
    output o : UInt<4>
    inst c of Child
    c.clock <= clock
    c.in <= x
    o <= c.out
",
        );
        assert!(f.signals.contains_key("c.in"));
        assert!(f.signals.contains_key("c.out"));
        // parent drives c.in from x
        match &f.signals["c.in"].def {
            Def::Expr(Expr::Ref(n)) => assert_eq!(n, "x"),
            other => panic!("{other:?}"),
        }
        // child drives c.out
        assert!(matches!(&f.signals["c.out"].def, Def::Expr(_)));
    }

    #[test]
    fn registers_get_next_and_reset() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(3)))
    r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
",
        );
        assert_eq!(f.regs.len(), 1);
        let r = &f.regs[0];
        assert_eq!(r.name, "r");
        assert!(r.reset.is_some());
        assert!(!matches!(r.next, Expr::Ref(_)));
    }

    #[test]
    fn covers_get_hierarchical_names() {
        let f = flat(
            "
circuit Top :
  module Child :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : inner
  module Top :
    input clock : Clock
    input a : UInt<1>
    inst c of Child
    c.clock <= clock
    c.a <= a
    cover(clock, a, UInt<1>(1)) : outer
",
        );
        let names: Vec<&str> = f.covers.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"c.inner"));
    }

    #[test]
    fn memories_flatten_with_ports() {
        let f = flat(
            "
circuit T :
  module T :
    input clock : Clock
    input addr : UInt<4>
    input wdata : UInt<8>
    input wen : UInt<1>
    output o : UInt<8>
    mem m : UInt<8>[16], readers(r), writers(w)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
    m.w.addr <= addr
    m.w.en <= wen
    m.w.data <= wdata
    m.w.mask <= UInt<1>(1)
    o <= m.r.data
",
        );
        assert_eq!(f.mems.len(), 1);
        assert_eq!(f.mems[0].writers.len(), 1);
        assert!(matches!(&f.signals["m.r.data"].def, Def::MemRead { .. }));
        match &f.signals["o"].def {
            Def::Expr(Expr::Ref(n)) => assert_eq!(n, "m.r.data"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_instances_of_same_module() {
        let f = flat(
            "
circuit Top :
  module Buf :
    input in : UInt<4>
    output out : UInt<4>
    out <= in
  module Top :
    input a : UInt<4>
    output o : UInt<4>
    inst b1 of Buf
    inst b2 of Buf
    b1.in <= a
    b2.in <= b1.out
    o <= b2.out
",
        );
        assert!(f.signals.contains_key("b1.in"));
        assert!(f.signals.contains_key("b2.in"));
    }
}

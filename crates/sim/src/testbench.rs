//! Input-trace testbenches (the paper's §5.1 methodology).
//!
//! Table 2 / Figure 8 isolate simulator run time from stimulus generation
//! by recording a workload's top-level inputs once (a VCD-replay analog)
//! and replaying only those inputs against each simulator configuration.

use crate::Simulator;
use rtlcov_core::CoverageMap;

/// A recorded input trace: per-cycle values for each driven input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputTrace {
    /// Driven input names.
    pub inputs: Vec<String>,
    /// `values[cycle][input_index]`.
    pub values: Vec<Vec<u64>>,
}

impl InputTrace {
    /// An empty trace over the given inputs.
    pub fn new(inputs: Vec<String>) -> Self {
        InputTrace {
            inputs,
            values: Vec::new(),
        }
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.values.len()
    }

    /// Append one cycle of input values (same order as `inputs`).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the input count.
    pub fn push(&mut self, values: Vec<u64>) {
        assert_eq!(values.len(), self.inputs.len(), "one value per input");
        self.values.push(values);
    }

    /// Record a trace by running `drive` for `cycles` cycles: each call
    /// returns the input values for that cycle.
    pub fn record(
        inputs: Vec<String>,
        cycles: usize,
        mut drive: impl FnMut(usize) -> Vec<u64>,
    ) -> Self {
        let mut trace = InputTrace::new(inputs);
        for cycle in 0..cycles {
            trace.push(drive(cycle));
        }
        trace
    }

    /// Replay the trace against a simulator, returning the coverage map at
    /// the end (the "minimal testbench" of §5.1). If the simulator has a
    /// fuel budget and runs dry mid-trace, the replay stops early and the
    /// partial coverage accumulated so far is returned.
    pub fn replay(&self, sim: &mut dyn Simulator) -> CoverageMap {
        for cycle_values in &self.values {
            if sim.out_of_fuel() {
                break;
            }
            for (name, value) in self.inputs.iter().zip(cycle_values) {
                sim.poke(name, *value);
            }
            sim.step();
        }
        sim.cover_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledSim;
    use crate::essent::EssentSim;
    use crate::interp::InterpSim;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    const SRC: &str = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    cover(clock, en, UInt<1>(1)) : enabled
    o <= r
";

    #[test]
    fn replay_equivalence_across_backends() {
        let low = passes::lower(parse(SRC).unwrap()).unwrap();
        let trace = InputTrace::record(vec!["reset".into(), "en".into()], 50, |cycle| {
            vec![(cycle < 2) as u64, (cycle % 3 == 0) as u64]
        });
        let mut compiled = CompiledSim::new(&low).unwrap();
        let mut interp = InterpSim::new(&low).unwrap();
        let mut essent = EssentSim::new(&low).unwrap();
        let a = trace.replay(&mut compiled);
        let b = trace.replay(&mut interp);
        let c = trace.replay(&mut essent);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(a.count("enabled").unwrap() > 0);
        // outputs agree too
        assert_eq!(compiled.peek("o"), interp.peek("o"));
        assert_eq!(compiled.peek("o"), essent.peek("o"));
    }

    #[test]
    #[should_panic(expected = "one value per input")]
    fn push_checks_arity() {
        let mut t = InputTrace::new(vec!["a".into()]);
        t.push(vec![1, 2]);
    }
}

//! # rtlcov-sim
//!
//! Software simulator backends implementing the paper's simulator-
//! independent cover interface (§3). Three backends with the same
//! architectural split as the paper's targets:
//!
//! * [`interp::InterpSim`] — a tree-walking interpreter with fast spin-up
//!   (the Treadle analog, §3.1);
//! * [`compiled::CompiledSim`] — dense compiled evaluation (the Verilator
//!   analog, §3.2), with an optional *native* structural-coverage mode used
//!   as the built-in-coverage baseline of Figure 8;
//! * [`essent::EssentSim`] — activity-driven evaluation that skips
//!   quiescent logic (the ESSENT analog, §3.5).
//!
//! All of them implement [`Simulator`] and report the same
//! [`rtlcov_core::CoverageMap`], so coverage merges trivially across
//! backends.

#![warn(missing_docs)]

pub mod compile;
pub mod compiled;
pub mod elaborate;
pub mod essent;
pub mod interp;
pub mod opt;
pub mod partition;
pub mod testbench;
pub mod vcd;

use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use std::fmt;

/// Error raised by simulator construction or memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulator error: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// A step budget shared by every backend: each [`Simulator::step`] call
/// consumes one unit, and once the tank is dry further steps are refused
/// (recorded as starvation) instead of executed. Campaign runners use
/// this to turn runaway workloads into deterministic timeouts whose
/// partial coverage is still usable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fuel {
    remaining: Option<u64>,
    starved: bool,
}

impl Fuel {
    /// No budget: every step is allowed.
    pub fn unlimited() -> Self {
        Fuel::default()
    }

    /// Install a budget of `fuel` steps (clearing any prior starvation).
    pub fn set(&mut self, fuel: u64) {
        self.remaining = Some(fuel);
        self.starved = false;
    }

    /// Try to consume one unit. Returns `false` — and records starvation —
    /// when the budget is exhausted; unlimited fuel always succeeds.
    pub fn consume(&mut self) -> bool {
        match &mut self.remaining {
            None => true,
            Some(0) => {
                self.starved = true;
                false
            }
            Some(n) => {
                *n -= 1;
                true
            }
        }
    }

    /// Whether a step has been refused for lack of fuel.
    pub fn starved(&self) -> bool {
        self.starved
    }

    /// Remaining budget (`None` = unlimited).
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }
}

/// The paper's simulator interface: drive inputs, step the clock, and read
/// back a map from cover-point name to saturating count.
pub trait Simulator {
    /// Drive a top-level input (masked to its width).
    ///
    /// # Panics
    ///
    /// Implementations may panic on unknown signal names.
    fn poke(&mut self, signal: &str, value: u64);

    /// Read any signal's current value (after combinational settle).
    /// Backends settle lazily through interior mutability, so peeking
    /// never requires `&mut`.
    fn peek(&self, signal: &str) -> u64;

    /// Advance one clock cycle: settle combinational logic, sample covers
    /// on the rising edge, commit registers and memory writes.
    fn step(&mut self);

    /// Advance `n` cycles.
    fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Assert the `reset` input for `cycles` cycles, then deassert.
    fn reset(&mut self, cycles: usize) {
        self.poke("reset", 1);
        self.step_n(cycles);
        self.poke("reset", 0);
    }

    /// Install a fuel budget of `fuel` clock steps. Once the budget is
    /// exhausted, [`Simulator::step`] becomes a refusal (state freezes and
    /// [`Simulator::out_of_fuel`] turns true) rather than an execution.
    /// Backends without a budget implementation may ignore the call.
    fn set_fuel(&mut self, fuel: u64) {
        let _ = fuel;
    }

    /// Whether a step has been refused because the fuel budget ran dry.
    /// Drivers (e.g. trace replay) should stop stepping once this is true;
    /// the coverage accumulated so far remains valid as a partial result.
    fn out_of_fuel(&self) -> bool {
        false
    }

    /// The cover-point counts accumulated so far (the §3 interface).
    fn cover_counts(&self) -> CoverageMap;

    /// Backdoor memory write (program loading).
    ///
    /// # Errors
    ///
    /// Unknown memory name or out-of-range address.
    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError>;

    /// Backdoor memory read.
    ///
    /// # Errors
    ///
    /// Unknown memory name or out-of-range address.
    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError>;

    /// All signal names, sorted.
    fn signals(&self) -> Vec<String>;
}

/// The software simulator backends as selectable values — the uniform
/// construction entry point campaign runners fan jobs out over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimKind {
    /// Tree-walking interpreter ([`interp::InterpSim`], Treadle analog).
    Interp,
    /// Dense compiled evaluation ([`compiled::CompiledSim`], Verilator
    /// analog).
    Compiled,
    /// Activity-driven evaluation ([`essent::EssentSim`], ESSENT analog).
    Essent,
}

impl SimKind {
    /// Every software backend, in a stable order.
    pub const ALL: [SimKind; 3] = [SimKind::Interp, SimKind::Compiled, SimKind::Essent];

    /// Stable lower-case name (CLI/report identifier).
    pub fn name(&self) -> &'static str {
        match self {
            SimKind::Interp => "interp",
            SimKind::Compiled => "compiled",
            SimKind::Essent => "essent",
        }
    }

    /// Parse a [`SimKind::name`] back into a kind.
    pub fn parse(name: &str) -> Option<SimKind> {
        SimKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Build this backend for a lowered circuit with default options
    /// (optimizer and partitioning on, honoring the env escape hatches).
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures (elaboration errors,
    /// combinational loops).
    pub fn build(&self, circuit: &Circuit) -> Result<Box<dyn Simulator>, SimError> {
        self.build_with(circuit, &SimBuildOptions::from_env())
    }

    /// Build this backend with explicit pipeline options. The interpreter
    /// has no compiled program, so it ignores both knobs.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures (elaboration errors,
    /// combinational loops).
    pub fn build_with(
        &self,
        circuit: &Circuit,
        opts: &SimBuildOptions,
    ) -> Result<Box<dyn Simulator>, SimError> {
        Ok(match self {
            SimKind::Interp => Box::new(interp::InterpSim::new(circuit)?),
            SimKind::Compiled => {
                let o = if opts.optimize {
                    opt::OptOptions::default()
                } else {
                    opt::OptOptions::none()
                };
                Box::new(compiled::CompiledSim::new_with(circuit, &o)?)
            }
            SimKind::Essent => {
                let o = essent::EssentOptions {
                    optimize: opts.optimize,
                    partition: opts.partition,
                    ..essent::EssentOptions::default()
                };
                Box::new(essent::EssentSim::new_with(circuit, &o)?)
            }
        })
    }
}

/// Backend-agnostic pipeline knobs for [`SimKind::build_with`] — the
/// subset of per-backend options a campaign can configure uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBuildOptions {
    /// Run the micro-op program optimizer (compiled and essent backends).
    pub optimize: bool,
    /// Use partitioned activity scheduling (essent backend).
    pub partition: bool,
}

impl Default for SimBuildOptions {
    fn default() -> Self {
        SimBuildOptions {
            optimize: true,
            partition: true,
        }
    }
}

impl SimBuildOptions {
    /// Defaults, honoring `RTLCOV_SIM_NO_OPT` / `RTLCOV_SIM_NO_PARTITION`.
    pub fn from_env() -> Self {
        SimBuildOptions {
            optimize: std::env::var_os("RTLCOV_SIM_NO_OPT").is_none(),
            partition: std::env::var_os("RTLCOV_SIM_NO_PARTITION").is_none(),
        }
    }
}

//! Exhaustive small-width audit of the micro-op executor's masking.
//!
//! The dense-slot executor keeps every value zero-extended in a `u64` and
//! relies on each instruction masking its own result; sign-handling ops
//! (`Neg`, `Sext`, `ShrS`, `DshrS`) and reductions (`Xorr`) are where a
//! missed mask hides. The [`InterpSim`] tree-walker evaluates over the
//! arbitrary-precision [`Bv`] type with FIRRTL semantics and serves as
//! the oracle: for every width 1..=5 and every input value, the compiled
//! simulator (raw and optimized) must match it bit-for-bit, with results
//! padded to 16 bits so sign extension itself is observable.

use rtlcov_firrtl::parser::parse;
use rtlcov_firrtl::passes;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::interp::InterpSim;
use rtlcov_sim::opt::OptOptions;
use rtlcov_sim::Simulator;

/// Build a one-expression combinational circuit: inputs `a : UInt<w>` and
/// `b : UInt<3>`, output `out <= <expr>` (expr must be 16-bit UInt).
fn circuit(w: u32, expr: &str) -> rtlcov_firrtl::ir::Circuit {
    let src = format!(
        "
circuit W :
  module W :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<{w}>
    input b : UInt<3>
    output out : UInt<16>
    out <= {expr}
"
    );
    passes::lower(parse(&src).unwrap()).unwrap()
}

/// Run the interp oracle against raw and optimized compiled sims over all
/// `(a, b)` values at width `w`.
fn audit(w: u32, expr: &str) {
    let low = circuit(w, expr);
    let oracle = InterpSim::new(&low).unwrap();
    let raw = CompiledSim::new_with(&low, &OptOptions::none()).unwrap();
    let opt = CompiledSim::new_with(&low, &OptOptions::default()).unwrap();
    let mut sims: Vec<(&str, Box<dyn Simulator>)> = vec![
        ("interp", Box::new(oracle)),
        ("raw", Box::new(raw)),
        ("opt", Box::new(opt)),
    ];
    for a in 0..(1u64 << w) {
        for b in 0..8u64 {
            let mut vals = Vec::new();
            for (_, sim) in sims.iter_mut() {
                sim.poke("a", a);
                sim.poke("b", b);
            }
            for (name, sim) in &sims {
                vals.push((*name, sim.peek("out")));
            }
            let want = vals[0].1;
            for (name, got) in &vals[1..] {
                assert_eq!(
                    *got, want,
                    "w={w} expr=`{expr}` a={a} b={b}: {name}={got} interp={want}"
                );
            }
        }
    }
}

fn audit_widths(expr: &str) {
    for w in 1..=5 {
        audit(w, expr);
    }
}

#[test]
fn neg_masks_to_result_width() {
    // neg(UInt<w>) -> SInt<w+1>; pad sign-extends to 16 -> Sext path too
    audit_widths("asUInt(pad(neg(a), 16))");
}

#[test]
fn sext_replicates_the_sign_bit() {
    audit_widths("asUInt(pad(asSInt(a), 16))");
}

#[test]
fn cvt_zero_extends_unsigned() {
    audit_widths("asUInt(pad(cvt(a), 16))");
}

#[test]
fn shrs_fills_with_sign_bits() {
    for k in 0..6 {
        for w in 1..=5 {
            audit(w, &format!("asUInt(pad(shr(asSInt(a), {k}), 16))"));
        }
    }
}

#[test]
fn dshrs_matches_reference() {
    audit_widths("asUInt(pad(dshr(asSInt(a), b), 16))");
}

#[test]
fn dshl_masks_shifted_out_bits() {
    audit_widths("tail(pad(dshl(a, b), 32), 16)");
}

#[test]
fn xorr_reduces_exact_bits() {
    audit_widths("pad(xorr(a), 16)");
}

#[test]
fn andr_orr_reduce_exact_bits() {
    audit_widths("pad(andr(a), 16)");
    audit_widths("pad(orr(a), 16)");
}

#[test]
fn signed_compare_uses_sign() {
    audit_widths("pad(lt(asSInt(a), shr(asSInt(a), 1)), 16)");
    audit_widths("pad(gt(asSInt(a), cvt(b)), 16)");
}

#[test]
fn sub_wraps_at_result_width() {
    audit_widths("tail(pad(sub(a, pad(b, 16)), 32), 16)");
}

#[test]
fn neg_of_most_negative_value() {
    // -(SInt<w> min) does not fit in w bits; the result width w+1 must
    // hold it exactly
    audit_widths("asUInt(pad(neg(asSInt(a)), 16))");
}

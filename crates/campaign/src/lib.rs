//! # rtlcov-campaign
//!
//! A parallel, multi-backend coverage campaign runner on top of the
//! paper's simulator-independent coverage interface (§3/§5.3): because
//! every backend — interpreter, compiled, activity-driven, emulated FPGA,
//! formal BMC — reports the same [`rtlcov_core::CoverageMap`], a campaign
//! can fan (design × stimulus-shard × backend) jobs out over a worker
//! pool and fold the results into one merged map whose value is
//! bit-identical to a sequential run.
//!
//! * [`job`] — the (design, shard, backend) job axis and the backend
//!   degradation chain;
//! * [`runner`] — supervised worker pool + coordinator with panic
//!   isolation, per-job fuel deadlines, retry/quarantine/degrade policy,
//!   and saturation-aware scheduling (stop a design after `k` shards of
//!   no new coverage);
//! * [`supervisor`] — poison-tolerant work queue, in-flight job recovery,
//!   quarantine set, deterministic retry backoff;
//! * [`faults`] — seeded, reproducible fault injection (panics, errors,
//!   stalls, corrupt shard writes, worker kills, queue poisoning);
//! * [`merge`] — binary-counter merge tree and plateau detection;
//! * [`shard`] — versioned, resumable on-disk shard artifacts
//!   (JSON or compact binary) with read-back-verified writes;
//! * [`report`] — per-design metric reports over the merged coverage.

#![warn(missing_docs)]

pub mod faults;
pub mod job;
pub mod merge;
pub mod report;
pub mod runner;
pub mod shard;
pub mod supervisor;

pub use faults::{FaultKind, FaultPlan, FaultSite};
pub use job::{Backend, JobSpec};
pub use merge::{MergeTree, SaturationTracker};
pub use runner::{
    job_list, run_campaign, BackendStats, CampaignConfig, CampaignError, CampaignResult,
    CampaignStats, JobOutcome,
};
pub use shard::{Shard, ShardError, ShardFormat, ShardStore};
pub use supervisor::{Attempt, Dispatcher, InFlight, Quarantine};

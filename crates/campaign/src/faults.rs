//! Deterministic fault injection for campaign robustness testing.
//!
//! A [`FaultPlan`] names the faults a campaign run must survive:
//! explicit [`FaultSite`]s pin a fault kind to (design, shard, backend)
//! coordinates (any of which may be wildcards) with an optional firing
//! budget, and an optional seeded matcher draws faults pseudo-randomly —
//! but reproducibly — from a seed. No wall-clock randomness is involved
//! anywhere: the same plan against the same job list injects the same
//! faults, which is what lets the fault-tolerance tests compare a faulty
//! campaign bit-for-bit against a fault-free reference.
//!
//! The runner consults the plan at each injection point (job pickup, job
//! execution, shard persistence); [`ShardStore`](crate::shard::ShardStore)
//! write tampering is wired through
//! [`with_write_tamper`](crate::shard::ShardStore::with_write_tamper).

use crate::job::{Backend, JobSpec};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// The kinds of failure a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The backend panics mid-job (caught by the worker's unwind guard).
    Panic,
    /// The backend returns an error result.
    Error,
    /// The job runs away: it keeps consuming steps until its fuel budget
    /// ends it (ends as `TimedOut`, never as a hang).
    Stall,
    /// The shard artifact is corrupted on write (caught by read-back
    /// verification, surfacing as a persist failure).
    Corrupt,
    /// The worker thread itself dies outside the unwind guard — the
    /// supervisor must recover the in-flight job and respawn the worker.
    KillWorker,
    /// The worker panics while holding the job-queue mutex, poisoning it —
    /// healthy workers must keep operating on the poisoned queue.
    PoisonQueue,
}

impl FaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Panic,
        FaultKind::Error,
        FaultKind::Stall,
        FaultKind::Corrupt,
        FaultKind::KillWorker,
        FaultKind::PoisonQueue,
    ];

    /// Stable name (CLI identifier).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::Stall => "stall",
            FaultKind::Corrupt => "corrupt",
            FaultKind::KillWorker => "kill-worker",
            FaultKind::PoisonQueue => "poison-queue",
        }
    }

    /// Parse a [`FaultKind::name`] back into a kind.
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }

    fn index(&self) -> u64 {
        FaultKind::ALL.iter().position(|k| k == self).unwrap_or(0) as u64
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault pinned to job coordinates. `None` coordinates are wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// What to inject.
    pub kind: FaultKind,
    /// Design name to match (`None` = any).
    pub design: Option<String>,
    /// Shard index to match (`None` = any).
    pub shard: Option<u64>,
    /// Backend to match (`None` = any).
    pub backend: Option<Backend>,
    /// How many times the site may fire (`None` = every match). A budget
    /// of 1 models a transient fault that a retry survives; `None` models
    /// a hard fault that forces quarantine and degradation.
    pub budget: Option<u32>,
}

impl FaultSite {
    fn matches(&self, kind: FaultKind, job: &JobSpec) -> bool {
        self.kind == kind
            && self.design.as_deref().is_none_or(|d| d == job.design)
            && self.shard.is_none_or(|s| s == job.shard)
            && self.backend.is_none_or(|b| b == job.backend)
    }

    /// Parse `kind@design:shard:backend[=budget]` (with `*` wildcards),
    /// e.g. `panic@gcd:0:interp=1` or `error@queue:*:fpga`.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn parse(entry: &str) -> Result<FaultSite, String> {
        let (kind_name, rest) = entry
            .split_once('@')
            .ok_or_else(|| format!("fault site `{entry}` is missing `@`"))?;
        let kind = FaultKind::parse(kind_name)
            .ok_or_else(|| format!("unknown fault kind `{kind_name}`"))?;
        let (coords, budget) = match rest.split_once('=') {
            Some((coords, n)) => (
                coords,
                Some(
                    n.parse::<u32>()
                        .map_err(|_| format!("bad fault budget `{n}`"))?,
                ),
            ),
            None => (rest, None),
        };
        let parts: Vec<&str> = coords.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "fault site `{entry}` needs design:shard:backend coordinates"
            ));
        }
        let design = (parts[0] != "*").then(|| parts[0].to_string());
        let shard = if parts[1] == "*" {
            None
        } else {
            Some(
                parts[1]
                    .parse::<u64>()
                    .map_err(|_| format!("bad shard `{}`", parts[1]))?,
            )
        };
        let backend = if parts[2] == "*" {
            None
        } else {
            Some(
                Backend::parse(parts[2])
                    .ok_or_else(|| format!("unknown backend `{}`", parts[2]))?,
            )
        };
        Ok(FaultSite {
            kind,
            design,
            shard,
            backend,
            budget,
        })
    }

    /// Render the site back into the [`FaultSite::parse`] syntax.
    pub fn spec(&self) -> String {
        let mut s = format!(
            "{}@{}:{}:{}",
            self.kind,
            self.design.as_deref().unwrap_or("*"),
            self.shard.map_or_else(|| "*".into(), |s| s.to_string()),
            self.backend.map_or("*", |b| b.name()),
        );
        if let Some(b) = self.budget {
            s.push_str(&format!("={b}"));
        }
        s
    }
}

/// Seeded pseudo-random fault matcher: fires on `rate`% of (job, attempt,
/// kind) coordinates, decided purely by hashing — reproducible across
/// runs, worker counts, and completion orders.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeededFaults {
    seed: u64,
    rate: u8,
    kinds: Vec<FaultKind>,
}

/// A reproducible set of faults to inject into a campaign.
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: Vec<(FaultSite, AtomicU32)>,
    seeded: Option<SeededFaults>,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            sites: self
                .sites
                .iter()
                .map(|(s, fired)| (s.clone(), AtomicU32::new(fired.load(Ordering::SeqCst))))
                .collect(),
            seeded: self.seeded.clone(),
        }
    }
}

impl FaultPlan {
    /// A plan firing exactly the given sites.
    pub fn from_sites(sites: impl IntoIterator<Item = FaultSite>) -> Self {
        FaultPlan {
            sites: sites.into_iter().map(|s| (s, AtomicU32::new(0))).collect(),
            seeded: None,
        }
    }

    /// A plan drawing `kinds` faults on `rate_percent`% of (job, attempt)
    /// coordinates from `seed` — no wall-clock randomness, so two runs
    /// with the same seed inject the same faults.
    pub fn seeded(seed: u64, rate_percent: u8, kinds: Vec<FaultKind>) -> Self {
        FaultPlan {
            sites: Vec::new(),
            seeded: Some(SeededFaults {
                seed,
                rate: rate_percent.min(100),
                kinds,
            }),
        }
    }

    /// Add an explicit site to the plan.
    pub fn with_site(mut self, site: FaultSite) -> Self {
        self.sites.push((site, AtomicU32::new(0)));
        self
    }

    /// Parse a comma-separated plan: each entry is a [`FaultSite::parse`]
    /// spec or `random@SEED:RATE` (seeded panic+error faults at RATE%).
    ///
    /// # Errors
    ///
    /// A description of the malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            if let Some(rest) = entry.strip_prefix("random@") {
                let (seed, rate) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("`{entry}` needs random@SEED:RATE"))?;
                let seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad fault seed `{seed}`"))?;
                let rate = rate
                    .parse::<u8>()
                    .map_err(|_| format!("bad fault rate `{rate}`"))?;
                plan.seeded = Some(SeededFaults {
                    seed,
                    rate: rate.min(100),
                    kinds: vec![FaultKind::Panic, FaultKind::Error],
                });
            } else {
                plan = plan.with_site(FaultSite::parse(entry)?);
            }
        }
        Ok(plan)
    }

    /// Whether any fault is configured at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.seeded.is_none()
    }

    /// Decide whether `kind` fires for this (job, attempt). Explicit
    /// sites fire first (respecting their budgets — the budget counter is
    /// shared across all matching jobs); otherwise the seeded matcher
    /// decides by hash. Budget bookkeeping is atomic, so concurrent
    /// workers never over-fire a site.
    pub fn fire(&self, kind: FaultKind, job: &JobSpec, attempt: u32) -> bool {
        for (site, fired) in &self.sites {
            if !site.matches(kind, job) {
                continue;
            }
            match site.budget {
                None => return true,
                Some(budget) => {
                    let claimed = fired
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                            (n < budget).then_some(n + 1)
                        })
                        .is_ok();
                    if claimed {
                        return true;
                    }
                }
            }
        }
        if let Some(s) = &self.seeded {
            if s.kinds.contains(&kind) {
                let salt = u64::from(attempt) | (kind.index() << 32);
                return mix(s.seed, &job.id(), salt) % 100 < u64::from(s.rate);
            }
        }
        false
    }
}

/// Deterministic shard corruption: drop the trailing half of the artifact
/// and flip the leading byte, so both the JSON and the binary envelope
/// decoders reject it (truncated body, broken magic/brace).
pub fn corrupt_bytes(bytes: &mut Vec<u8>) {
    let half = bytes.len() / 2;
    bytes.truncate(half);
    match bytes.first_mut() {
        Some(b) => *b ^= 0xff,
        None => bytes.extend_from_slice(b"corrupt"),
    }
}

/// FNV-1a over `s` folded with `seed` and `salt`, finished with the
/// splitmix64 avalanche — the one hash behind every "seeded, reproducible,
/// no wall clock" decision (fault draws, retry backoff jitter).
pub(crate) fn mix(seed: u64, s: &str, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = (h ^ salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_sim::SimKind;

    fn job(design: &str, shard: u64, backend: Backend) -> JobSpec {
        JobSpec {
            design: design.into(),
            shard,
            backend,
        }
    }

    #[test]
    fn site_specs_round_trip() {
        for spec in [
            "panic@gcd:0:interp=1",
            "error@queue:*:fpga",
            "stall@*:3:*",
            "corrupt@*:*:*=2",
            "kill-worker@gcd:1:essent",
            "poison-queue@*:*:compiled=1",
        ] {
            let site = FaultSite::parse(spec).unwrap();
            assert_eq!(site.spec(), spec);
        }
        assert!(FaultSite::parse("panic@gcd:0").is_err());
        assert!(FaultSite::parse("meltdown@gcd:0:interp").is_err());
        assert!(FaultSite::parse("panic@gcd:x:interp").is_err());
    }

    #[test]
    fn budget_limits_firing_and_wildcards_match() {
        let plan = FaultPlan::parse("panic@gcd:*:interp=2").unwrap();
        let j0 = job("gcd", 0, Backend::Sim(SimKind::Interp));
        let j1 = job("gcd", 1, Backend::Sim(SimKind::Interp));
        let other = job("queue", 0, Backend::Sim(SimKind::Interp));
        assert!(plan.fire(FaultKind::Panic, &j0, 0));
        assert!(plan.fire(FaultKind::Panic, &j1, 0));
        assert!(!plan.fire(FaultKind::Panic, &j0, 1), "budget of 2 spent");
        assert!(!plan.fire(FaultKind::Error, &j0, 0), "wrong kind");
        assert!(!plan.fire(FaultKind::Panic, &other, 0), "wrong design");
    }

    #[test]
    fn unbudgeted_sites_always_fire() {
        let plan = FaultPlan::parse("error@queue:*:fpga").unwrap();
        let j = job("queue", 5, Backend::Fpga);
        for attempt in 0..10 {
            assert!(plan.fire(FaultKind::Error, &j, attempt));
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_rate_bounded() {
        let a = FaultPlan::seeded(42, 30, vec![FaultKind::Panic]);
        let b = FaultPlan::seeded(42, 30, vec![FaultKind::Panic]);
        let jobs: Vec<JobSpec> = (0..100)
            .map(|i| job("gcd", i, Backend::Sim(SimKind::Interp)))
            .collect();
        let fires_a: Vec<bool> = jobs
            .iter()
            .map(|j| a.fire(FaultKind::Panic, j, 0))
            .collect();
        let fires_b: Vec<bool> = jobs
            .iter()
            .map(|j| b.fire(FaultKind::Panic, j, 0))
            .collect();
        assert_eq!(fires_a, fires_b, "same seed, same faults");
        let hits = fires_a.iter().filter(|f| **f).count();
        assert!(hits > 5 && hits < 70, "rate ~30%, got {hits}/100");
        // different attempts re-roll, so retries are not doomed
        assert!(jobs
            .iter()
            .any(|j| a.fire(FaultKind::Panic, j, 0) != a.fire(FaultKind::Panic, j, 1)));
        // kinds outside the list never fire
        assert!(!a.fire(FaultKind::Stall, &jobs[0], 0));
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        assert!(FaultPlan::parse("random@notanumber:10").is_err());
        assert!(FaultPlan::parse("panic@a:b").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn corruption_defeats_both_codecs() {
        let mut json = br#"{"version":1,"design":"gcd"}"#.to_vec();
        corrupt_bytes(&mut json);
        assert!(String::from_utf8(json.clone())
            .map(|s| rtlcov_core::json::parse(&s).is_err())
            .unwrap_or(true));
        let mut bin = b"RSHD\x01\x00rest-of-envelope".to_vec();
        corrupt_bytes(&mut bin);
        assert!(!bin.starts_with(b"RSHD"));
        let mut empty = Vec::new();
        corrupt_bytes(&mut empty);
        assert!(!empty.is_empty(), "empty input still ends up invalid");
    }
}

//! Versioned on-disk coverage shards, so campaigns are resumable.
//!
//! Each completed job persists its map as one file named
//! `<design>--s<shard>--<backend>.covshard.<ext>` in two selectable
//! formats:
//!
//! * **JSON** (`.covshard.json`): a human-auditable envelope
//!   `{"version": 1, "design": ..., "shard": ..., "backend": ...,
//!   "counts": {...}}` using the core mini-JSON (u64-exact counts);
//! * **binary** (`.covshard.bin`): an `RSHD` header (magic + version +
//!   metadata) wrapping the core `RCOV` codec payload — compact and
//!   strict, never panicking on corrupt input.
//!
//! On resume, [`ShardStore::scan`] reloads every parseable shard and
//! reports the unreadable ones so the scheduler can re-run exactly those
//! jobs instead of trusting a corrupt artifact.

use crate::job::{Backend, JobSpec};
use rtlcov_core::codec;
use rtlcov_core::json::Json;
use rtlcov_core::CoverageMap;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Envelope magic for binary shards (distinct from the inner `RCOV`
/// payload magic).
pub const SHARD_MAGIC: [u8; 4] = *b"RSHD";
/// Envelope format version.
pub const SHARD_VERSION: u16 = 1;

/// On-disk representation for shard artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFormat {
    /// Human-auditable JSON envelope.
    Json,
    /// Compact binary envelope around the core codec.
    Binary,
}

impl ShardFormat {
    /// File extension (after `.covshard.`).
    pub fn extension(&self) -> &'static str {
        match self {
            ShardFormat::Json => "json",
            ShardFormat::Binary => "bin",
        }
    }
}

/// Why a shard file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Filesystem error (message, since `io::Error` isn't `Clone`).
    Io(String),
    /// Neither a valid JSON nor a valid binary shard envelope.
    Malformed(String),
    /// Envelope version this build does not understand.
    UnsupportedVersion(u64),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard io error: {e}"),
            ShardError::Malformed(e) => write!(f, "malformed shard: {e}"),
            ShardError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported shard version {v} (this build reads {SHARD_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// A decoded shard: which job produced it and what it observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// The producing job.
    pub job: JobSpec,
    /// The coverage it observed.
    pub map: CoverageMap,
}

/// A fault-injection hook mutating encoded shard bytes just before they
/// reach the filesystem (models a torn or bit-rotted write).
pub type WriteTamper = Arc<dyn Fn(&JobSpec, &mut Vec<u8>) + Send + Sync>;

/// A directory of shard artifacts.
#[derive(Clone)]
pub struct ShardStore {
    dir: PathBuf,
    format: ShardFormat,
    tamper: Option<WriteTamper>,
}

impl fmt::Debug for ShardStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardStore")
            .field("dir", &self.dir)
            .field("format", &self.format)
            .field("tamper", &self.tamper.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl ShardStore {
    /// A store writing `format` shards under `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>, format: ShardFormat) -> Self {
        ShardStore {
            dir: dir.into(),
            format,
            tamper: None,
        }
    }

    /// Install a write-tamper hook (fault injection: the hook corrupts
    /// the encoded bytes of selected shards before they hit disk).
    /// [`ShardStore::save_verified`] is what keeps such corruption from
    /// ever entering a merge or a resume.
    pub fn with_write_tamper(mut self, tamper: WriteTamper) -> Self {
        self.tamper = Some(tamper);
        self
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a job's shard lands in.
    pub fn path_for(&self, job: &JobSpec) -> PathBuf {
        self.dir
            .join(format!("{}.covshard.{}", job.id(), self.format.extension()))
    }

    /// Persist one shard atomically (write to a temp name, then rename).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn save(&self, job: &JobSpec, map: &CoverageMap) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(job);
        let mut bytes = match self.format {
            ShardFormat::Json => encode_json(job, map).into_bytes(),
            ShardFormat::Binary => encode_binary(job, map),
        };
        if let Some(tamper) = &self.tamper {
            tamper(job, &mut bytes);
        }
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Persist one shard and read it straight back, proving the bytes on
    /// disk decode to exactly the map in memory. On any mismatch the file
    /// is deleted and an error returned, so a corrupted write can never
    /// leak into a later merge or resume — the job is simply re-run.
    ///
    /// # Errors
    ///
    /// Filesystem failures, plus [`ShardError::Malformed`] when the
    /// read-back does not reproduce the input.
    pub fn save_verified(&self, job: &JobSpec, map: &CoverageMap) -> Result<PathBuf, ShardError> {
        let path = self
            .save(job, map)
            .map_err(|e| ShardError::Io(e.to_string()))?;
        let verdict = match Self::load(&path) {
            Ok(shard) if shard.job == *job && shard.map == *map => return Ok(path),
            Ok(_) => ShardError::Malformed("read-back does not match the map in memory".into()),
            Err(e) => e,
        };
        let _ = fs::remove_file(&path);
        Err(verdict)
    }

    /// Load one shard file (format inferred from the contents, not the
    /// name, so renamed files still resolve).
    ///
    /// # Errors
    ///
    /// [`ShardError`] on unreadable, corrupt, or future-versioned files.
    pub fn load(path: &Path) -> Result<Shard, ShardError> {
        let bytes = fs::read(path).map_err(|e| ShardError::Io(e.to_string()))?;
        if bytes.starts_with(&SHARD_MAGIC) {
            decode_binary(&bytes)
        } else {
            let text = String::from_utf8(bytes)
                .map_err(|_| ShardError::Malformed("not UTF-8 and not RSHD".into()))?;
            decode_json(&text)
        }
    }

    /// Scan the directory for previously persisted shards. Returns the
    /// loadable ones plus `(path, error)` for each rejected file, so the
    /// campaign re-runs exactly the jobs whose artifacts are unusable.
    /// A missing directory is an empty campaign, not an error.
    pub fn scan(&self) -> (Vec<Shard>, Vec<(PathBuf, ShardError)>) {
        let mut shards = Vec::new();
        let mut rejected = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return (shards, rejected),
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.contains(".covshard.") || name.ends_with(".tmp") {
                continue;
            }
            match Self::load(&path) {
                Ok(shard) => shards.push(shard),
                Err(e) => rejected.push((path, e)),
            }
        }
        // deterministic order regardless of directory iteration order
        shards.sort_by_key(|s| s.job.id());
        rejected.sort_by(|a, b| a.0.cmp(&b.0));
        (shards, rejected)
    }
}

fn encode_json(job: &JobSpec, map: &CoverageMap) -> String {
    let mut counts = BTreeMap::new();
    for (name, count) in map.iter() {
        counts.insert(name.to_string(), Json::UInt(count));
    }
    let mut envelope = BTreeMap::new();
    envelope.insert("version".to_string(), Json::UInt(u64::from(SHARD_VERSION)));
    envelope.insert("design".to_string(), Json::Str(job.design.clone()));
    envelope.insert("shard".to_string(), Json::UInt(job.shard));
    envelope.insert(
        "backend".to_string(),
        Json::Str(job.backend.name().to_string()),
    );
    envelope.insert("counts".to_string(), Json::Object(counts));
    Json::Object(envelope).to_string()
}

fn decode_json(text: &str) -> Result<Shard, ShardError> {
    let value =
        rtlcov_core::json::parse(text).map_err(|e| ShardError::Malformed(format!("json: {e}")))?;
    let version = value
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Malformed("missing `version`".into()))?;
    if version != u64::from(SHARD_VERSION) {
        return Err(ShardError::UnsupportedVersion(version));
    }
    let design = value
        .get("design")
        .and_then(Json::as_str)
        .ok_or_else(|| ShardError::Malformed("missing `design`".into()))?;
    let shard = value
        .get("shard")
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Malformed("missing `shard`".into()))?;
    let backend_name = value
        .get("backend")
        .and_then(Json::as_str)
        .ok_or_else(|| ShardError::Malformed("missing `backend`".into()))?;
    let backend = Backend::parse(backend_name)
        .ok_or_else(|| ShardError::Malformed(format!("unknown backend `{backend_name}`")))?;
    let counts = value
        .get("counts")
        .and_then(Json::as_object)
        .ok_or_else(|| ShardError::Malformed("missing `counts`".into()))?;
    let mut map = CoverageMap::new();
    for (name, count) in counts {
        let count = count
            .as_u64()
            .ok_or_else(|| ShardError::Malformed(format!("count for `{name}` not a u64")))?;
        map.declare(name.clone());
        map.record(name.clone(), count);
    }
    Ok(Shard {
        job: JobSpec {
            design: design.to_string(),
            shard,
            backend,
        },
        map,
    })
}

fn encode_binary(job: &JobSpec, map: &CoverageMap) -> Vec<u8> {
    let payload = codec::encode(map);
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    let design = job.design.as_bytes();
    out.extend_from_slice(
        &u32::try_from(design.len())
            .expect("design name fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(design);
    out.extend_from_slice(&job.shard.to_le_bytes());
    let backend = job.backend.name().as_bytes();
    out.extend_from_slice(
        &u32::try_from(backend.len())
            .expect("backend name fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(backend);
    out.extend_from_slice(&payload);
    out
}

fn decode_binary(bytes: &[u8]) -> Result<Shard, ShardError> {
    let mut offset = 0usize;
    let take = |offset: &mut usize, n: usize| -> Result<&[u8], ShardError> {
        let end = offset
            .checked_add(n)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| ShardError::Malformed(format!("truncated at offset {offset}")))?;
        let slice = &bytes[*offset..end];
        *offset = end;
        Ok(slice)
    };
    let magic = take(&mut offset, 4)?;
    if magic != SHARD_MAGIC {
        return Err(ShardError::Malformed("bad envelope magic".into()));
    }
    let version = u16::from_le_bytes(take(&mut offset, 2)?.try_into().expect("2 bytes"));
    if version != SHARD_VERSION {
        return Err(ShardError::UnsupportedVersion(u64::from(version)));
    }
    let design_len =
        u32::from_le_bytes(take(&mut offset, 4)?.try_into().expect("4 bytes")) as usize;
    let design = String::from_utf8(take(&mut offset, design_len)?.to_vec())
        .map_err(|_| ShardError::Malformed("design name not UTF-8".into()))?;
    let shard = u64::from_le_bytes(take(&mut offset, 8)?.try_into().expect("8 bytes"));
    let backend_len =
        u32::from_le_bytes(take(&mut offset, 4)?.try_into().expect("4 bytes")) as usize;
    let backend_name = String::from_utf8(take(&mut offset, backend_len)?.to_vec())
        .map_err(|_| ShardError::Malformed("backend name not UTF-8".into()))?;
    let backend = Backend::parse(&backend_name)
        .ok_or_else(|| ShardError::Malformed(format!("unknown backend `{backend_name}`")))?;
    let map = codec::decode(&bytes[offset..])
        .map_err(|e| ShardError::Malformed(format!("payload: {e}")))?;
    Ok(Shard {
        job: JobSpec {
            design,
            shard,
            backend,
        },
        map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_sim::SimKind;

    fn sample_job() -> JobSpec {
        JobSpec {
            design: "gcd".into(),
            shard: 3,
            backend: Backend::Sim(SimKind::Interp),
        }
    }

    fn sample_map() -> CoverageMap {
        let mut m = CoverageMap::new();
        m.record("top.a", 17);
        m.record("top.b", u64::MAX);
        m.declare("top.unhit");
        m
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlcov-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn json_round_trip() {
        let dir = tmp_dir("json");
        let store = ShardStore::new(&dir, ShardFormat::Json);
        let path = store.save(&sample_job(), &sample_map()).unwrap();
        let shard = ShardStore::load(&path).unwrap();
        assert_eq!(shard.job, sample_job());
        assert_eq!(shard.map, sample_map());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_round_trip_and_equivalence_with_json() {
        let dir = tmp_dir("bin");
        let bin = ShardStore::new(&dir, ShardFormat::Binary);
        let json = ShardStore::new(&dir, ShardFormat::Json);
        let pb = bin.save(&sample_job(), &sample_map()).unwrap();
        let pj = json.save(&sample_job(), &sample_map()).unwrap();
        assert_ne!(pb, pj);
        assert_eq!(
            ShardStore::load(&pb).unwrap(),
            ShardStore::load(&pj).unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected_not_misread() {
        let dir = tmp_dir("ver");
        let store = ShardStore::new(&dir, ShardFormat::Binary);
        let path = store.save(&sample_job(), &sample_map()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            ShardStore::load(&path),
            Err(ShardError::UnsupportedVersion(99))
        );
        // json too
        let jstore = ShardStore::new(&dir, ShardFormat::Json);
        let jpath = jstore.save(&sample_job(), &sample_map()).unwrap();
        let text = fs::read_to_string(&jpath)
            .unwrap()
            .replace("\"version\":1", "\"version\":99");
        fs::write(&jpath, text).unwrap();
        assert_eq!(
            ShardStore::load(&jpath),
            Err(ShardError::UnsupportedVersion(99))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_of_a_binary_shard_errors_without_panicking() {
        let bytes = encode_binary(&sample_job(), &sample_map());
        for len in 0..bytes.len() {
            let result = decode_binary(&bytes[..len]);
            assert!(result.is_err(), "prefix of {len} bytes decoded");
        }
        assert!(decode_binary(&bytes).is_ok());
    }

    #[test]
    fn scan_recovers_good_shards_and_reports_bad_ones() {
        let dir = tmp_dir("scan");
        let store = ShardStore::new(&dir, ShardFormat::Binary);
        let a = JobSpec {
            design: "gcd".into(),
            shard: 0,
            backend: Backend::Fpga,
        };
        let b = JobSpec {
            design: "queue".into(),
            shard: 1,
            backend: Backend::Formal,
        };
        store.save(&a, &sample_map()).unwrap();
        store.save(&b, &sample_map()).unwrap();
        fs::write(dir.join("junk.covshard.bin"), b"RSHDgarbage").unwrap();
        fs::write(dir.join("unrelated.txt"), b"ignored").unwrap();
        let (shards, rejected) = store.scan();
        assert_eq!(
            shards.iter().map(|s| s.job.clone()).collect::<Vec<_>>(),
            vec![a, b],
            "sorted by job id"
        );
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].0.ends_with("junk.covshard.bin"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verified_save_deletes_tampered_shards() {
        let dir = tmp_dir("tamper");
        for format in [ShardFormat::Json, ShardFormat::Binary] {
            let store = ShardStore::new(&dir, format).with_write_tamper(Arc::new(
                |_job: &JobSpec, bytes: &mut Vec<u8>| crate::faults::corrupt_bytes(bytes),
            ));
            let err = store.save_verified(&sample_job(), &sample_map());
            assert!(err.is_err(), "{format:?}: corruption must be detected");
            assert!(
                !store.path_for(&sample_job()).exists(),
                "{format:?}: corrupt artifact must not survive on disk"
            );
            // the untampered store verifies cleanly
            let clean = ShardStore::new(&dir, format);
            let path = clean.save_verified(&sample_job(), &sample_map()).unwrap();
            assert_eq!(ShardStore::load(&path).unwrap().map, sample_map());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_scans_empty() {
        let store = ShardStore::new("/nonexistent/rtlcov-shards", ShardFormat::Json);
        let (shards, rejected) = store.scan();
        assert!(shards.is_empty());
        assert!(rejected.is_empty());
    }
}

//! Worker supervision primitives: the poison-tolerant work queue, the
//! in-flight job table that lets a crashed worker's job be recovered and
//! retried, the quarantine set behind graceful degradation, and the
//! deterministic retry backoff.
//!
//! The runner composes these inside `std::thread::scope`: workers pull
//! [`Attempt`]s from the [`Dispatcher`], a supervisor thread polls worker
//! handles and respawns any that die (bounded by a respawn budget), and
//! the coordinator pushes retries/degradations back into the queue. Every
//! lock here is acquired through [`lock_unpoisoned`], so a worker that
//! panics while holding a mutex (deliberately injectable via the
//! `poison-queue` fault) degrades to a recovered job and a respawned
//! thread instead of a campaign-wide abort: the plain data behind these
//! mutexes (queues, slot tables, sets) is valid at every intermediate
//! state, so the poison flag carries no integrity information we need.

use crate::faults;
use crate::job::{Backend, JobSpec};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock a mutex, shrugging off poison: a panicking holder may leave the
/// guard behind, but never a torn value (see module docs).
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One scheduled execution of a job: which backend actually runs it
/// (after degradation) and which retry this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// The job as originally scheduled (its `backend` is the requested one).
    pub job: JobSpec,
    /// The backend this attempt runs on — differs from `job.backend` once
    /// the pair has been quarantined and the job degraded down the chain.
    pub run_on: Backend,
    /// 0 for the first try, incremented per retry on the same backend.
    pub attempt: u32,
}

impl Attempt {
    /// The first attempt of a job on its requested backend.
    pub fn first(job: JobSpec) -> Self {
        let run_on = job.backend;
        Attempt {
            job,
            run_on,
            attempt: 0,
        }
    }
}

/// Poison-tolerant blocking work queue feeding the worker pool.
#[derive(Debug, Default)]
pub struct Dispatcher {
    queue: Mutex<VecDeque<Attempt>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl Dispatcher {
    /// A dispatcher pre-loaded with the initial schedule.
    pub fn new(initial: impl IntoIterator<Item = Attempt>) -> Self {
        Dispatcher {
            queue: Mutex::new(initial.into_iter().collect()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Enqueue an attempt (retry, degradation, or recovered in-flight job)
    /// and wake one worker.
    pub fn push(&self, attempt: Attempt) {
        lock_unpoisoned(&self.queue).push_back(attempt);
        self.ready.notify_one();
    }

    /// Block until an attempt is available or the dispatcher shuts down.
    /// Returns `None` exactly when workers should exit.
    pub fn next(&self) -> Option<Attempt> {
        let mut queue = lock_unpoisoned(&self.queue);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(attempt) = queue.pop_front() {
                return Some(attempt);
            }
            queue = self
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Remove and return everything still queued (used by the coordinator
    /// to account for jobs that can no longer run).
    pub fn drain(&self) -> Vec<Attempt> {
        lock_unpoisoned(&self.queue).drain(..).collect()
    }

    /// Stop the pool: all blocked and future [`Dispatcher::next`] calls
    /// return `None`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Whether [`Dispatcher::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Fault-injection hook: panic *while holding the queue mutex*,
    /// poisoning it. Healthy workers must keep draining the queue anyway —
    /// this is what the poison-tolerance guarantee is tested against.
    ///
    /// # Panics
    ///
    /// Always (that is the fault).
    pub fn poison(&self) -> ! {
        let _guard = self.queue.lock();
        panic!("injected fault: worker died holding the job-queue lock");
    }
}

/// The job each worker slot is currently executing, so the supervisor can
/// recover (and requeue) the job a crashed worker took down with it.
#[derive(Debug)]
pub struct InFlight {
    slots: Mutex<Vec<Option<Attempt>>>,
}

impl InFlight {
    /// A table with one empty slot per worker.
    pub fn new(workers: usize) -> Self {
        InFlight {
            slots: Mutex::new(vec![None; workers]),
        }
    }

    /// Record that `slot` is now executing `attempt`.
    pub fn begin(&self, slot: usize, attempt: &Attempt) {
        lock_unpoisoned(&self.slots)[slot] = Some(attempt.clone());
    }

    /// Record that `slot` finished its attempt (event already sent).
    pub fn finish(&self, slot: usize) {
        lock_unpoisoned(&self.slots)[slot] = None;
    }

    /// Take whatever `slot` was executing when its worker died.
    pub fn take(&self, slot: usize) -> Option<Attempt> {
        lock_unpoisoned(&self.slots)[slot].take()
    }
}

/// The set of (design, backend) pairs that exhausted their retry budget.
/// Workers route around quarantined pairs by walking the fallback chain.
#[derive(Debug, Default)]
pub struct Quarantine {
    pairs: Mutex<BTreeSet<(String, Backend)>>,
}

impl Quarantine {
    /// Quarantine a pair. Returns `true` if it was newly added.
    pub fn add(&self, design: &str, backend: Backend) -> bool {
        lock_unpoisoned(&self.pairs).insert((design.to_string(), backend))
    }

    /// Whether the pair is quarantined.
    pub fn contains(&self, design: &str, backend: Backend) -> bool {
        lock_unpoisoned(&self.pairs).contains(&(design.to_string(), backend))
    }

    /// The first non-quarantined backend at or below `requested` in the
    /// fallback chain, or `None` if the whole chain is quarantined.
    pub fn resolve(&self, design: &str, requested: Backend) -> Option<Backend> {
        let mut backend = requested;
        loop {
            if !self.contains(design, backend) {
                return Some(backend);
            }
            backend = backend.fallback()?;
        }
    }

    /// All quarantined pairs, in stable order.
    pub fn pairs(&self) -> Vec<(String, Backend)> {
        lock_unpoisoned(&self.pairs).iter().cloned().collect()
    }
}

/// How many times the supervisor may replace a dead worker before the
/// pool is declared lost.
#[derive(Debug, Clone, Copy)]
pub struct RespawnBudget {
    left: u32,
    spent: u32,
}

impl RespawnBudget {
    /// A budget of `max` respawns.
    pub fn new(max: u32) -> Self {
        RespawnBudget {
            left: max,
            spent: 0,
        }
    }

    /// Claim one respawn; `false` when the budget is exhausted.
    pub fn claim(&mut self) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.spent += 1;
        true
    }

    /// Respawns performed so far.
    pub fn spent(&self) -> u32 {
        self.spent
    }
}

/// Deterministic backoff before retry `attempt` of `job`: exponential in
/// the attempt number with seeded jitter (no wall-clock randomness), and
/// capped low enough to keep tests fast. Attempt 0 never waits.
pub fn retry_backoff(seed: u64, job: &JobSpec, attempt: u32) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let base = 1u64 << (attempt.min(5) - 1); // 1, 2, 4, 8, 16 ms
    let jitter = faults::mix(seed, &job.id(), u64::from(attempt)) % 3;
    Duration::from_millis(base + jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_sim::SimKind;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn job(design: &str, shard: u64, backend: Backend) -> JobSpec {
        JobSpec {
            design: design.into(),
            shard,
            backend,
        }
    }

    #[test]
    fn dispatcher_survives_a_poisoned_queue() {
        let d = Dispatcher::new([Attempt::first(job("gcd", 0, Backend::Fpga))]);
        assert!(catch_unwind(AssertUnwindSafe(|| d.poison())).is_err());
        // the mutex is now poisoned, but the queue still works
        let got = d.next().expect("queued attempt survives poison");
        assert_eq!(got.job.design, "gcd");
        d.push(Attempt::first(job("queue", 1, Backend::Fpga)));
        assert_eq!(d.drain().len(), 1);
        d.shutdown();
        assert!(d.next().is_none());
    }

    #[test]
    fn next_blocks_until_push_or_shutdown() {
        let d = std::sync::Arc::new(Dispatcher::new([]));
        let d2 = std::sync::Arc::clone(&d);
        let waiter = std::thread::spawn(move || d2.next());
        std::thread::sleep(Duration::from_millis(5));
        d.push(Attempt::first(job("gcd", 3, Backend::Formal)));
        assert_eq!(waiter.join().unwrap().unwrap().job.shard, 3);
    }

    #[test]
    fn in_flight_recovers_the_crashed_job() {
        let table = InFlight::new(2);
        let a = Attempt::first(job("serv", 1, Backend::Fpga));
        table.begin(1, &a);
        assert_eq!(table.take(1), Some(a));
        assert_eq!(table.take(1), None, "recovered exactly once");
        table.begin(0, &Attempt::first(job("gcd", 0, Backend::Fpga)));
        table.finish(0);
        assert_eq!(table.take(0), None, "finished jobs are not recovered");
    }

    #[test]
    fn quarantine_walks_the_fallback_chain() {
        let q = Quarantine::default();
        let interp = Backend::Sim(SimKind::Interp);
        let compiled = Backend::Sim(SimKind::Compiled);
        assert_eq!(q.resolve("gcd", Backend::Fpga), Some(Backend::Fpga));
        assert!(q.add("gcd", Backend::Fpga));
        assert!(!q.add("gcd", Backend::Fpga), "already present");
        assert_eq!(q.resolve("gcd", Backend::Fpga), Some(compiled));
        q.add("gcd", compiled);
        assert_eq!(q.resolve("gcd", Backend::Fpga), Some(interp));
        q.add("gcd", interp);
        assert_eq!(q.resolve("gcd", Backend::Fpga), None, "chain exhausted");
        // other designs are unaffected
        assert_eq!(q.resolve("queue", Backend::Fpga), Some(Backend::Fpga));
        assert_eq!(q.pairs().len(), 3);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let j = job("gcd", 0, Backend::Fpga);
        assert_eq!(retry_backoff(7, &j, 0), Duration::ZERO);
        for attempt in 1..10 {
            let a = retry_backoff(7, &j, attempt);
            assert_eq!(a, retry_backoff(7, &j, attempt), "seeded, reproducible");
            assert!(a >= Duration::from_millis(1));
            assert!(a <= Duration::from_millis(16 + 2));
        }
        assert!(retry_backoff(7, &j, 5) > retry_backoff(7, &j, 1));
    }

    #[test]
    fn respawn_budget_is_bounded() {
        let mut b = RespawnBudget::new(2);
        assert!(b.claim());
        assert!(b.claim());
        assert!(!b.claim());
        assert_eq!(b.spent(), 2);
    }
}

//! Campaign job descriptions: which design, which stimulus shard, which
//! backend.

use rtlcov_sim::SimKind;
use std::fmt;

/// A coverage-producing backend a campaign can schedule jobs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// One of the software simulators.
    Sim(SimKind),
    /// The emulated FPGA flow (scan-chain transform + host).
    Fpga,
    /// Bounded model checking (stimulus-independent: scheduled once per
    /// design, on shard 0 only).
    Formal,
}

impl Backend {
    /// Every backend, in a stable order.
    pub const ALL: [Backend; 5] = [
        Backend::Sim(SimKind::Interp),
        Backend::Sim(SimKind::Compiled),
        Backend::Sim(SimKind::Essent),
        Backend::Fpga,
        Backend::Formal,
    ];

    /// Stable lower-case name (CLI/shard-file identifier).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim(kind) => kind.name(),
            Backend::Fpga => "fpga",
            Backend::Formal => "formal",
        }
    }

    /// Parse a [`Backend::name`] back into a backend.
    pub fn parse(name: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Whether the backend consumes stimulus shards: formal explores the
    /// whole input space symbolically, so extra shards add nothing.
    pub fn is_sharded(&self) -> bool {
        !matches!(self, Backend::Formal)
    }

    /// The next backend down the degradation chain when this one is
    /// quarantined for a design: Fpga → Compiled → Interp, Essent →
    /// Interp. The interpreter is the chain's floor (fewest moving
    /// parts), and formal has no replacement — no simulator reproduces
    /// a symbolic result.
    pub fn fallback(&self) -> Option<Backend> {
        match self {
            Backend::Fpga => Some(Backend::Sim(SimKind::Compiled)),
            Backend::Sim(SimKind::Compiled) | Backend::Sim(SimKind::Essent) => {
                Some(Backend::Sim(SimKind::Interp))
            }
            Backend::Sim(SimKind::Interp) | Backend::Formal => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One schedulable unit of campaign work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Design name (see `rtlcov_designs::workloads::campaign_design_names`).
    pub design: String,
    /// Stimulus shard index (selects the workload seed).
    pub shard: u64,
    /// Backend to run on.
    pub backend: Backend,
}

impl JobSpec {
    /// Stable identifier, also used as the shard-file stem.
    pub fn id(&self) -> String {
        format!("{}--s{}--{}", self.design, self.shard, self.backend.name())
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("vcs"), None);
    }

    #[test]
    fn fallback_chain_terminates_at_the_interpreter() {
        use rtlcov_sim::SimKind;
        for backend in Backend::ALL {
            // every chain is finite and ends at a backend with no fallback
            let mut b = backend;
            let mut hops = 0;
            while let Some(next) = b.fallback() {
                b = next;
                hops += 1;
                assert!(hops <= Backend::ALL.len(), "cycle in fallback chain");
            }
            assert!(matches!(b, Backend::Sim(SimKind::Interp) | Backend::Formal));
        }
        assert_eq!(
            Backend::Fpga.fallback(),
            Some(Backend::Sim(SimKind::Compiled))
        );
        assert_eq!(
            Backend::Formal.fallback(),
            None,
            "no simulator reproduces a symbolic result"
        );
    }

    #[test]
    fn job_ids_are_unique_per_axis() {
        let a = JobSpec {
            design: "gcd".into(),
            shard: 0,
            backend: Backend::Fpga,
        };
        let b = JobSpec {
            design: "gcd".into(),
            shard: 1,
            backend: Backend::Fpga,
        };
        let c = JobSpec {
            design: "queue".into(),
            shard: 0,
            backend: Backend::Fpga,
        };
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a.id(), "gcd--s0--fpga");
    }
}

//! The campaign scheduler: fan (design × shard × backend) jobs out over a
//! supervised worker pool, stream per-shard coverage back to a
//! coordinator, and survive backend faults without aborting the campaign.
//!
//! Topology:
//!
//! ```text
//!   Dispatcher ──▶ worker 0 ─┐
//!   (poison-tolerant    ...  ├─ mpsc ─▶ coordinator: MergeTree per design
//!    Condvar queue) worker N ─┘   ▲      SaturationTracker per design
//!        ▲             ▲          │      ShardStore (read-back verified)
//!        │       supervisor ──────┘      retry / quarantine / degrade
//!        └────── (respawns dead workers, recovers in-flight jobs)
//! ```
//!
//! Workers instrument nothing themselves: each design is instrumented
//! once up front and shared immutably, so a campaign pays the compiler
//! pipeline once per design, not once per job. The coordinator is the
//! only writer of merged state and shard files; workers only simulate.
//!
//! Fault tolerance, in layers:
//!
//! * **Panic isolation** — every job runs under `catch_unwind`; a
//!   panicking backend yields [`JobOutcome::Panicked`] (after retries),
//!   never a campaign abort. Workers that die outside the guard (or while
//!   holding the queue lock, poisoning it) are detected by a supervisor
//!   thread that recovers the in-flight job and respawns the worker,
//!   bounded by a respawn budget.
//! * **Deadlines** — [`CampaignConfig::job_fuel`] bounds each job (clock
//!   steps for simulators and FPGA, SAT conflicts for formal); a job that
//!   runs dry ends as [`JobOutcome::TimedOut`] with its partial coverage
//!   still merged (partial shards are *not* persisted, so a resume
//!   re-runs them).
//! * **Retry & degradation** — failed attempts retry on the same backend
//!   up to [`CampaignConfig::max_retries`] times with deterministic
//!   seeded backoff; once the budget is spent the (design, backend) pair
//!   is quarantined and the job reruns down the fallback chain
//!   ([`Backend::fallback`]: Fpga → Compiled → Interp), ending as
//!   [`JobOutcome::Degraded`]. Because all backends produce bit-identical
//!   maps for the same workload, degradation trades speed, not results.
//!
//! Determinism: `CoverageMap::merge` is a saturating sum, associative and
//! commutative, so with plateau cancellation disabled the merged map is
//! bit-identical for any worker count and any completion order — and,
//! because degraded backends reproduce the same per-job maps, for any
//! injected fault load that still lets every job complete somewhere.
//! Plateau cancellation (`plateau > 0`) deliberately trades that for
//! wall-clock: after `plateau` consecutive shards of a design with no
//! newly hit cover point, the design's remaining jobs are cancelled.

use crate::faults::{FaultKind, FaultPlan};
use crate::job::{Backend, JobSpec};
use crate::merge::{MergeTree, SaturationTracker};
use crate::shard::{ShardFormat, ShardStore};
use crate::supervisor::{retry_backoff, Attempt, Dispatcher, InFlight, Quarantine, RespawnBudget};
use rtlcov_core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov_core::CoverageMap;
use rtlcov_db::{CoverageDb, RunKey};
use rtlcov_designs::workloads::campaign_workload;
use rtlcov_formal::bmc::{self, BmcOptions};
use rtlcov_fpga::FpgaBackend;
use rtlcov_sim::elaborate::{elaborate, FlatCircuit};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Designs to cover (names from
    /// `rtlcov_designs::workloads::campaign_design_names`).
    pub designs: Vec<String>,
    /// Backends to schedule each shard on.
    pub backends: Vec<Backend>,
    /// Metrics to instrument.
    pub metrics: Metrics,
    /// Stimulus shards per design (formal runs shard 0 only).
    pub shards: u64,
    /// Per-shard stimulus scale factor (1 = smoke-test scale).
    pub scale: usize,
    /// Worker threads.
    pub workers: usize,
    /// Saturation threshold: cancel a design's remaining jobs after this
    /// many consecutive shards with no new cover points. 0 disables.
    pub plateau: usize,
    /// Persist shards here (and resume from them). `None` keeps the
    /// campaign in memory only.
    pub shard_dir: Option<PathBuf>,
    /// Also stream every completed (non-partial) shard into the coverage
    /// database at this directory, keyed `(design, s<shard>, backend,
    /// db_label)`. Resumed shards are re-ingested idempotently, so a
    /// resumed campaign converges to the same database state.
    pub db_dir: Option<PathBuf>,
    /// The `label` component of the database run key.
    pub db_label: String,
    /// On-disk shard format.
    pub format: ShardFormat,
    /// Bound for formal jobs.
    pub bmc_steps: usize,
    /// Retries per (job, backend) before the pair is quarantined and the
    /// job degrades down the fallback chain.
    pub max_retries: u32,
    /// Per-job deadline: clock steps for simulators and FPGA, cumulative
    /// SAT conflicts for formal. `None` leaves jobs unbounded.
    pub job_fuel: Option<u64>,
    /// Faults to inject (robustness testing). `None` injects nothing.
    pub faults: Option<Arc<FaultPlan>>,
    /// Seed for the deterministic retry backoff jitter.
    pub backoff_seed: u64,
    /// Software-simulator pipeline knobs (optimizer, partitioned
    /// scheduling) applied to every `Backend::Sim` job.
    pub sim_options: rtlcov_sim::SimBuildOptions,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            designs: vec!["gcd".into(), "queue".into()],
            backends: Backend::ALL.to_vec(),
            metrics: Metrics::all(),
            shards: 2,
            scale: 1,
            workers: 4,
            plateau: 0,
            shard_dir: None,
            db_dir: None,
            db_label: "campaign".into(),
            format: ShardFormat::Binary,
            bmc_steps: 10,
            max_retries: 1,
            job_fuel: None,
            faults: None,
            backoff_seed: 0x72746c63,
            sim_options: rtlcov_sim::SimBuildOptions::default(),
        }
    }
}

/// Why the campaign could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError(pub String);

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign error: {}", self.0)
    }
}

impl std::error::Error for CampaignError {}

/// How one scheduled job ended. `Completed`, `Resumed`, `Cancelled`, and
/// `Degraded` are healthy; `TimedOut`, `Failed`, and `Panicked` make the
/// campaign unhealthy ([`CampaignResult::healthy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran and merged on the requested backend.
    Completed,
    /// Loaded from a previously persisted shard instead of running.
    Resumed,
    /// Skipped because its design saturated first.
    Cancelled,
    /// Completed, but on a fallback backend after the requested
    /// (design, backend) pair was quarantined.
    Degraded {
        /// The backend originally requested.
        from: Backend,
        /// The backend that actually produced the map.
        to: Backend,
    },
    /// Ran out of fuel; its partial coverage was merged but not persisted.
    TimedOut,
    /// The backend failed on every retry and no fallback remained.
    Failed(String),
    /// The backend panicked on every retry and no fallback remained
    /// (message is the recovered panic payload).
    Panicked(String),
}

/// Per-backend fault-handling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Failed attempts (errors, panics, persist failures).
    pub failures: u64,
    /// The subset of failures that were panics.
    pub panics: u64,
    /// Jobs that ran out of fuel on this backend.
    pub timeouts: u64,
    /// Attempts requeued for retry on this backend.
    pub retries: u64,
    /// Jobs this backend handed down the fallback chain.
    pub degraded_from: u64,
    /// Jobs this backend absorbed from a quarantined backend.
    pub degraded_to: u64,
}

impl BackendStats {
    /// Whether every counter is zero (nothing to report).
    pub fn is_quiet(&self) -> bool {
        *self == BackendStats::default()
    }
}

/// Campaign-wide fault-handling statistics.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Counters keyed by [`Backend::name`].
    pub per_backend: BTreeMap<String, BackendStats>,
    /// (design, backend) pairs quarantined during the run.
    pub quarantined: Vec<(String, Backend)>,
    /// Worker threads the supervisor replaced after a crash.
    pub respawned_workers: u32,
}

impl CampaignStats {
    fn backend_mut(&mut self, backend: Backend) -> &mut BackendStats {
        self.per_backend
            .entry(backend.name().to_string())
            .or_default()
    }
}

/// Everything a finished campaign knows.
#[derive(Debug)]
pub struct CampaignResult {
    /// Global merged map; keys are `{design}::{cover}` so identically
    /// named cover points in different designs stay distinct.
    pub merged: CoverageMap,
    /// Per-design merged maps with the designs' own cover names.
    pub per_design: BTreeMap<String, CoverageMap>,
    /// Instrumented circuits + pass metadata, for report rendering.
    pub instrumented: BTreeMap<String, Instrumented>,
    /// Outcome of every scheduled job, in job-id order.
    pub outcomes: Vec<(JobSpec, JobOutcome)>,
    /// Fault-handling counters (retries, panics, degradations, respawns).
    pub stats: CampaignStats,
}

impl CampaignResult {
    fn count(&self, pred: impl Fn(&JobOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|(_, o)| pred(o)).count()
    }

    /// Jobs that ran to completion in this invocation.
    pub fn completed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Completed))
    }

    /// Jobs satisfied by previously persisted shards.
    pub fn resumed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Resumed))
    }

    /// Jobs cancelled by saturation.
    pub fn cancelled(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Cancelled))
    }

    /// Jobs completed on a fallback backend.
    pub fn degraded(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Degraded { .. }))
    }

    /// Jobs that ran out of fuel.
    pub fn timed_out(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::TimedOut))
    }

    /// Jobs that failed terminally.
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Failed(_)))
    }

    /// Jobs that panicked terminally.
    pub fn panicked(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Panicked(_)))
    }

    /// Whether every job ended in a coverage-producing outcome. Degraded
    /// and cancelled jobs are healthy; timed-out, failed, and panicked
    /// jobs are not.
    pub fn healthy(&self) -> bool {
        self.failed() + self.panicked() + self.timed_out() == 0
    }
}

/// Immutable per-design state shared by all workers.
struct DesignContext {
    name: String,
    instrumented: Instrumented,
    /// Elaborated once for formal jobs; `None` when formal isn't scheduled.
    flat: Option<FlatCircuit>,
}

enum Event {
    /// A job produced a map; `partial` marks a fuel-exhausted run.
    Done {
        attempt: Attempt,
        map: CoverageMap,
        partial: bool,
    },
    Cancelled {
        attempt: Attempt,
    },
    Failed {
        attempt: Attempt,
        error: String,
    },
    Panicked {
        attempt: Attempt,
        message: String,
    },
    /// The supervisor found a worker dead outside the unwind guard.
    WorkerCrashed {
        attempt: Option<Attempt>,
        respawned: bool,
    },
    /// Every worker is dead and the respawn budget is spent.
    WorkersExhausted,
}

/// Enumerate the full job list for a config, in scheduling order
/// (design-major, then shard, then backend — so saturation cancels the
/// tail of a design's shards).
pub fn job_list(config: &CampaignConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for design in &config.designs {
        for shard in 0..config.shards.max(1) {
            for backend in &config.backends {
                if !backend.is_sharded() && shard != 0 {
                    continue;
                }
                jobs.push(JobSpec {
                    design: design.clone(),
                    shard,
                    backend: *backend,
                });
            }
        }
    }
    jobs
}

/// The fuel to hand a simulation job: the configured budget, or — when a
/// stall fault is injected without one — half the trace so the runaway is
/// guaranteed to starve mid-workload.
fn effective_fuel(job_fuel: Option<u64>, stall: bool, trace_cycles: usize) -> Option<u64> {
    match (job_fuel, stall) {
        (Some(fuel), _) => Some(fuel),
        (None, true) => Some((trace_cycles as u64 / 2).max(1)),
        (None, false) => None,
    }
}

/// Execute one attempt on `run_on` (the effective backend after any
/// degradation). Returns the coverage map and whether the job starved
/// mid-run (`true` = partial map, job timed out). A `stall` fault makes
/// the job run away — it keeps stepping until the fuel deadline ends it,
/// which is exactly what the deadline exists to contain.
fn run_job(
    job: &JobSpec,
    run_on: Backend,
    ctx: &DesignContext,
    config: &CampaignConfig,
    stall: bool,
) -> Result<(CoverageMap, bool), String> {
    match run_on {
        Backend::Sim(kind) => {
            let mut sim = kind
                .build_with(&ctx.instrumented.circuit, &config.sim_options)
                .map_err(|e| e.to_string())?;
            let workload = campaign_workload(&ctx.name, job.shard, config.scale)
                .ok_or_else(|| format!("no workload for design `{}`", ctx.name))?;
            let fuel = effective_fuel(config.job_fuel, stall, workload.trace.cycles());
            if let Some(fuel) = fuel {
                sim.set_fuel(fuel);
            }
            let mut map = workload.run(&mut *sim);
            if stall {
                while !sim.out_of_fuel() {
                    sim.step();
                }
                map = sim.cover_counts();
            }
            Ok((map, sim.out_of_fuel()))
        }
        Backend::Fpga => {
            let mut sim = FpgaBackend::with_default_width(&ctx.instrumented.circuit)
                .map_err(|e| e.to_string())?;
            let workload = campaign_workload(&ctx.name, job.shard, config.scale)
                .ok_or_else(|| format!("no workload for design `{}`", ctx.name))?;
            let fuel = effective_fuel(config.job_fuel, stall, workload.trace.cycles());
            if let Some(fuel) = fuel {
                rtlcov_sim::Simulator::set_fuel(&mut sim, fuel);
            }
            let mut map = workload.run(&mut sim);
            if stall {
                while !rtlcov_sim::Simulator::out_of_fuel(&sim) {
                    rtlcov_sim::Simulator::step(&mut sim);
                }
                map = rtlcov_sim::Simulator::cover_counts(&sim);
            }
            Ok((map, rtlcov_sim::Simulator::out_of_fuel(&sim)))
        }
        Backend::Formal => {
            let flat = ctx
                .flat
                .as_ref()
                .ok_or("design was not elaborated for formal")?;
            let fuel = if stall { Some(1) } else { config.job_fuel };
            let (map, exhausted) = bmc::cover_map_fueled(
                flat,
                BmcOptions {
                    max_steps: config.bmc_steps,
                    fuel,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            Ok((map, exhausted))
        }
    }
}

/// The database run key a campaign job commits under. The backend is the
/// *requested* one (matching the shard file's key), so a degraded rerun
/// and a resume of its shard hash to the same run and deduplicate.
fn db_run_key(job: &JobSpec, label: &str) -> RunKey {
    RunKey {
        design: job.design.clone(),
        workload: format!("s{}", job.shard),
        backend: job.backend.name().to_string(),
        label: label.to_string(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Everything a worker thread needs, bundled so the supervisor can spawn
/// replacements with one copy.
#[derive(Clone, Copy)]
struct WorkerEnv<'a> {
    dispatcher: &'a Dispatcher,
    in_flight: &'a InFlight,
    quarantine: &'a Quarantine,
    cancel: &'a HashMap<String, AtomicBool>,
    context_of: &'a HashMap<&'a str, &'a DesignContext>,
    config: &'a CampaignConfig,
}

/// Fault matching uses the *effective* coordinates — a site pinned to a
/// backend stops firing once the job has degraded off that backend, so a
/// hard fault on Fpga does not chase the job down to Compiled.
fn fault_coords(attempt: &Attempt) -> JobSpec {
    JobSpec {
        design: attempt.job.design.clone(),
        shard: attempt.job.shard,
        backend: attempt.run_on,
    }
}

fn fires(config: &CampaignConfig, kind: FaultKind, coords: &JobSpec, attempt: u32) -> bool {
    config
        .faults
        .as_ref()
        .is_some_and(|plan| plan.fire(kind, coords, attempt))
}

fn worker_loop(slot: usize, env: WorkerEnv<'_>, sender: &mpsc::Sender<Event>) {
    while let Some(mut attempt) = env.dispatcher.next() {
        // route around pairs quarantined while the attempt sat queued
        match env.quarantine.resolve(&attempt.job.design, attempt.run_on) {
            Some(backend) => {
                if backend != attempt.run_on {
                    attempt.run_on = backend;
                    attempt.attempt = 0;
                }
            }
            None => {
                let _ = sender.send(Event::Failed {
                    attempt,
                    error: "every backend in the fallback chain is quarantined".into(),
                });
                continue;
            }
        }
        env.in_flight.begin(slot, &attempt);
        let coords = fault_coords(&attempt);
        if fires(env.config, FaultKind::PoisonQueue, &coords, attempt.attempt) {
            env.dispatcher.poison(); // dies holding the queue lock
        }
        if fires(env.config, FaultKind::KillWorker, &coords, attempt.attempt) {
            panic!("injected fault: worker thread killed");
        }
        if env
            .cancel
            .get(attempt.job.design.as_str())
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
        {
            env.in_flight.finish(slot);
            let _ = sender.send(Event::Cancelled { attempt });
            continue;
        }
        std::thread::sleep(retry_backoff(
            env.config.backoff_seed,
            &attempt.job,
            attempt.attempt,
        ));
        let event = if fires(env.config, FaultKind::Error, &coords, attempt.attempt) {
            Event::Failed {
                attempt,
                error: "injected fault: backend error".into(),
            }
        } else {
            let stall = fires(env.config, FaultKind::Stall, &coords, attempt.attempt);
            let inject_panic = fires(env.config, FaultKind::Panic, &coords, attempt.attempt);
            let ctx = env.context_of[attempt.job.design.as_str()];
            let result = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected fault: backend panic");
                }
                run_job(&attempt.job, attempt.run_on, ctx, env.config, stall)
            }));
            match result {
                Ok(Ok((map, partial))) => Event::Done {
                    attempt,
                    map,
                    partial,
                },
                Ok(Err(error)) => Event::Failed { attempt, error },
                Err(payload) => Event::Panicked {
                    attempt,
                    message: panic_message(payload),
                },
            }
        };
        env.in_flight.finish(slot);
        let _ = sender.send(event);
    }
}

/// The single-threaded merge/retry/quarantine brain of the campaign.
struct Coordinator<'a> {
    config: &'a CampaignConfig,
    dispatcher: &'a Dispatcher,
    quarantine: &'a Quarantine,
    cancel: &'a HashMap<String, AtomicBool>,
    store: Option<&'a ShardStore>,
    db: Option<CoverageDb>,
    trees: BTreeMap<String, MergeTree>,
    trackers: BTreeMap<String, SaturationTracker>,
    outcomes: HashMap<JobSpec, JobOutcome>,
    stats: CampaignStats,
    terminal: usize,
    workers_gone: bool,
}

impl Coordinator<'_> {
    fn merge(&mut self, design: &str, map: CoverageMap) {
        let Some(tracker) = self.trackers.get_mut(design) else {
            return;
        };
        tracker.observe(&map);
        if tracker.saturated() {
            if let Some(flag) = self.cancel.get(design) {
                flag.store(true, Ordering::SeqCst);
            }
        }
        if let Some(tree) = self.trees.get_mut(design) {
            tree.insert(map);
        }
    }

    fn conclude(&mut self, job: JobSpec, outcome: JobOutcome) {
        self.outcomes.insert(job, outcome);
        self.terminal += 1;
    }

    /// One attempt failed: retry on the same backend while the budget
    /// lasts, then quarantine the pair and degrade down the chain, and
    /// only when the chain is exhausted record a terminal outcome.
    fn fail(&mut self, attempt: Attempt, error: String, panicked: bool) {
        let stats = self.stats.backend_mut(attempt.run_on);
        stats.failures += 1;
        if panicked {
            stats.panics += 1;
        }
        if !self.workers_gone && attempt.attempt < self.config.max_retries {
            stats.retries += 1;
            self.dispatcher.push(Attempt {
                attempt: attempt.attempt + 1,
                ..attempt
            });
            return;
        }
        self.quarantine.add(&attempt.job.design, attempt.run_on);
        if !self.workers_gone {
            if let Some(next) = self.quarantine.resolve(&attempt.job.design, attempt.run_on) {
                self.dispatcher.push(Attempt {
                    job: attempt.job,
                    run_on: next,
                    attempt: 0,
                });
                return;
            }
        }
        let outcome = if panicked {
            JobOutcome::Panicked(error)
        } else {
            JobOutcome::Failed(error)
        };
        self.conclude(attempt.job, outcome);
    }

    fn on_event(&mut self, event: Event) {
        match event {
            Event::Done {
                attempt,
                map,
                partial,
            } => {
                if partial {
                    // the deadline ended the job; its partial coverage is
                    // real and merges, but the shard is not persisted, so
                    // a resumed campaign re-runs the job in full
                    self.stats.backend_mut(attempt.run_on).timeouts += 1;
                    self.merge(&attempt.job.design, map);
                    self.conclude(attempt.job, JobOutcome::TimedOut);
                    return;
                }
                if let Some(store) = self.store {
                    if let Err(e) = store.save_verified(&attempt.job, &map) {
                        self.fail(attempt, format!("persist: {e}"), false);
                        return;
                    }
                }
                if let Some(db) = self.db.as_mut() {
                    let key = db_run_key(&attempt.job, &self.config.db_label);
                    if let Err(e) = db.ingest(&key, &map) {
                        self.fail(attempt, format!("db ingest: {e}"), false);
                        return;
                    }
                }
                self.merge(&attempt.job.design, map);
                let outcome = if attempt.run_on == attempt.job.backend {
                    JobOutcome::Completed
                } else {
                    self.stats.backend_mut(attempt.job.backend).degraded_from += 1;
                    self.stats.backend_mut(attempt.run_on).degraded_to += 1;
                    JobOutcome::Degraded {
                        from: attempt.job.backend,
                        to: attempt.run_on,
                    }
                };
                self.conclude(attempt.job, outcome);
            }
            Event::Cancelled { attempt } => self.conclude(attempt.job, JobOutcome::Cancelled),
            Event::Failed { attempt, error } => self.fail(attempt, error, false),
            Event::Panicked { attempt, message } => self.fail(attempt, message, true),
            Event::WorkerCrashed { attempt, respawned } => {
                if respawned {
                    self.stats.respawned_workers += 1;
                }
                if let Some(attempt) = attempt {
                    self.fail(attempt, "worker thread died mid-job".into(), true);
                }
            }
            Event::WorkersExhausted => {
                self.workers_gone = true;
                for attempt in self.dispatcher.drain() {
                    self.conclude(
                        attempt.job,
                        JobOutcome::Failed("no live workers left".into()),
                    );
                }
            }
        }
    }
}

/// Run a campaign to completion.
///
/// # Errors
///
/// Configuration errors (unknown design/empty axes) and instrumentation
/// failures abort the whole campaign. Individual job failures do not:
/// they are isolated, retried, degraded, and ultimately reported per job
/// in [`CampaignResult::outcomes`].
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, CampaignError> {
    if config.designs.is_empty() {
        return Err(CampaignError("no designs selected".into()));
    }
    if config.backends.is_empty() {
        return Err(CampaignError("no backends selected".into()));
    }
    let workers = config.workers.max(1);
    let needs_formal = config.backends.contains(&Backend::Formal);

    // instrument each design once; workers share the result immutably
    let mut contexts: Vec<DesignContext> = Vec::new();
    for design in &config.designs {
        let workload = campaign_workload(design, 0, 1)
            .ok_or_else(|| CampaignError(format!("unknown design `{design}`")))?;
        let instrumented = CoverageCompiler::new(config.metrics)
            .run(workload.circuit)
            .map_err(|e| CampaignError(format!("instrumenting `{design}`: {e}")))?;
        let flat = if needs_formal {
            Some(
                elaborate(&instrumented.circuit)
                    .map_err(|e| CampaignError(format!("elaborating `{design}`: {e}")))?,
            )
        } else {
            None
        };
        contexts.push(DesignContext {
            name: design.clone(),
            instrumented,
            flat,
        });
    }
    let context_of: HashMap<&str, &DesignContext> =
        contexts.iter().map(|c| (c.name.as_str(), c)).collect();

    // resume: load usable shards (corrupt writes never survive
    // `save_verified`, so everything scanned here is trustworthy),
    // schedule everything else
    let store = config.shard_dir.as_ref().map(|d| {
        let mut store = ShardStore::new(d, config.format);
        if let Some(plan) = &config.faults {
            let plan = Arc::clone(plan);
            store = store.with_write_tamper(Arc::new(move |job: &JobSpec, bytes: &mut Vec<u8>| {
                if plan.fire(FaultKind::Corrupt, job, 0) {
                    crate::faults::corrupt_bytes(bytes);
                }
            }));
        }
        store
    });
    let mut resumed: Vec<(JobSpec, CoverageMap)> = Vec::new();
    if let Some(store) = &store {
        let (shards, _rejected) = store.scan();
        for shard in shards {
            resumed.push((shard.job, shard.map));
        }
    }
    let all_jobs = job_list(config);
    let pending: Vec<JobSpec> = all_jobs
        .iter()
        .filter(|j| !resumed.iter().any(|(r, _)| r == *j))
        .cloned()
        .collect();
    let scheduled = pending.len();

    // coordinator state
    let mut trees: BTreeMap<String, MergeTree> = BTreeMap::new();
    let mut trackers: BTreeMap<String, SaturationTracker> = BTreeMap::new();
    let cancel: HashMap<String, AtomicBool> = config
        .designs
        .iter()
        .map(|d| (d.clone(), AtomicBool::new(false)))
        .collect();
    for design in &config.designs {
        trees.insert(design.clone(), MergeTree::new());
        trackers.insert(design.clone(), SaturationTracker::new(config.plateau));
    }
    let mut outcomes: HashMap<JobSpec, JobOutcome> = HashMap::new();

    let mut db = match &config.db_dir {
        Some(dir) => Some(
            CoverageDb::open(dir).map_err(|e| CampaignError(format!("open coverage db: {e}")))?,
        ),
        None => None,
    };

    // previously persisted shards participate in the merge (and in the
    // saturation statistics) but are not re-run and not re-persisted;
    // database ingest is idempotent, so re-committing them is a no-op
    for (job, map) in resumed {
        if let (Some(tree), Some(tracker)) =
            (trees.get_mut(&job.design), trackers.get_mut(&job.design))
        {
            if let Some(db) = db.as_mut() {
                db.ingest(&db_run_key(&job, &config.db_label), &map)
                    .map_err(|e| CampaignError(format!("db ingest of resumed shard: {e}")))?;
            }
            tracker.observe(&map);
            tree.insert(map);
            outcomes.insert(job, JobOutcome::Resumed);
        }
    }

    let dispatcher = Dispatcher::new(pending.into_iter().map(Attempt::first));
    let in_flight = InFlight::new(workers);
    let quarantine = Quarantine::default();
    let (sender, receiver) = mpsc::channel::<Event>();

    let mut coordinator = Coordinator {
        config,
        dispatcher: &dispatcher,
        quarantine: &quarantine,
        cancel: &cancel,
        store: store.as_ref(),
        db,
        trees,
        trackers,
        outcomes,
        stats: CampaignStats::default(),
        terminal: 0,
        workers_gone: false,
    };
    for backend in &config.backends {
        coordinator.stats.backend_mut(*backend); // stable report keys
    }
    let env = WorkerEnv {
        dispatcher: &dispatcher,
        in_flight: &in_flight,
        quarantine: &quarantine,
        cancel: &cancel,
        context_of: &context_of,
        config,
    };
    let respawn_max = u32::try_from(workers).unwrap_or(u32::MAX).saturating_mul(8);

    std::thread::scope(|scope| {
        // the supervisor owns the worker handles: it polls them, recovers
        // the in-flight job of any worker that died outside the unwind
        // guard, and respawns replacements until its budget runs out
        scope.spawn(move || {
            let spawn_worker = |slot: usize| {
                let sender = sender.clone();
                scope.spawn(move || worker_loop(slot, env, &sender))
            };
            let mut handles: Vec<Option<std::thread::ScopedJoinHandle<'_, ()>>> =
                (0..workers).map(|slot| Some(spawn_worker(slot))).collect();
            let mut budget = RespawnBudget::new(respawn_max);
            loop {
                let mut alive = 0usize;
                for (slot, handle) in handles.iter_mut().enumerate() {
                    let finished = handle.as_ref().is_some_and(|h| h.is_finished());
                    if finished {
                        let crashed = handle.take().expect("handle present").join().is_err();
                        if crashed {
                            let attempt = env.in_flight.take(slot);
                            let respawned = !env.dispatcher.is_shutdown() && budget.claim();
                            let _ = sender.send(Event::WorkerCrashed { attempt, respawned });
                            if respawned {
                                *handle = Some(spawn_worker(slot));
                                alive += 1;
                            }
                        }
                    } else if handle.is_some() {
                        alive += 1;
                    }
                }
                if alive == 0 {
                    if env.dispatcher.is_shutdown() {
                        break;
                    }
                    let _ = sender.send(Event::WorkersExhausted);
                    while !env.dispatcher.is_shutdown() {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });

        while coordinator.terminal < scheduled {
            match receiver.recv() {
                Ok(event) => coordinator.on_event(event),
                Err(_) => {
                    // every sender is gone: account for whatever is left
                    for attempt in dispatcher.drain() {
                        coordinator
                            .conclude(attempt.job, JobOutcome::Failed("worker pool lost".into()));
                    }
                    break;
                }
            }
        }
        dispatcher.shutdown();
    });

    let mut per_design = BTreeMap::new();
    let mut merged = CoverageMap::new();
    for (design, tree) in &coordinator.trees {
        let map = tree.merged();
        for (name, count) in map.iter() {
            let global = format!("{design}::{name}");
            merged.declare(global.clone());
            merged.record(global, count);
        }
        per_design.insert(design.clone(), map);
    }
    let mut outcomes: Vec<(JobSpec, JobOutcome)> = coordinator.outcomes.into_iter().collect();
    outcomes.sort_by_key(|(job, _)| job.id());
    let mut stats = coordinator.stats;
    stats.quarantined = quarantine.pairs();
    let instrumented = contexts
        .into_iter()
        .map(|c| (c.name, c.instrumented))
        .collect();
    Ok(CampaignResult {
        merged,
        per_design,
        instrumented,
        outcomes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_sim::SimKind;

    fn quick(designs: &[&str], backends: Vec<Backend>) -> CampaignConfig {
        CampaignConfig {
            designs: designs.iter().map(|s| s.to_string()).collect(),
            backends,
            metrics: Metrics::line_only(),
            shards: 2,
            workers: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn unknown_design_is_a_config_error() {
        let config = quick(&["nope"], vec![Backend::Sim(SimKind::Interp)]);
        assert!(run_campaign(&config).is_err());
    }

    #[test]
    fn formal_runs_once_per_design() {
        let config = quick(
            &["gcd"],
            vec![Backend::Sim(SimKind::Interp), Backend::Formal],
        );
        let jobs = job_list(&config);
        let formal = jobs.iter().filter(|j| j.backend == Backend::Formal).count();
        assert_eq!(formal, 1, "formal is stimulus-independent");
        assert_eq!(jobs.len(), 3); // 2 interp shards + 1 formal
    }

    #[test]
    fn small_campaign_completes_and_prefixes_global_keys() {
        let config = quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)]);
        let result = run_campaign(&config).unwrap();
        assert_eq!(result.completed(), 2);
        assert_eq!(result.failed(), 0);
        assert!(result.healthy());
        assert_eq!(result.stats.respawned_workers, 0);
        let gcd = &result.per_design["gcd"];
        assert!(!gcd.is_empty(), "line instrumentation yields cover points");
        assert_eq!(result.merged.len(), gcd.len());
        for (name, _) in result.merged.iter() {
            assert!(name.starts_with("gcd::"), "{name}");
        }
    }

    #[test]
    fn sim_options_do_not_change_coverage() {
        let backends = vec![
            Backend::Sim(SimKind::Compiled),
            Backend::Sim(SimKind::Essent),
        ];
        let optimized = quick(&["gcd", "queue"], backends.clone());
        let baseline = CampaignConfig {
            sim_options: rtlcov_sim::SimBuildOptions {
                optimize: false,
                partition: false,
            },
            ..quick(&["gcd", "queue"], backends)
        };
        let a = run_campaign(&optimized).unwrap();
        let b = run_campaign(&baseline).unwrap();
        assert!(a.healthy() && b.healthy());
        assert_eq!(a.merged, b.merged, "optimizer must be invisible in maps");
    }

    #[test]
    fn persisted_campaign_resumes_without_rerunning() {
        let dir =
            std::env::temp_dir().join(format!("rtlcov-campaign-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig {
            shard_dir: Some(dir.clone()),
            ..quick(
                &["queue"],
                vec![Backend::Sim(SimKind::Interp), Backend::Sim(SimKind::Essent)],
            )
        };
        let first = run_campaign(&config).unwrap();
        assert_eq!(first.completed(), 4);
        assert_eq!(first.resumed(), 0);
        let second = run_campaign(&config).unwrap();
        assert_eq!(second.completed(), 0);
        assert_eq!(second.resumed(), 4);
        assert_eq!(first.merged, second.merged, "resume reproduces the merge");
        // corrupt one shard: exactly that job reruns
        let path = ShardStore::new(&dir, config.format).path_for(&JobSpec {
            design: "queue".into(),
            shard: 1,
            backend: Backend::Sim(SimKind::Essent),
        });
        std::fs::write(&path, b"RSHDgarbage").unwrap();
        let third = run_campaign(&config).unwrap();
        assert_eq!(third.completed(), 1);
        assert_eq!(third.resumed(), 3);
        assert_eq!(first.merged, third.merged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_streams_shards_into_the_db_idempotently() {
        use rtlcov_db::Selector;
        let dir = std::env::temp_dir().join(format!("rtlcov-campaign-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig {
            shard_dir: Some(dir.join("shards")),
            db_dir: Some(dir.join("db")),
            db_label: "unit".into(),
            ..quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)])
        };
        let result = run_campaign(&config).unwrap();
        assert_eq!(result.completed(), 2);
        let db = CoverageDb::open(dir.join("db")).unwrap();
        assert_eq!(db.runs().len(), 2);
        assert!(db.runs().iter().all(|r| r.key.label == "unit"));
        let merged = db.merged(&Selector::parse("design=gcd").unwrap()).unwrap();
        assert_eq!(*merged, result.per_design["gcd"], "db == live merge");
        // resume: shards re-ingest idempotently, no new segments
        let again = run_campaign(&config).unwrap();
        assert_eq!(again.resumed(), 2);
        let db = CoverageDb::open(dir.join("db")).unwrap();
        assert_eq!(db.runs().len(), 2, "idempotent re-ingest");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saturation_cancels_redundant_shards() {
        // one worker => deterministic completion order; gcd's line
        // coverage saturates on the first shard, so with K = 2 the
        // remaining shards are cancelled
        let config = CampaignConfig {
            shards: 8,
            workers: 1,
            plateau: 2,
            ..quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)])
        };
        let result = run_campaign(&config).unwrap();
        assert!(result.cancelled() >= 1, "outcomes: {:?}", result.outcomes);
        assert_eq!(result.completed() + result.cancelled(), 8);
    }

    #[test]
    fn job_fuel_times_jobs_out_with_partial_coverage() {
        let config = CampaignConfig {
            job_fuel: Some(3),
            ..quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)])
        };
        let result = run_campaign(&config).unwrap();
        assert_eq!(result.timed_out(), 2, "outcomes: {:?}", result.outcomes);
        assert!(!result.healthy());
        assert_eq!(result.stats.per_backend["interp"].timeouts, 2);
        // partial coverage still merged (gcd covers something in 3 cycles
        // of reset+stimulus is not guaranteed, but the map's key set is)
        assert!(!result.merged.is_empty());
        // deterministic: the same fuel yields the same partial merge
        let again = run_campaign(&config).unwrap();
        assert_eq!(result.merged, again.merged);
    }
}

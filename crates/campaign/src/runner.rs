//! The campaign scheduler: fan (design × shard × backend) jobs out over a
//! worker pool, stream per-shard coverage back to a coordinator, and stop
//! paying for designs whose coverage has saturated.
//!
//! Topology:
//!
//! ```text
//!   job queue ──▶ worker 0 ─┐
//!   (Mutex<VecDeque>)  ...  ├─ mpsc ─▶ coordinator: MergeTree per design
//!              ──▶ worker N ─┘          SaturationTracker per design
//!                    ▲                  ShardStore persistence
//!                    └── per-design cancel flags (AtomicBool) ◀──┘
//! ```
//!
//! Workers instrument nothing themselves: each design is instrumented
//! once up front and shared immutably, so a campaign pays the compiler
//! pipeline once per design, not once per job. The coordinator is the
//! only writer of merged state and shard files; workers only simulate.
//!
//! Determinism: `CoverageMap::merge` is a saturating sum, associative and
//! commutative, so with plateau cancellation disabled the merged map is
//! bit-identical for any worker count and any completion order. Plateau
//! cancellation (`plateau > 0`) deliberately trades that for wall-clock:
//! after `plateau` consecutive shards of a design with no newly hit cover
//! point, the design's remaining jobs are cancelled.

use crate::job::{Backend, JobSpec};
use crate::merge::{MergeTree, SaturationTracker};
use crate::shard::{ShardFormat, ShardStore};
use rtlcov_core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov_core::CoverageMap;
use rtlcov_designs::workloads::campaign_workload;
use rtlcov_formal::bmc::{self, BmcOptions};
use rtlcov_fpga::FpgaBackend;
use rtlcov_sim::elaborate::{elaborate, FlatCircuit};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Designs to cover (names from
    /// `rtlcov_designs::workloads::campaign_design_names`).
    pub designs: Vec<String>,
    /// Backends to schedule each shard on.
    pub backends: Vec<Backend>,
    /// Metrics to instrument.
    pub metrics: Metrics,
    /// Stimulus shards per design (formal runs shard 0 only).
    pub shards: u64,
    /// Per-shard stimulus scale factor (1 = smoke-test scale).
    pub scale: usize,
    /// Worker threads.
    pub workers: usize,
    /// Saturation threshold: cancel a design's remaining jobs after this
    /// many consecutive shards with no new cover points. 0 disables.
    pub plateau: usize,
    /// Persist shards here (and resume from them). `None` keeps the
    /// campaign in memory only.
    pub shard_dir: Option<PathBuf>,
    /// On-disk shard format.
    pub format: ShardFormat,
    /// Bound for formal jobs.
    pub bmc_steps: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            designs: vec!["gcd".into(), "queue".into()],
            backends: Backend::ALL.to_vec(),
            metrics: Metrics::all(),
            shards: 2,
            scale: 1,
            workers: 4,
            plateau: 0,
            shard_dir: None,
            format: ShardFormat::Binary,
            bmc_steps: 10,
        }
    }
}

/// Why the campaign could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError(pub String);

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign error: {}", self.0)
    }
}

impl std::error::Error for CampaignError {}

/// How one scheduled job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran and merged.
    Completed,
    /// Loaded from a previously persisted shard instead of running.
    Resumed,
    /// Skipped because its design saturated first.
    Cancelled,
    /// The backend failed (error message).
    Failed(String),
}

/// Everything a finished campaign knows.
#[derive(Debug)]
pub struct CampaignResult {
    /// Global merged map; keys are `{design}::{cover}` so identically
    /// named cover points in different designs stay distinct.
    pub merged: CoverageMap,
    /// Per-design merged maps with the designs' own cover names.
    pub per_design: BTreeMap<String, CoverageMap>,
    /// Instrumented circuits + pass metadata, for report rendering.
    pub instrumented: BTreeMap<String, Instrumented>,
    /// Outcome of every scheduled job, in job-id order.
    pub outcomes: Vec<(JobSpec, JobOutcome)>,
}

impl CampaignResult {
    fn count(&self, pred: impl Fn(&JobOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|(_, o)| pred(o)).count()
    }

    /// Jobs that ran to completion in this invocation.
    pub fn completed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Completed))
    }

    /// Jobs satisfied by previously persisted shards.
    pub fn resumed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Resumed))
    }

    /// Jobs cancelled by saturation.
    pub fn cancelled(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Cancelled))
    }

    /// Jobs that failed.
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Failed(_)))
    }
}

/// Immutable per-design state shared by all workers.
struct DesignContext {
    name: String,
    instrumented: Instrumented,
    /// Elaborated once for formal jobs; `None` when formal isn't scheduled.
    flat: Option<FlatCircuit>,
}

enum Event {
    Done { job: JobSpec, map: CoverageMap },
    Cancelled { job: JobSpec },
    Failed { job: JobSpec, error: String },
}

/// Enumerate the full job list for a config, in scheduling order
/// (design-major, then shard, then backend — so saturation cancels the
/// tail of a design's shards).
pub fn job_list(config: &CampaignConfig) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for design in &config.designs {
        for shard in 0..config.shards.max(1) {
            for backend in &config.backends {
                if !backend.is_sharded() && shard != 0 {
                    continue;
                }
                jobs.push(JobSpec {
                    design: design.clone(),
                    shard,
                    backend: *backend,
                });
            }
        }
    }
    jobs
}

fn run_job(
    job: &JobSpec,
    ctx: &DesignContext,
    config: &CampaignConfig,
) -> Result<CoverageMap, String> {
    match job.backend {
        Backend::Sim(kind) => {
            let mut sim = kind
                .build(&ctx.instrumented.circuit)
                .map_err(|e| e.to_string())?;
            let workload = campaign_workload(&ctx.name, job.shard, config.scale)
                .ok_or_else(|| format!("no workload for design `{}`", ctx.name))?;
            Ok(workload.run(&mut *sim))
        }
        Backend::Fpga => {
            let mut sim = FpgaBackend::with_default_width(&ctx.instrumented.circuit)
                .map_err(|e| e.to_string())?;
            let workload = campaign_workload(&ctx.name, job.shard, config.scale)
                .ok_or_else(|| format!("no workload for design `{}`", ctx.name))?;
            Ok(workload.run(&mut sim))
        }
        Backend::Formal => {
            let flat = ctx
                .flat
                .as_ref()
                .ok_or("design was not elaborated for formal")?;
            bmc::cover_map(
                flat,
                BmcOptions {
                    max_steps: config.bmc_steps,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())
        }
    }
}

/// Run a campaign to completion.
///
/// # Errors
///
/// Configuration errors (unknown design/empty axes) and instrumentation
/// failures abort the whole campaign. Individual job failures do not:
/// they are reported per job in [`CampaignResult::outcomes`].
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, CampaignError> {
    if config.designs.is_empty() {
        return Err(CampaignError("no designs selected".into()));
    }
    if config.backends.is_empty() {
        return Err(CampaignError("no backends selected".into()));
    }
    let workers = config.workers.max(1);
    let needs_formal = config.backends.contains(&Backend::Formal);

    // instrument each design once; workers share the result immutably
    let mut contexts: Vec<DesignContext> = Vec::new();
    for design in &config.designs {
        let workload = campaign_workload(design, 0, 1)
            .ok_or_else(|| CampaignError(format!("unknown design `{design}`")))?;
        let instrumented = CoverageCompiler::new(config.metrics)
            .run(workload.circuit)
            .map_err(|e| CampaignError(format!("instrumenting `{design}`: {e}")))?;
        let flat = if needs_formal {
            Some(
                elaborate(&instrumented.circuit)
                    .map_err(|e| CampaignError(format!("elaborating `{design}`: {e}")))?,
            )
        } else {
            None
        };
        contexts.push(DesignContext {
            name: design.clone(),
            instrumented,
            flat,
        });
    }
    let context_of: HashMap<&str, &DesignContext> =
        contexts.iter().map(|c| (c.name.as_str(), c)).collect();

    // resume: load usable shards, schedule everything else
    let store = config
        .shard_dir
        .as_ref()
        .map(|d| ShardStore::new(d, config.format));
    let mut resumed: Vec<(JobSpec, CoverageMap)> = Vec::new();
    if let Some(store) = &store {
        let (shards, _rejected) = store.scan();
        for shard in shards {
            resumed.push((shard.job, shard.map));
        }
    }
    let all_jobs = job_list(config);
    let pending: VecDeque<JobSpec> = all_jobs
        .iter()
        .filter(|j| !resumed.iter().any(|(r, _)| r == *j))
        .cloned()
        .collect();
    let scheduled = pending.len();

    // coordinator state
    let mut trees: BTreeMap<String, MergeTree> = BTreeMap::new();
    let mut trackers: BTreeMap<String, SaturationTracker> = BTreeMap::new();
    let cancel: HashMap<String, AtomicBool> = config
        .designs
        .iter()
        .map(|d| (d.clone(), AtomicBool::new(false)))
        .collect();
    for design in &config.designs {
        trees.insert(design.clone(), MergeTree::new());
        trackers.insert(design.clone(), SaturationTracker::new(config.plateau));
    }
    let mut outcomes: HashMap<JobSpec, JobOutcome> = HashMap::new();

    // previously persisted shards participate in the merge (and in the
    // saturation statistics) but are not re-run and not re-persisted
    for (job, map) in resumed {
        if let Some(tree) = trees.get_mut(&job.design) {
            let tracker = trackers.get_mut(&job.design).expect("tracker per design");
            tracker.observe(&map);
            tree.insert(map);
            outcomes.insert(job, JobOutcome::Resumed);
        }
    }

    let queue = Mutex::new(pending);
    let (sender, receiver) = mpsc::channel::<Event>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let queue = &queue;
            let cancel = &cancel;
            let context_of = &context_of;
            scope.spawn(move || loop {
                let job = match queue.lock().expect("queue lock").pop_front() {
                    Some(job) => job,
                    None => break,
                };
                if cancel[job.design.as_str()].load(Ordering::SeqCst) {
                    let _ = sender.send(Event::Cancelled { job });
                    continue;
                }
                let ctx = context_of[job.design.as_str()];
                let event = match run_job(&job, ctx, config) {
                    Ok(map) => Event::Done { job, map },
                    Err(error) => Event::Failed { job, error },
                };
                let _ = sender.send(event);
            });
        }
        drop(sender);

        for event in receiver.iter().take(scheduled) {
            match event {
                Event::Done { job, map } => {
                    if let Some(store) = &store {
                        if let Err(e) = store.save(&job, &map) {
                            outcomes.insert(job, JobOutcome::Failed(format!("persist: {e}")));
                            continue;
                        }
                    }
                    let tracker = trackers.get_mut(&job.design).expect("tracker per design");
                    tracker.observe(&map);
                    if tracker.saturated() {
                        cancel[job.design.as_str()].store(true, Ordering::SeqCst);
                    }
                    trees
                        .get_mut(&job.design)
                        .expect("tree per design")
                        .insert(map);
                    outcomes.insert(job, JobOutcome::Completed);
                }
                Event::Cancelled { job } => {
                    outcomes.insert(job, JobOutcome::Cancelled);
                }
                Event::Failed { job, error } => {
                    outcomes.insert(job, JobOutcome::Failed(error));
                }
            }
        }
    });

    let mut per_design = BTreeMap::new();
    let mut merged = CoverageMap::new();
    for (design, tree) in &trees {
        let map = tree.merged();
        for (name, count) in map.iter() {
            let global = format!("{design}::{name}");
            merged.declare(global.clone());
            merged.record(global, count);
        }
        per_design.insert(design.clone(), map);
    }
    let mut outcomes: Vec<(JobSpec, JobOutcome)> = outcomes.into_iter().collect();
    outcomes.sort_by_key(|(job, _)| job.id());
    let instrumented = contexts
        .into_iter()
        .map(|c| (c.name, c.instrumented))
        .collect();
    Ok(CampaignResult {
        merged,
        per_design,
        instrumented,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_sim::SimKind;

    fn quick(designs: &[&str], backends: Vec<Backend>) -> CampaignConfig {
        CampaignConfig {
            designs: designs.iter().map(|s| s.to_string()).collect(),
            backends,
            metrics: Metrics::line_only(),
            shards: 2,
            workers: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn unknown_design_is_a_config_error() {
        let config = quick(&["nope"], vec![Backend::Sim(SimKind::Interp)]);
        assert!(run_campaign(&config).is_err());
    }

    #[test]
    fn formal_runs_once_per_design() {
        let config = quick(
            &["gcd"],
            vec![Backend::Sim(SimKind::Interp), Backend::Formal],
        );
        let jobs = job_list(&config);
        let formal = jobs.iter().filter(|j| j.backend == Backend::Formal).count();
        assert_eq!(formal, 1, "formal is stimulus-independent");
        assert_eq!(jobs.len(), 3); // 2 interp shards + 1 formal
    }

    #[test]
    fn small_campaign_completes_and_prefixes_global_keys() {
        let config = quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)]);
        let result = run_campaign(&config).unwrap();
        assert_eq!(result.completed(), 2);
        assert_eq!(result.failed(), 0);
        let gcd = &result.per_design["gcd"];
        assert!(gcd.len() > 0, "line instrumentation yields cover points");
        assert_eq!(result.merged.len(), gcd.len());
        for (name, _) in result.merged.iter() {
            assert!(name.starts_with("gcd::"), "{name}");
        }
    }

    #[test]
    fn persisted_campaign_resumes_without_rerunning() {
        let dir =
            std::env::temp_dir().join(format!("rtlcov-campaign-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig {
            shard_dir: Some(dir.clone()),
            ..quick(
                &["queue"],
                vec![Backend::Sim(SimKind::Interp), Backend::Sim(SimKind::Essent)],
            )
        };
        let first = run_campaign(&config).unwrap();
        assert_eq!(first.completed(), 4);
        assert_eq!(first.resumed(), 0);
        let second = run_campaign(&config).unwrap();
        assert_eq!(second.completed(), 0);
        assert_eq!(second.resumed(), 4);
        assert_eq!(first.merged, second.merged, "resume reproduces the merge");
        // corrupt one shard: exactly that job reruns
        let path = ShardStore::new(&dir, config.format).path_for(&JobSpec {
            design: "queue".into(),
            shard: 1,
            backend: Backend::Sim(SimKind::Essent),
        });
        std::fs::write(&path, b"RSHDgarbage").unwrap();
        let third = run_campaign(&config).unwrap();
        assert_eq!(third.completed(), 1);
        assert_eq!(third.resumed(), 3);
        assert_eq!(first.merged, third.merged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saturation_cancels_redundant_shards() {
        // one worker => deterministic completion order; gcd's line
        // coverage saturates on the first shard, so with K = 2 the
        // remaining shards are cancelled
        let config = CampaignConfig {
            shards: 8,
            workers: 1,
            plateau: 2,
            ..quick(&["gcd"], vec![Backend::Sim(SimKind::Interp)])
        };
        let result = run_campaign(&config).unwrap();
        assert!(result.cancelled() >= 1, "outcomes: {:?}", result.outcomes);
        assert_eq!(result.completed() + result.cancelled(), 8);
    }
}

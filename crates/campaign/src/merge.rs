//! Incremental coverage merging and saturation detection.
//!
//! Shard maps stream in as jobs finish. [`MergeTree`] folds them with the
//! binary-counter (LSM-style) scheme: slot `i` holds a merge of `2^i`
//! shards, and inserting a new shard carries like binary addition, so a
//! campaign of `n` shards costs `O(n)` merges of bounded fan-in instead
//! of rebuilding an ever-growing map. Because [`CoverageMap::merge`] is
//! a saturating sum — associative and commutative — the final map is
//! bit-identical no matter how the tree groups or orders shards (the
//! property the parallel/sequential equivalence tests lean on).
//!
//! [`SaturationTracker`] watches the stream of per-shard maps for a
//! design and reports when `k` consecutive shards contributed no newly
//! hit cover point — the trigger for cancelling that design's remaining
//! jobs.

use rtlcov_core::CoverageMap;
use std::collections::HashSet;

/// Binary-counter merge tree over coverage shards.
#[derive(Debug, Default)]
pub struct MergeTree {
    /// `slots[i]` is either empty or a merge of exactly `2^i` shards.
    slots: Vec<Option<CoverageMap>>,
    inserted: usize,
}

impl MergeTree {
    /// An empty tree.
    pub fn new() -> Self {
        MergeTree::default()
    }

    /// Number of shards inserted so far.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether any shard has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Insert one shard, carrying occupied slots upward.
    pub fn insert(&mut self, map: CoverageMap) {
        self.inserted += 1;
        let mut carry = map;
        for slot in self.slots.iter_mut() {
            match slot.take() {
                None => {
                    *slot = Some(carry);
                    return;
                }
                Some(mut resident) => {
                    // keep the larger side as the accumulator
                    if resident.len() >= carry.len() {
                        resident.merge(&carry);
                        carry = resident;
                    } else {
                        carry.merge(&resident);
                    }
                }
            }
        }
        self.slots.push(Some(carry));
    }

    /// Merge all occupied slots into the final map (non-destructive).
    pub fn merged(&self) -> CoverageMap {
        let occupied: Vec<&CoverageMap> = self.slots.iter().flatten().collect();
        CoverageMap::merge_many(&occupied)
    }
}

/// Plateau detector: counts consecutive shards with no new coverage.
#[derive(Debug)]
pub struct SaturationTracker {
    covered: HashSet<String>,
    streak: usize,
    threshold: usize,
}

impl SaturationTracker {
    /// A tracker that saturates after `threshold` consecutive
    /// no-new-coverage shards. `threshold == 0` disables detection.
    pub fn new(threshold: usize) -> Self {
        SaturationTracker {
            covered: HashSet::new(),
            streak: 0,
            threshold,
        }
    }

    /// Feed one shard's map. Returns `true` if the shard hit at least one
    /// cover point never hit before (declared-but-zero keys don't count).
    pub fn observe(&mut self, map: &CoverageMap) -> bool {
        let mut fresh = false;
        for (name, count) in map.iter() {
            if count > 0 && !self.covered.contains(name) {
                self.covered.insert(name.to_string());
                fresh = true;
            }
        }
        if fresh {
            self.streak = 0;
        } else {
            self.streak += 1;
        }
        fresh
    }

    /// Whether the plateau threshold has been reached.
    pub fn saturated(&self) -> bool {
        self.threshold > 0 && self.streak >= self.threshold
    }

    /// Distinct cover points hit so far.
    pub fn covered_points(&self) -> usize {
        self.covered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(entries: &[(&str, u64)]) -> CoverageMap {
        let mut m = CoverageMap::new();
        for (k, v) in entries {
            m.record(*k, *v);
        }
        m
    }

    #[test]
    fn tree_matches_sequential_merge_for_any_count() {
        for n in 0..20u64 {
            let shards: Vec<CoverageMap> = (0..n)
                .map(|i| shard(&[("a", i), (&format!("k{}", i % 3), 1)]))
                .collect();
            let mut tree = MergeTree::new();
            let mut reference = CoverageMap::new();
            for s in &shards {
                tree.insert(s.clone());
                reference.merge(s);
            }
            assert_eq!(tree.merged(), reference, "n = {n}");
            assert_eq!(tree.len(), n as usize);
        }
    }

    #[test]
    fn tree_preserves_saturation() {
        let mut tree = MergeTree::new();
        tree.insert(shard(&[("x", u64::MAX - 1)]));
        tree.insert(shard(&[("x", 5)]));
        assert_eq!(tree.merged().count("x"), Some(u64::MAX));
    }

    #[test]
    fn tracker_plateaus_after_k_stale_shards() {
        let mut t = SaturationTracker::new(2);
        assert!(t.observe(&shard(&[("a", 3)])));
        assert!(!t.saturated());
        // same key again: stale
        assert!(!t.observe(&shard(&[("a", 9)])));
        assert!(!t.saturated());
        // new key resets the streak
        assert!(t.observe(&shard(&[("b", 1)])));
        assert!(!t.observe(&shard(&[("a", 1)])));
        assert!(!t.saturated());
        assert!(!t.observe(&shard(&[("b", 2)])));
        assert!(t.saturated());
        assert_eq!(t.covered_points(), 2);
    }

    #[test]
    fn declared_but_unhit_points_do_not_count_as_coverage() {
        let mut t = SaturationTracker::new(1);
        let mut m = CoverageMap::new();
        m.declare("never");
        assert!(!t.observe(&m));
        assert!(t.saturated());
    }

    #[test]
    fn zero_threshold_never_saturates() {
        let mut t = SaturationTracker::new(0);
        for _ in 0..50 {
            t.observe(&CoverageMap::new());
        }
        assert!(!t.saturated());
    }
}

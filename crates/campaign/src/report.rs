//! Campaign-level report rendering: per-design, per-metric summaries over
//! the merged coverage, reusing the core report generators.

use crate::runner::CampaignResult;
use rtlcov_core::instrument::Metrics;
use rtlcov_core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};

/// Render the merged per-design reports for every requested metric.
pub fn render(result: &CampaignResult, metrics: Metrics) -> String {
    let mut out = String::new();
    for (design, map) in &result.per_design {
        let Some(inst) = result.instrumented.get(design) else {
            continue;
        };
        out.push_str(&format!(
            "== {design}: {}/{} cover points hit ==\n",
            map.covered(),
            map.len()
        ));
        if metrics.line {
            out.push_str(&LineReport::build(&inst.circuit, &inst.artifacts.line, map).render());
            out.push('\n');
        }
        if metrics.toggle.is_some() {
            out.push_str(&ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, map).render());
            out.push('\n');
        }
        if metrics.fsm {
            out.push_str(&FsmReport::build(&inst.circuit, &inst.artifacts.fsm, map).render());
            out.push('\n');
        }
        if metrics.ready_valid {
            out.push_str(
                &ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, map).render(),
            );
            out.push('\n');
        }
    }
    out
}

/// One-line-per-job campaign summary (outcome + totals).
pub fn summary(result: &CampaignResult) -> String {
    let mut out = String::new();
    for (job, outcome) in &result.outcomes {
        out.push_str(&format!("{:<40} {outcome:?}\n", job.id()));
    }
    out.push_str(&format!(
        "total: {} completed, {} resumed, {} cancelled, {} failed; {} cover points ({} hit)\n",
        result.completed(),
        result.resumed(),
        result.cancelled(),
        result.failed(),
        result.merged.len(),
        result.merged.covered(),
    ));
    out
}

//! Campaign-level report rendering: per-design, per-metric summaries over
//! the merged coverage, reusing the core report generators.

use crate::runner::CampaignResult;
use rtlcov_core::instrument::Metrics;
use rtlcov_core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};

/// Render the merged per-design reports for every requested metric.
pub fn render(result: &CampaignResult, metrics: Metrics) -> String {
    let mut out = String::new();
    for (design, map) in &result.per_design {
        let Some(inst) = result.instrumented.get(design) else {
            continue;
        };
        out.push_str(&format!(
            "== {design}: {}/{} cover points hit ==\n",
            map.covered(),
            map.len()
        ));
        if metrics.line {
            out.push_str(&LineReport::build(&inst.circuit, &inst.artifacts.line, map).render());
            out.push('\n');
        }
        if metrics.toggle.is_some() {
            out.push_str(&ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, map).render());
            out.push('\n');
        }
        if metrics.fsm {
            out.push_str(&FsmReport::build(&inst.circuit, &inst.artifacts.fsm, map).render());
            out.push('\n');
        }
        if metrics.ready_valid {
            out.push_str(
                &ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, map).render(),
            );
            out.push('\n');
        }
    }
    out
}

/// One-line-per-job campaign summary (outcome + totals + fault stats).
pub fn summary(result: &CampaignResult) -> String {
    let mut out = String::new();
    for (job, outcome) in &result.outcomes {
        out.push_str(&format!("{:<40} {outcome:?}\n", job.id()));
    }
    out.push_str(&format!(
        "total: {} completed, {} resumed, {} cancelled, {} degraded, {} timed out, \
         {} failed, {} panicked; {} cover points ({} hit)\n",
        result.completed(),
        result.resumed(),
        result.cancelled(),
        result.degraded(),
        result.timed_out(),
        result.failed(),
        result.panicked(),
        result.merged.len(),
        result.merged.covered(),
    ));
    let noisy: Vec<_> = result
        .stats
        .per_backend
        .iter()
        .filter(|(_, s)| !s.is_quiet())
        .collect();
    if !noisy.is_empty() {
        out.push_str("backend faults:\n");
        for (backend, s) in noisy {
            out.push_str(&format!(
                "  {backend:<10} {} failures ({} panics), {} timeouts, {} retries, \
                 {} degraded away, {} absorbed\n",
                s.failures, s.panics, s.timeouts, s.retries, s.degraded_from, s.degraded_to,
            ));
        }
    }
    if !result.stats.quarantined.is_empty() {
        let pairs: Vec<String> = result
            .stats
            .quarantined
            .iter()
            .map(|(design, backend)| format!("{design}/{backend}"))
            .collect();
        out.push_str(&format!("quarantined: {}\n", pairs.join(", ")));
    }
    if result.stats.respawned_workers > 0 {
        out.push_str(&format!(
            "respawned workers: {}\n",
            result.stats.respawned_workers
        ));
    }
    out
}

/// The one-line campaign health verdict, suitable for a final status line
/// and for deciding the process exit code.
pub fn health(result: &CampaignResult) -> String {
    format!(
        "campaign {}: {} completed, {} resumed, {} cancelled, {} degraded, \
         {} timed out, {} failed, {} panicked",
        if result.healthy() {
            "healthy"
        } else {
            "UNHEALTHY"
        },
        result.completed(),
        result.resumed(),
        result.cancelled(),
        result.degraded(),
        result.timed_out(),
        result.failed(),
        result.panicked(),
    )
}

//! Workloads for each benchmark design (the paper's §5.1 methodology):
//! each workload produces a recorded [`InputTrace`] that can be replayed
//! against any simulator configuration, isolating simulation time from
//! stimulus generation.

use crate::programs::{boot_workload, isa_suite, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov_firrtl::ir::Circuit;
use rtlcov_sim::testbench::InputTrace;
use rtlcov_sim::Simulator;

/// A named benchmark: circuit + replayable input trace (+ optional program
/// image for CPU designs).
pub struct Workload {
    /// Benchmark name (matches Table 2 rows).
    pub name: &'static str,
    /// The circuit under test (high form, pre-instrumentation).
    pub circuit: Circuit,
    /// Recorded input trace.
    pub trace: InputTrace,
    /// Program to load before replay: `(imem, dmem, program)`.
    pub program: Option<(&'static str, &'static str, Program)>,
}

impl Workload {
    /// Load the program image (if any) and replay the trace.
    pub fn run(&self, sim: &mut dyn Simulator) -> rtlcov_core::CoverageMap {
        if let Some((imem, dmem, program)) = &self.program {
            program
                .load(sim, imem, dmem)
                .expect("program fits in memory");
        }
        self.trace.replay(sim)
    }
}

/// GCD workload: a stream of operand pairs (quickstart scale).
pub fn gcd_workload(pairs: usize) -> Workload {
    gcd_workload_with(pairs, 1)
}

/// [`gcd_workload`] with an explicit stimulus seed, so campaign shards
/// explore distinct operand streams.
pub fn gcd_workload_with(pairs: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::new();
    for _ in 0..pairs {
        let a = rng.gen_range(1u64..0xffff);
        let b = rng.gen_range(1u64..0xffff);
        // load for one cycle, then give the unit time to converge
        values.push(vec![0, a, b, 1]);
        for _ in 0..48 {
            values.push(vec![0, a, b, 0]);
        }
    }
    let mut trace = InputTrace::new(vec![
        "reset".into(),
        "io_a".into(),
        "io_b".into(),
        "io_load".into(),
    ]);
    trace.push(vec![1, 0, 0, 0]);
    for v in values {
        trace.push(v);
    }
    Workload {
        name: "gcd",
        circuit: crate::gcd::gcd(16),
        trace,
        program: None,
    }
}

/// riscv-mini workload: replay of the ISA suite programs back-to-back is
/// not possible in one image, so the Table 2 row uses the longest-running
/// single program (the boot workload at small scale).
pub fn riscv_mini_workload(cycles: usize) -> Workload {
    let mut trace = InputTrace::new(vec!["reset".into()]);
    trace.push(vec![1]);
    trace.push(vec![1]);
    for _ in 0..cycles {
        trace.push(vec![0]);
    }
    Workload {
        name: "riscv-mini",
        circuit: crate::riscv_mini::riscv_mini(),
        trace,
        program: Some(("icache.mem", "dcache.mem", boot_workload(2000))),
    }
}

/// One workload per ISA-suite program (used by §5.3 coverage merging).
pub fn riscv_isa_workloads(cycles_each: usize) -> Vec<Workload> {
    isa_suite()
        .into_iter()
        .map(|(name, program)| {
            let mut trace = InputTrace::new(vec!["reset".into()]);
            trace.push(vec![1]);
            trace.push(vec![1]);
            for _ in 0..cycles_each {
                trace.push(vec![0]);
            }
            Workload {
                name,
                circuit: crate::riscv_mini::riscv_mini(),
                trace,
                program: Some(("icache.mem", "dcache.mem", program)),
            }
        })
        .collect()
}

/// TLRAM workload: random get/put traffic.
pub fn tlram_workload(requests: usize) -> Workload {
    tlram_workload_with(requests, 2)
}

/// [`tlram_workload`] with an explicit stimulus seed.
pub fn tlram_workload_with(requests: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = vec![
        "reset".to_string(),
        "a_valid".to_string(),
        "a_bits_opcode".to_string(),
        "a_bits_address".to_string(),
        "a_bits_data".to_string(),
        "d_ready".to_string(),
    ];
    let mut trace = InputTrace::new(inputs);
    trace.push(vec![1, 0, 0, 0, 0, 0]);
    for _ in 0..requests {
        let put = rng.gen_bool(0.5);
        let opcode = if put {
            crate::tlram::OP_PUT
        } else {
            crate::tlram::OP_GET
        };
        let addr = rng.gen_range(0u64..256);
        let data = rng.gen::<u32>() as u64;
        trace.push(vec![0, 1, opcode, addr, data, 1]);
        trace.push(vec![0, 0, 0, 0, 0, 1]);
        trace.push(vec![0, 0, 0, 0, 0, 1]);
    }
    Workload {
        name: "TLRAM",
        circuit: crate::tlram::tlram(32, 256),
        trace,
        program: None,
    }
}

/// Serial-ALU workload: a stream of random operations.
pub fn serv_workload(operations: usize) -> Workload {
    serv_workload_with(operations, 3)
}

/// [`serv_workload`] with an explicit stimulus seed.
pub fn serv_workload_with(operations: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = vec![
        "reset".to_string(),
        "start".to_string(),
        "op_a".to_string(),
        "op_b".to_string(),
        "op_sel".to_string(),
    ];
    let mut trace = InputTrace::new(inputs);
    trace.push(vec![1, 0, 0, 0, 0]);
    for _ in 0..operations {
        let a = rng.gen::<u16>() as u64;
        let b = rng.gen::<u16>() as u64;
        let sel = rng.gen_range(0u64..5);
        trace.push(vec![0, 1, a, b, sel]);
        for _ in 0..18 {
            trace.push(vec![0, 0, a, b, sel]);
        }
    }
    Workload {
        name: "serv-like",
        circuit: crate::serv_like::serv_like(16),
        trace,
        program: None,
    }
}

/// NeuroProc workload: Poisson-ish input spikes for many cycles.
pub fn neuroproc_workload(cycles: usize) -> Workload {
    neuroproc_workload_with(cycles, 4)
}

/// [`neuroproc_workload`] with an explicit stimulus seed.
pub fn neuroproc_workload_with(cycles: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = vec![
        "reset".to_string(),
        "in_spike".to_string(),
        "in_weight".to_string(),
        "threshold".to_string(),
        "leak".to_string(),
        "refr_period".to_string(),
        "inhibit".to_string(),
    ];
    let mut trace = InputTrace::new(inputs);
    trace.push(vec![1, 0, 0, 200, 1, 3, 0]);
    for _ in 0..cycles {
        let spike = rng.gen_bool(0.3) as u64;
        let weight = rng.gen_range(0u64..256);
        let inhibit = rng.gen_bool(0.1) as u64;
        trace.push(vec![0, spike, weight, 200, 1, 3, inhibit]);
    }
    Workload {
        name: "NeuroProc",
        circuit: crate::neuroproc_like::neuroproc_like(64),
        trace,
        program: None,
    }
}

/// I2C workload: a few valid transactions embedded in idle time.
pub fn i2c_workload(transactions: usize) -> Workload {
    i2c_workload_with(transactions, 5)
}

/// [`i2c_workload`] with an explicit stimulus seed.
pub fn i2c_workload_with(transactions: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = vec![
        "reset".to_string(),
        "scl".to_string(),
        "sda_in".to_string(),
        "data_in".to_string(),
    ];
    let mut trace = InputTrace::new(inputs);
    trace.push(vec![1, 1, 1, 0]);
    let half = |trace: &mut InputTrace, scl: u64, sda: u64| {
        trace.push(vec![0, scl, sda, 0x5a]);
    };
    for _ in 0..transactions {
        let byte: u64 = rng.gen_range(0..256);
        // idle
        half(&mut trace, 1, 1);
        half(&mut trace, 1, 1);
        // start
        half(&mut trace, 1, 0);
        half(&mut trace, 0, 0);
        // address + write bit
        let addr_bits: Vec<u64> = (0..7)
            .rev()
            .map(|i| (crate::i2c::DEVICE_ADDR >> i) & 1)
            .chain(std::iter::once(0))
            .collect();
        for b in addr_bits {
            half(&mut trace, 0, b);
            half(&mut trace, 1, b);
            half(&mut trace, 0, b);
        }
        // ack
        half(&mut trace, 0, 1);
        half(&mut trace, 1, 1);
        half(&mut trace, 0, 1);
        // data byte
        for i in (0..8).rev() {
            let b = (byte >> i) & 1;
            half(&mut trace, 0, b);
            half(&mut trace, 1, b);
            half(&mut trace, 0, b);
        }
        // ack + stop
        half(&mut trace, 0, 1);
        half(&mut trace, 1, 1);
        half(&mut trace, 0, 0);
        half(&mut trace, 1, 0);
        half(&mut trace, 1, 1);
    }
    Workload {
        name: "i2c",
        circuit: crate::i2c::i2c(),
        trace,
        program: None,
    }
}

/// Queue workload: random enqueue/dequeue pressure on the canonical
/// DecoupledIO component, including bursts that fill and drain it.
pub fn queue_workload(operations: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = vec![
        "reset".to_string(),
        "enq_valid".to_string(),
        "enq_bits".to_string(),
        "deq_ready".to_string(),
    ];
    let mut trace = InputTrace::new(inputs);
    trace.push(vec![1, 0, 0, 0]);
    for _ in 0..operations {
        let bits = rng.gen_range(0u64..256);
        let enq = rng.gen_bool(0.6) as u64;
        let deq = rng.gen_bool(0.4) as u64;
        trace.push(vec![0, enq, bits, deq]);
    }
    // drain whatever is left so the empty/full states both get exercised
    for _ in 0..8 {
        trace.push(vec![0, 0, 0, 1]);
    }
    Workload {
        name: "queue",
        circuit: crate::queue::queue(8, 4),
        trace,
        program: None,
    }
}

/// Stable names of the designs a coverage campaign can enumerate, in the
/// order campaigns schedule them.
pub fn campaign_design_names() -> Vec<&'static str> {
    vec![
        "gcd",
        "queue",
        "tlram",
        "serv",
        "neuroproc",
        "i2c",
        "riscv-mini",
    ]
}

/// The workload for one campaign shard of a design: the same circuit
/// driven by a shard-specific stimulus seed, so shards explore distinct
/// input streams and their coverage merges meaningfully. `scale`
/// multiplies the per-shard stimulus length (1 = smoke-test scale).
///
/// Returns `None` for unknown design names. riscv-mini replays the boot
/// program, which is seed-independent: every shard runs the same image.
pub fn campaign_workload(design: &str, shard: u64, scale: usize) -> Option<Workload> {
    // decorrelate shard streams from the fixed per-design default seeds
    let seed = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(shard.wrapping_add(1));
    Some(match design {
        "gcd" => gcd_workload_with(4 * scale, seed),
        "queue" => queue_workload(60 * scale, seed),
        "tlram" => tlram_workload_with(30 * scale, seed),
        "serv" => serv_workload_with(8 * scale, seed),
        "neuroproc" => neuroproc_workload_with(200 * scale, seed),
        "i2c" => i2c_workload_with(scale, seed),
        "riscv-mini" => riscv_mini_workload(1500 * scale),
        _ => return None,
    })
}

/// The four Table 2 benchmarks at the given scale factor (1 = quick CI
/// scale; the bench harness uses larger factors).
pub fn table2_workloads(scale: usize) -> Vec<Workload> {
    vec![
        riscv_mini_workload(1500 * scale),
        tlram_workload(300 * scale),
        serv_workload(40 * scale),
        neuroproc_workload(2000 * scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;

    #[test]
    fn workloads_execute_on_compiled_sim() {
        for w in table2_workloads(1) {
            let low = passes::lower(w.circuit.clone()).unwrap();
            let mut sim = CompiledSim::new(&low).unwrap();
            let counts = w.run(&mut sim);
            // baseline designs have no covers; the map is empty but the
            // run must complete
            assert_eq!(counts.len(), 0, "{}", w.name);
            assert!(w.trace.cycles() > 100, "{}", w.name);
        }
    }

    #[test]
    fn queue_workload_fills_and_drains() {
        use rtlcov_sim::Simulator;
        let w = queue_workload(60, 7);
        let low = passes::lower(w.circuit.clone()).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        let mut max_count = 0;
        for cycle_values in &w.trace.values {
            for (name, value) in w.trace.inputs.iter().zip(cycle_values) {
                sim.poke(name, *value);
            }
            sim.step();
            max_count = max_count.max(sim.peek("count"));
        }
        assert_eq!(max_count, 4, "queue never filled");
        assert_eq!(sim.peek("count"), 0, "queue did not drain");
    }

    #[test]
    fn campaign_workloads_enumerate_and_differ_by_shard() {
        assert!(campaign_workload("nope", 0, 1).is_none());
        for name in campaign_design_names() {
            let w = campaign_workload(name, 0, 1).unwrap();
            assert!(w.trace.cycles() > 0, "{name}");
        }
        let a = campaign_workload("gcd", 0, 1).unwrap();
        let b = campaign_workload("gcd", 1, 1).unwrap();
        assert_ne!(a.trace.values, b.trace.values, "shards must differ");
    }

    #[test]
    fn i2c_workload_reaches_write_state() {
        use rtlcov_sim::Simulator;
        let w = i2c_workload(2);
        let low = passes::lower(w.circuit.clone()).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        let mut deepest = 0;
        for cycle_values in &w.trace.values {
            for (name, value) in w.trace.inputs.iter().zip(cycle_values) {
                sim.poke(name, *value);
            }
            sim.step();
            deepest = deepest.max(sim.peek("st"));
        }
        assert!(deepest >= crate::i2c::state::WRITE, "deepest {deepest}");
    }
}

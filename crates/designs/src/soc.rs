//! Scaled SoC configurations for the FPGA experiments (Figures 9/10).
//!
//! The paper instruments a four-core Rocket SoC (8060 line covers) and a
//! BOOM SoC (12059). As the laptop-scale substitute, `rocket_like` glues
//! four riscv-mini tiles together and `boom_like` adds wider per-tile
//! peripherals (TLRAM banks + a neuron array), so the boom-like design
//! carries ~1.5× the cover points of the rocket-like one — matching the
//! paper's ratio even though the absolute counts are smaller.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

fn soc_top(name: &str, tiles: usize, with_uncore: bool) -> ModuleBuilder {
    let mut m = ModuleBuilder::new(name);
    m.clock();
    m.reset();
    let halted = m.output("halted", 1);
    let retired = m.output("retired", 32);

    let mut halt_all = Expr::one();
    let mut retired_sum = Expr::u(0, 32);
    for i in 0..tiles {
        let tile = m.inst(format!("tile{i}"), "Tile");
        m.connect(tile.field("clock"), Expr::r("clock"));
        m.connect(tile.field("reset"), Expr::r("reset"));
        halt_all = Expr::and(halt_all, tile.field("halted"));
        retired_sum = retired_sum.addw(&tile.field("retired"));
    }
    if with_uncore {
        // boom-like extras: serial ALU + neuron array driven by tile 0
        let serial = m.inst("serial", "SerialAlu");
        m.connect(serial.field("clock"), Expr::r("clock"));
        m.connect(serial.field("reset"), Expr::r("reset"));
        m.connect(serial.field("start"), Expr::r("tile0").field("halted"));
        m.connect(
            serial.field("op_a"),
            Expr::r("tile0").field("retired").bits(15, 0),
        );
        m.connect(serial.field("op_b"), Expr::u(42, 16));
        m.connect(serial.field("op_sel"), Expr::u(0, 3));
        let neuro = m.inst("neuro", "NeuroProc");
        m.connect(neuro.field("clock"), Expr::r("clock"));
        m.connect(neuro.field("reset"), Expr::r("reset"));
        m.connect(neuro.field("in_spike"), Expr::r("tile0").field("halted"));
        m.connect(
            neuro.field("in_weight"),
            Expr::r("tile0").field("retired").bits(7, 0),
        );
        m.connect(neuro.field("threshold"), Expr::u(100, 16));
        m.connect(neuro.field("leak"), Expr::u(1, 4));
    }
    m.connect(halted, halt_all);
    m.connect(retired, retired_sum);
    m
}

/// Rocket-analog SoC: four in-order riscv-mini tiles.
pub fn rocket_like() -> Circuit {
    let base = crate::riscv_mini::riscv_mini();
    let mut builder = CircuitBuilder::new("RocketSoc").add(soc_top("RocketSoc", 4, false));
    // splice in the tile's modules and annotations
    let mut circuit = builder_finish(&mut builder, base, None);
    circuit.top = "RocketSoc".into();
    circuit
}

/// BOOM-analog SoC: six tiles plus uncore peripherals, carrying ~1.5× the
/// cover points of the rocket-like SoC per the paper's Rocket/BOOM ratio.
pub fn boom_like() -> Circuit {
    let base = crate::riscv_mini::riscv_mini();
    let extras: Vec<Circuit> = vec![
        crate::serv_like::serv_like(16),
        crate::neuroproc_like::neuroproc_like(32),
    ];
    let mut builder = CircuitBuilder::new("BoomSoc").add(soc_top("BoomSoc", 6, true));
    let mut circuit = builder_finish(&mut builder, base, Some(extras));
    circuit.top = "BoomSoc".into();
    circuit
}

fn builder_finish(
    builder: &mut CircuitBuilder,
    base: Circuit,
    extras: Option<Vec<Circuit>>,
) -> Circuit {
    let placeholder = std::mem::replace(builder, CircuitBuilder::new("x"));
    let mut circuit = placeholder.build_unchecked();
    circuit.modules.extend(base.modules);
    circuit.annotations.extend(base.annotations);
    for extra in extras.into_iter().flatten() {
        circuit.modules.extend(extra.modules);
        circuit.annotations.extend(extra.annotations);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::boot_workload;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    #[test]
    fn rocket_like_executes_on_all_tiles() {
        let low = passes::lower(rocket_like()).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        let p = boot_workload(2);
        for i in 0..4 {
            p.load(
                &mut sim,
                &format!("tile{i}.icache.mem"),
                &format!("tile{i}.dcache.mem"),
            )
            .unwrap();
        }
        sim.reset(2);
        for _ in 0..30_000 {
            if sim.peek("halted") == 1 {
                break;
            }
            sim.step();
        }
        assert_eq!(sim.peek("halted"), 1);
        assert!(sim.peek("retired") > 0);
    }

    #[test]
    fn boom_like_lowers() {
        let low = passes::lower(boom_like()).unwrap();
        assert!(CompiledSim::new(&low).is_ok());
    }
}

//! A TileLink-flavored RAM (the paper's TLRAM benchmark analog).
//!
//! One decoupled `a` request channel (Get/PutFull opcodes) and one
//! decoupled `d` response channel, backed by a synchronous-write /
//! combinational-read memory — few branches (the paper measured only 8
//! line cover points on TLRAM) but thousands of toggle targets.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr, Field, Type};

/// TileLink-ish A-channel opcode for writes.
pub const OP_PUT: u64 = 0;
/// TileLink-ish A-channel opcode for reads.
pub const OP_GET: u64 = 4;

fn a_channel(data_width: u32, addr_width: u32) -> Type {
    Type::Bundle(vec![
        Field {
            name: "ready".into(),
            flip: true,
            ty: Type::bool(),
        },
        Field {
            name: "valid".into(),
            flip: false,
            ty: Type::bool(),
        },
        Field {
            name: "bits".into(),
            flip: false,
            ty: Type::Bundle(vec![
                Field {
                    name: "opcode".into(),
                    flip: false,
                    ty: Type::uint(3),
                },
                Field {
                    name: "address".into(),
                    flip: false,
                    ty: Type::uint(addr_width),
                },
                Field {
                    name: "data".into(),
                    flip: false,
                    ty: Type::uint(data_width),
                },
            ]),
        },
    ])
}

fn d_channel(data_width: u32) -> Type {
    Type::Bundle(vec![
        Field {
            name: "ready".into(),
            flip: true,
            ty: Type::bool(),
        },
        Field {
            name: "valid".into(),
            flip: false,
            ty: Type::bool(),
        },
        Field {
            name: "bits".into(),
            flip: false,
            ty: Type::Bundle(vec![
                Field {
                    name: "opcode".into(),
                    flip: false,
                    ty: Type::uint(3),
                },
                Field {
                    name: "data".into(),
                    flip: false,
                    ty: Type::uint(data_width),
                },
            ]),
        },
    ])
}

/// Build a TLRAM with `words` elements of `data_width` bits.
pub fn tlram(data_width: u32, words: usize) -> Circuit {
    let addr_width = rtlcov_firrtl::typecheck::addr_width(words);
    let mut m = ModuleBuilder::new("TlRam");
    m.clock();
    m.reset();
    let a = m.input_ty("a", a_channel(data_width, addr_width));
    let d = m.output_ty("d", d_channel(data_width));

    let mem = m.mem("mem", data_width, words, &["r"], &["w"]);
    let busy = m.reg_init("busy", 1, Expr::u(0, 1));
    let resp_op = m.reg("resp_op", 3);
    let resp_data = m.reg("resp_data", data_width);

    let a_fire = m.node("a_fire", a.field("valid").and(&a.field("ready")));
    let d_fire = m.node("d_fire", d.field("valid").and(&d.field("ready")));
    let is_put = m.node(
        "is_put",
        a.field("bits").field("opcode").eq_(&Expr::u(OP_PUT, 3)),
    );

    m.connect(a.field("ready"), busy.not_().bits(0, 0));
    m.connect(d.field("valid"), busy.clone());
    m.connect(d.field("bits").field("opcode"), resp_op.clone());
    m.connect(d.field("bits").field("data"), resp_data.clone());

    m.connect(
        mem.field("r").field("addr"),
        a.field("bits").field("address"),
    );
    m.connect(mem.field("r").field("en"), Expr::one());
    m.connect(
        mem.field("w").field("addr"),
        a.field("bits").field("address"),
    );
    m.connect(mem.field("w").field("en"), a_fire.and(&is_put).bits(0, 0));
    m.connect(mem.field("w").field("data"), a.field("bits").field("data"));
    m.connect(mem.field("w").field("mask"), Expr::one());

    let af = a_fire.clone();
    let ip = is_put.clone();
    m.when(af, move |m| {
        m.connect(Expr::r("busy"), Expr::u(1, 1));
        let ip2 = ip.clone();
        m.when_else(
            ip2,
            move |m| {
                // AccessAck
                m.connect(Expr::r("resp_op"), Expr::u(0, 3));
                m.connect(Expr::r("resp_data"), Expr::u(0, data_width));
            },
            |m| {
                // AccessAckData with the read value
                m.connect(Expr::r("resp_op"), Expr::u(1, 3));
                m.connect(
                    Expr::r("resp_data"),
                    Expr::r("mem").field("r").field("data"),
                );
            },
        );
    });
    let df = d_fire.clone();
    m.when(df, |m| {
        m.connect(Expr::r("busy"), Expr::u(0, 1));
    });

    CircuitBuilder::new("TlRam").add(m).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn sim() -> CompiledSim {
        let low = passes::lower(tlram(32, 256)).unwrap();
        CompiledSim::new(&low).unwrap()
    }

    fn request(s: &mut CompiledSim, opcode: u64, addr: u64, data: u64) -> u64 {
        s.poke("a_valid", 1);
        s.poke("a_bits_opcode", opcode);
        s.poke("a_bits_address", addr);
        s.poke("a_bits_data", data);
        s.poke("d_ready", 1);
        assert_eq!(s.peek("a_ready"), 1, "ram must be idle");
        s.step();
        s.poke("a_valid", 0);
        for _ in 0..4 {
            if s.peek("d_valid") == 1 {
                let v = s.peek("d_bits_data");
                s.step(); // consume response
                return v;
            }
            s.step();
        }
        panic!("no response");
    }

    #[test]
    fn write_then_read() {
        let mut s = sim();
        s.reset(1);
        request(&mut s, OP_PUT, 7, 0xdeadbeef);
        let v = request(&mut s, OP_GET, 7, 0);
        assert_eq!(v, 0xdeadbeef);
    }

    #[test]
    fn back_to_back_requests_respect_ready() {
        let mut s = sim();
        s.reset(1);
        for i in 0..10u64 {
            request(&mut s, OP_PUT, i, i * 3);
        }
        for i in 0..10u64 {
            assert_eq!(request(&mut s, OP_GET, i, 0), i * 3);
        }
    }
}

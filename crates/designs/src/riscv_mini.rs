//! A riscv-mini analog: a multi-cycle RV32I core with split instruction and
//! data caches.
//!
//! The structure mirrors the paper's riscv-mini benchmark deliberately:
//!
//! * the **same `Cache` module** is instantiated for both the instruction
//!   and the data path, but the instruction port never issues writes —
//!   the cache's write-handling code is *unreachable* in the icache
//!   instance, which is exactly the dead code the paper's formal trace
//!   generation discovered (§5.5);
//! * both caches and the core use **enum-annotated FSM registers**, giving
//!   the FSM coverage pass real state machines to analyze;
//! * all memory interfaces are **decoupled (ready/valid) bundles**, giving
//!   the ready/valid pass real interfaces to find.
//!
//! The core executes RV32I arithmetic, logic, shifts, branches, jumps,
//! `lw`/`sw`, and treats `SYSTEM` (ecall) as halt. Programs are loaded
//! through the simulator's backdoor memory interface (see
//! [`crate::programs`]).

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr, Field, Type};

/// Cache FSM states (enum `CacheState`).
pub mod cache_state {
    /// Waiting for a request.
    pub const IDLE: u64 = 0;
    /// Reading the backing store.
    pub const READ: u64 = 1;
    /// Writing the backing store.
    pub const WRITE: u64 = 2;
    /// Holding the response until accepted.
    pub const RESP: u64 = 3;
}

/// Core FSM states (enum `CoreState`).
pub mod core_state {
    /// Issue instruction fetch.
    pub const FETCH: u64 = 0;
    /// Wait for fetch response.
    pub const FETCH_WAIT: u64 = 1;
    /// Decode + execute.
    pub const EXEC: u64 = 2;
    /// Wait for data memory response.
    pub const MEM_WAIT: u64 = 3;
    /// Write back + advance PC.
    pub const WB: u64 = 4;
}

/// Number of 32-bit words in each cache's backing store.
pub const CACHE_WORDS: usize = 4096;

fn req_bundle() -> Type {
    Type::Bundle(vec![
        Field {
            name: "ready".into(),
            flip: true,
            ty: Type::bool(),
        },
        Field {
            name: "valid".into(),
            flip: false,
            ty: Type::bool(),
        },
        Field {
            name: "bits".into(),
            flip: false,
            ty: Type::Bundle(vec![
                Field {
                    name: "addr".into(),
                    flip: false,
                    ty: Type::uint(32),
                },
                Field {
                    name: "wdata".into(),
                    flip: false,
                    ty: Type::uint(32),
                },
                Field {
                    name: "wen".into(),
                    flip: false,
                    ty: Type::bool(),
                },
            ]),
        },
    ])
}

fn resp_bundle() -> Type {
    Type::Bundle(vec![
        Field {
            name: "ready".into(),
            flip: true,
            ty: Type::bool(),
        },
        Field {
            name: "valid".into(),
            flip: false,
            ty: Type::bool(),
        },
        Field {
            name: "bits".into(),
            flip: false,
            ty: Type::Bundle(vec![Field {
                name: "rdata".into(),
                flip: false,
                ty: Type::uint(32),
            }]),
        },
    ])
}

/// Build the `Cache` module: a blocking cache-shaped scratchpad with a
/// 4-state FSM and a decoupled request/response interface.
fn cache_module(words: usize) -> ModuleBuilder {
    use cache_state::*;
    let mut m = ModuleBuilder::new("Cache");
    m.clock();
    m.reset();
    let req = m.input_ty("req", req_bundle());
    let resp = m.output_ty("resp", resp_bundle());

    let state = m.reg_enum("state", 2, Expr::u(IDLE, 2), "CacheState");
    let addr_reg = m.reg("addr_reg", 32);
    let wdata_reg = m.reg("wdata_reg", 32);
    let wen_reg = m.reg("wen_reg", 1);
    let rdata_reg = m.reg("rdata_reg", 32);

    let mem = m.mem("mem", 32, words, &["r"], &["w"]);
    let addr_hi = 1 + rtlcov_firrtl::typecheck::addr_width(words);
    let word_addr = m.node("word_addr", addr_reg.bits(addr_hi, 2));

    m.connect(req.field("ready"), state.eq_(&Expr::u(IDLE, 2)));
    m.connect(resp.field("valid"), state.eq_(&Expr::u(RESP, 2)));
    m.connect(resp.field("bits").field("rdata"), rdata_reg.clone());

    m.connect(mem.field("r").field("addr"), word_addr.clone());
    m.connect(mem.field("r").field("en"), state.eq_(&Expr::u(READ, 2)));
    m.connect(mem.field("w").field("addr"), word_addr.clone());
    m.connect(mem.field("w").field("en"), state.eq_(&Expr::u(WRITE, 2)));
    m.connect(mem.field("w").field("data"), wdata_reg.clone());
    m.connect(mem.field("w").field("mask"), Expr::one());

    // FSM
    let st = state.clone();
    let req2 = req.clone();
    m.when(st.eq_(&Expr::u(IDLE, 2)), move |m| {
        let fire = req2.field("valid");
        let st2 = st.clone();
        let req3 = req2.clone();
        m.when(fire, move |m| {
            m.connect(Expr::r("addr_reg"), req3.field("bits").field("addr"));
            m.connect(Expr::r("wdata_reg"), req3.field("bits").field("wdata"));
            m.connect(Expr::r("wen_reg"), req3.field("bits").field("wen"));
            let st3 = st2.clone();
            m.when_else(
                req3.field("bits").field("wen"),
                move |m| {
                    // write path: unreachable when the requester never
                    // asserts wen (the icache instance)
                    m.connect(st3.clone(), Expr::u(WRITE, 2));
                },
                move |m| {
                    m.connect(Expr::r("state"), Expr::u(READ, 2));
                },
            );
        });
    });
    let st = state.clone();
    m.when(st.eq_(&Expr::u(READ, 2)), move |m| {
        m.connect(
            Expr::r("rdata_reg"),
            Expr::r("mem").field("r").field("data"),
        );
        m.connect(Expr::r("state"), Expr::u(RESP, 2));
    });
    let st = state.clone();
    m.when(st.eq_(&Expr::u(WRITE, 2)), move |m| {
        // write completes in one cycle; data was latched in IDLE
        m.connect(Expr::r("state"), Expr::u(RESP, 2));
    });
    let st = state.clone();
    let resp2 = resp.clone();
    m.when(st.eq_(&Expr::u(RESP, 2)), move |m| {
        let st2 = st.clone();
        m.when(resp2.field("ready"), move |m| {
            m.connect(st2.clone(), Expr::u(IDLE, 2));
        });
    });
    let _ = (wen_reg, mem);
    m
}

// RV32I opcodes
const OP_LUI: u64 = 0b0110111;
const OP_AUIPC: u64 = 0b0010111;
const OP_JAL: u64 = 0b1101111;
const OP_JALR: u64 = 0b1100111;
const OP_BRANCH: u64 = 0b1100011;
const OP_LOAD: u64 = 0b0000011;
const OP_STORE: u64 = 0b0100011;
const OP_IMM: u64 = 0b0010011;
const OP_OP: u64 = 0b0110011;
const OP_SYSTEM: u64 = 0b1110011;

fn sext_to_32(e: Expr) -> Expr {
    e.as_sint().pad(32).as_uint().bits(31, 0)
}

/// Build the `Core` module: a 5-state multi-cycle RV32I core.
#[allow(clippy::too_many_lines)]
fn core_module() -> ModuleBuilder {
    use core_state::*;
    let mut m = ModuleBuilder::new("Core");
    m.clock();
    m.reset();
    let ireq = m.output_ty("ireq", req_bundle());
    let iresp = m.input_ty("iresp", resp_bundle());
    let dreq = m.output_ty("dreq", req_bundle());
    let dresp = m.input_ty("dresp", resp_bundle());
    let halted = m.output("halted", 1);
    let retired = m.output("retired", 32);

    let state = m.reg_enum("state", 3, Expr::u(FETCH, 3), "CoreState");
    let pc = m.reg_init("pc", 32, Expr::u(0, 32));
    let inst = m.reg_init("inst", 32, Expr::u(0x13, 32)); // nop
    let halt_reg = m.reg_init("halt_reg", 1, Expr::u(0, 1));
    let retired_reg = m.reg_init("retired_reg", 32, Expr::u(0, 32));
    let next_pc = m.reg("next_pc", 32);
    let wb_val = m.reg("wb_val", 32);
    let wb_en = m.reg("wb_en", 1);
    let is_load_reg = m.reg("is_load_reg", 1);
    let ld_data = m.reg("ld_data", 32);

    let rf = m.mem("rf", 32, 32, &["r1", "r2"], &["w"]);

    // ------------------------------------------------------ decode nodes
    let opcode = m.node("opcode", inst.bits(6, 0));
    let rd = m.node("rd", inst.bits(11, 7));
    let funct3 = m.node("funct3", inst.bits(14, 12));
    let funct7b5 = m.node("funct7b5", inst.bit(30));
    let rs1 = m.node("rs1", inst.bits(19, 15));
    let rs2 = m.node("rs2", inst.bits(24, 20));

    m.connect(rf.field("r1").field("addr"), rs1.clone());
    m.connect(rf.field("r1").field("en"), Expr::one());
    m.connect(rf.field("r2").field("addr"), rs2.clone());
    m.connect(rf.field("r2").field("en"), Expr::one());
    let rs1_data = m.node(
        "rs1_data",
        rs1.eq_(&Expr::u(0, 5))
            .mux(&Expr::u(0, 32), &rf.field("r1").field("data")),
    );
    let rs2_data = m.node(
        "rs2_data",
        rs2.eq_(&Expr::u(0, 5))
            .mux(&Expr::u(0, 32), &rf.field("r2").field("data")),
    );

    // immediates
    let imm_i = m.node("imm_i", sext_to_32(inst.bits(31, 20)));
    let imm_s = m.node(
        "imm_s",
        sext_to_32(inst.bits(31, 25).cat(&inst.bits(11, 7))),
    );
    let _imm_b = m.node(
        "imm_b",
        sext_to_32(
            inst.bit(31)
                .cat(&inst.bit(7))
                .cat(&inst.bits(30, 25))
                .cat(&inst.bits(11, 8))
                .cat(&Expr::u(0, 1)),
        ),
    );
    let _imm_u = m.node("imm_u", inst.bits(31, 12).cat(&Expr::u(0, 12)));
    let _imm_j = m.node(
        "imm_j",
        sext_to_32(
            inst.bit(31)
                .cat(&inst.bits(19, 12))
                .cat(&inst.bit(20))
                .cat(&inst.bits(30, 21))
                .cat(&Expr::u(0, 1)),
        ),
    );

    // ------------------------------------------------------ ALU
    let is_imm_op = m.node("is_imm_op", opcode.eq_(&Expr::u(OP_IMM, 7)));
    let alu_a = m.node("alu_a", rs1_data.clone());
    let alu_b = m.node("alu_b", is_imm_op.mux(&imm_i, &rs2_data));
    let shamt = m.node("shamt", alu_b.bits(4, 0));
    // sub only for OP (not OP-IMM) when funct7[5]
    let is_sub = m.node(
        "is_sub",
        opcode.eq_(&Expr::u(OP_OP, 7)).and(&funct7b5.clone()),
    );
    let add_res = m.node("add_res", alu_a.addw(&alu_b));
    let sub_res = m.node("sub_res", alu_a.subw(&alu_b));
    let sll_res = m.node("sll_res", alu_a.dshl(&shamt).bits(31, 0));
    let slt_res = m.node("slt_res", alu_a.as_sint().lt(&alu_b.as_sint()).pad(32));
    let sltu_res = m.node("sltu_res", alu_a.lt(&alu_b).pad(32));
    let xor_res = m.node("xor_res", alu_a.xor(&alu_b));
    let srl_res = m.node("srl_res", alu_a.dshr(&shamt));
    let sra_res = m.node(
        "sra_res",
        alu_a.as_sint().dshr(&shamt).as_uint().bits(31, 0),
    );
    let or_res = m.node("or_res", alu_a.or(&alu_b));
    let and_res = m.node("and_res", alu_a.and(&alu_b));

    let _alu_out = m.node(
        "alu_out",
        funct3.eq_(&Expr::u(0, 3)).mux(
            &is_sub.mux(&sub_res, &add_res),
            &funct3.eq_(&Expr::u(1, 3)).mux(
                &sll_res,
                &funct3.eq_(&Expr::u(2, 3)).mux(
                    &slt_res,
                    &funct3.eq_(&Expr::u(3, 3)).mux(
                        &sltu_res,
                        &funct3.eq_(&Expr::u(4, 3)).mux(
                            &xor_res,
                            &funct3.eq_(&Expr::u(5, 3)).mux(
                                &funct7b5.mux(&sra_res, &srl_res),
                                &funct3.eq_(&Expr::u(6, 3)).mux(&or_res, &and_res),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );

    // branch condition
    let br_eq = m.node("br_eq", rs1_data.eq_(&rs2_data));
    let br_lt = m.node("br_lt", rs1_data.as_sint().lt(&rs2_data.as_sint()));
    let br_ltu = m.node("br_ltu", rs1_data.lt(&rs2_data));
    let _br_taken = m.node(
        "br_taken",
        funct3.eq_(&Expr::u(0, 3)).mux(
            &br_eq,
            &funct3.eq_(&Expr::u(1, 3)).mux(
                &br_eq.not_().bits(0, 0),
                &funct3.eq_(&Expr::u(4, 3)).mux(
                    &br_lt,
                    &funct3.eq_(&Expr::u(5, 3)).mux(
                        &br_lt.not_().bits(0, 0),
                        &funct3
                            .eq_(&Expr::u(6, 3))
                            .mux(&br_ltu, &br_ltu.not_().bits(0, 0)),
                    ),
                ),
            ),
        ),
    );

    let pc_plus4 = m.node("pc_plus4", pc.addw(&Expr::u(4, 32)));
    let mem_addr = m.node(
        "mem_addr",
        rs1_data.addw(&opcode.eq_(&Expr::u(OP_STORE, 7)).mux(&imm_s, &imm_i)),
    );

    // ------------------------------------------------------ default outputs
    m.connect(
        ireq.field("valid"),
        state.eq_(&Expr::u(FETCH, 3)).and(&halt_reg.not_()),
    );
    m.connect(ireq.field("bits").field("addr"), pc.clone());
    m.connect(ireq.field("bits").field("wdata"), Expr::u(0, 32));
    m.connect(ireq.field("bits").field("wen"), Expr::u(0, 1)); // never writes
    m.connect(iresp.field("ready"), state.eq_(&Expr::u(FETCH_WAIT, 3)));

    let is_mem = m.node(
        "is_mem",
        opcode
            .eq_(&Expr::u(OP_LOAD, 7))
            .or(&opcode.eq_(&Expr::u(OP_STORE, 7)))
            .bits(0, 0),
    );
    m.connect(
        dreq.field("valid"),
        state.eq_(&Expr::u(EXEC, 3)).and(&is_mem),
    );
    m.connect(dreq.field("bits").field("addr"), mem_addr.clone());
    m.connect(dreq.field("bits").field("wdata"), rs2_data.clone());
    m.connect(
        dreq.field("bits").field("wen"),
        opcode.eq_(&Expr::u(OP_STORE, 7)),
    );
    m.connect(dresp.field("ready"), state.eq_(&Expr::u(MEM_WAIT, 3)));

    m.connect(halted.clone(), halt_reg.clone());
    m.connect(retired.clone(), retired_reg.clone());

    // regfile write (only in WB)
    m.connect(rf.field("w").field("addr"), rd.clone());
    m.connect(
        rf.field("w").field("en"),
        state
            .eq_(&Expr::u(WB, 3))
            .and(&wb_en)
            .and(&rd.eq_(&Expr::u(0, 5)).not_().bits(0, 0)),
    );
    m.connect(
        rf.field("w").field("data"),
        is_load_reg.mux(&ld_data, &wb_val),
    );
    m.connect(rf.field("w").field("mask"), Expr::one());

    // ------------------------------------------------------ FSM
    let st = state.clone();
    let ireq2 = ireq.clone();
    let hr = halt_reg.clone();
    m.when(
        st.eq_(&Expr::u(FETCH, 3)).and(&hr.not_().bits(0, 0)),
        move |m| {
            let st2 = st.clone();
            m.when(ireq2.field("ready"), move |m| {
                m.connect(st2.clone(), Expr::u(FETCH_WAIT, 3));
            });
        },
    );
    let st = state.clone();
    let iresp2 = iresp.clone();
    m.when(st.eq_(&Expr::u(FETCH_WAIT, 3)), move |m| {
        let st2 = st.clone();
        let iresp3 = iresp2.clone();
        m.when(iresp3.field("valid"), move |m| {
            m.connect(Expr::r("inst"), iresp3.field("bits").field("rdata"));
            m.connect(st2.clone(), Expr::u(EXEC, 3));
        });
    });

    // EXEC: dispatch on opcode
    let st = state.clone();
    m.when(st.eq_(&Expr::u(EXEC, 3)), move |m| {
        // defaults for this instruction
        m.connect(Expr::r("next_pc"), Expr::r("pc_plus4"));
        m.connect(Expr::r("wb_en"), Expr::u(0, 1));
        m.connect(Expr::r("is_load_reg"), Expr::u(0, 1));
        m.connect(Expr::r("state"), Expr::u(WB, 3));

        let op = Expr::r("opcode");
        m.when(op.eq_(&Expr::u(OP_LUI, 7)), |m| {
            m.connect(Expr::r("wb_val"), Expr::r("imm_u"));
            m.connect(Expr::r("wb_en"), Expr::u(1, 1));
        });
        m.when(op.eq_(&Expr::u(OP_AUIPC, 7)), |m| {
            m.connect(Expr::r("wb_val"), Expr::r("pc").addw(&Expr::r("imm_u")));
            m.connect(Expr::r("wb_en"), Expr::u(1, 1));
        });
        m.when(op.eq_(&Expr::u(OP_JAL, 7)), |m| {
            m.connect(Expr::r("wb_val"), Expr::r("pc_plus4"));
            m.connect(Expr::r("wb_en"), Expr::u(1, 1));
            m.connect(Expr::r("next_pc"), Expr::r("pc").addw(&Expr::r("imm_j")));
        });
        m.when(op.eq_(&Expr::u(OP_JALR, 7)), |m| {
            m.connect(Expr::r("wb_val"), Expr::r("pc_plus4"));
            m.connect(Expr::r("wb_en"), Expr::u(1, 1));
            m.connect(
                Expr::r("next_pc"),
                Expr::r("rs1_data")
                    .addw(&Expr::r("imm_i"))
                    .and(&Expr::u(0xffff_fffe, 32)),
            );
        });
        m.when(op.eq_(&Expr::u(OP_BRANCH, 7)), |m| {
            m.when(Expr::r("br_taken"), |m| {
                m.connect(Expr::r("next_pc"), Expr::r("pc").addw(&Expr::r("imm_b")));
            });
        });
        m.when(
            op.eq_(&Expr::u(OP_IMM, 7))
                .or(&op.eq_(&Expr::u(OP_OP, 7)))
                .bits(0, 0),
            |m| {
                m.connect(Expr::r("wb_val"), Expr::r("alu_out"));
                m.connect(Expr::r("wb_en"), Expr::u(1, 1));
            },
        );
        m.when(op.eq_(&Expr::u(OP_LOAD, 7)), |m| {
            m.connect(Expr::r("wb_en"), Expr::u(1, 1));
            m.connect(Expr::r("is_load_reg"), Expr::u(1, 1));
            m.when_else(
                Expr::r("dreq").field("ready"),
                |m| m.connect(Expr::r("state"), Expr::u(MEM_WAIT, 3)),
                |m| m.connect(Expr::r("state"), Expr::u(EXEC, 3)), // retry
            );
        });
        m.when(op.eq_(&Expr::u(OP_STORE, 7)), |m| {
            m.when_else(
                Expr::r("dreq").field("ready"),
                |m| m.connect(Expr::r("state"), Expr::u(MEM_WAIT, 3)),
                |m| m.connect(Expr::r("state"), Expr::u(EXEC, 3)),
            );
        });
        m.when(op.eq_(&Expr::u(OP_SYSTEM, 7)), |m| {
            m.connect(Expr::r("halt_reg"), Expr::u(1, 1));
        });
    });

    let st = state.clone();
    let dresp2 = dresp.clone();
    m.when(st.eq_(&Expr::u(MEM_WAIT, 3)), move |m| {
        let dresp3 = dresp2.clone();
        m.when(dresp3.field("valid"), move |m| {
            m.connect(Expr::r("ld_data"), dresp3.field("bits").field("rdata"));
            m.connect(Expr::r("state"), Expr::u(WB, 3));
        });
    });

    let st = state.clone();
    m.when(st.eq_(&Expr::u(WB, 3)), move |m| {
        m.connect(Expr::r("pc"), Expr::r("next_pc"));
        m.connect(
            Expr::r("retired_reg"),
            Expr::r("retired_reg").addw(&Expr::u(1, 32)),
        );
        m.connect(Expr::r("state"), Expr::u(FETCH, 3));
    });

    let _ = (next_pc, wb_val, wb_en, ld_data, retired_reg, pc_plus4);
    m
}

/// Build the `Tile` module: core + icache + dcache.
fn tile_module() -> ModuleBuilder {
    let mut m = ModuleBuilder::new("Tile");
    m.clock();
    m.reset();
    let halted = m.output("halted", 1);
    let retired = m.output("retired", 32);
    let core = m.inst("core", "Core");
    let icache = m.inst("icache", "Cache");
    let dcache = m.inst("dcache", "Cache");
    for inst in ["core", "icache", "dcache"] {
        m.connect(Expr::r(inst).field("clock"), Expr::r("clock"));
        m.connect(Expr::r(inst).field("reset"), Expr::r("reset"));
    }
    m.connect(icache.field("req"), core.field("ireq"));
    m.connect(core.field("iresp"), icache.field("resp"));
    m.connect(dcache.field("req"), core.field("dreq"));
    m.connect(core.field("dresp"), dcache.field("resp"));
    m.connect(halted, core.field("halted"));
    m.connect(retired, core.field("retired"));
    m
}

/// Build the complete riscv-mini analog circuit (`Tile` on top) with the
/// default cache size.
pub fn riscv_mini() -> Circuit {
    riscv_mini_with(CACHE_WORDS)
}

/// Build the riscv-mini analog with `cache_words` words per cache — small
/// sizes keep the formal backend's memory encoding tractable (§5.5).
pub fn riscv_mini_with(cache_words: usize) -> Circuit {
    CircuitBuilder::new("Tile")
        .enum_def(
            "CacheState",
            &[
                ("Idle", cache_state::IDLE),
                ("Read", cache_state::READ),
                ("Write", cache_state::WRITE),
                ("Resp", cache_state::RESP),
            ],
        )
        .enum_def(
            "CoreState",
            &[
                ("Fetch", core_state::FETCH),
                ("FetchWait", core_state::FETCH_WAIT),
                ("Exec", core_state::EXEC),
                ("MemWait", core_state::MEM_WAIT),
                ("Wb", core_state::WB),
            ],
        )
        .add(cache_module(cache_words))
        .add(core_module())
        .add(tile_module())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{asm, Program};
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn boot(program: &Program, max_cycles: usize) -> CompiledSim {
        let low = passes::lower(riscv_mini()).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        program.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
        sim.reset(2);
        for _ in 0..max_cycles {
            if sim.peek("halted") == 1 {
                return sim;
            }
            sim.step();
        }
        panic!("program did not halt in {max_cycles} cycles");
    }

    fn reg(sim: &CompiledSim, x: u64) -> u64 {
        sim.read_mem("core.rf", x).unwrap()
    }

    #[test]
    fn lowers_and_elaborates() {
        let low = passes::lower(riscv_mini()).unwrap();
        assert!(CompiledSim::new(&low).is_ok());
    }

    #[test]
    fn arithmetic_program() {
        // x1 = 7; x2 = 35; x3 = x1 + x2; x4 = x2 - x1; halt
        let p = Program::new(vec![
            asm::addi(1, 0, 7),
            asm::addi(2, 0, 35),
            asm::add(3, 1, 2),
            asm::sub(4, 2, 1),
            asm::ecall(),
        ]);
        let sim = boot(&p, 2000);
        assert_eq!(reg(&sim, 1), 7);
        assert_eq!(reg(&sim, 2), 35);
        assert_eq!(reg(&sim, 3), 42);
        assert_eq!(reg(&sim, 4), 28);
    }

    #[test]
    fn logic_and_shifts() {
        let p = Program::new(vec![
            asm::addi(1, 0, 0b1100),
            asm::addi(2, 0, 0b1010),
            asm::and(3, 1, 2),
            asm::or(4, 1, 2),
            asm::xor(5, 1, 2),
            asm::slli(6, 1, 4),
            asm::srli(7, 6, 2),
            asm::ecall(),
        ]);
        let sim = boot(&p, 3000);
        assert_eq!(reg(&sim, 3), 0b1000);
        assert_eq!(reg(&sim, 4), 0b1110);
        assert_eq!(reg(&sim, 5), 0b0110);
        assert_eq!(reg(&sim, 6), 0b1100 << 4);
        assert_eq!(reg(&sim, 7), (0b1100 << 4) >> 2);
    }

    #[test]
    fn signed_ops() {
        let p = Program::new(vec![
            asm::addi(1, 0, -5),
            asm::addi(2, 0, 3),
            asm::slt(3, 1, 2),  // -5 < 3 => 1
            asm::sltu(4, 1, 2), // huge unsigned < 3 => 0
            asm::srai(5, 1, 1), // -5 >> 1 = -3
            asm::ecall(),
        ]);
        let sim = boot(&p, 3000);
        assert_eq!(reg(&sim, 3), 1);
        assert_eq!(reg(&sim, 4), 0);
        assert_eq!(reg(&sim, 5) as u32 as i32, -3);
    }

    #[test]
    fn branches_and_loop() {
        // sum = 0; for (i = 5; i != 0; i--) sum += i;  => 15
        let p = Program::new(vec![
            asm::addi(1, 0, 5),  // i
            asm::addi(2, 0, 0),  // sum
            asm::add(2, 2, 1),   // loop: sum += i
            asm::addi(1, 1, -1), // i--
            asm::bne(1, 0, -8),  // back to loop
            asm::ecall(),
        ]);
        let sim = boot(&p, 8000);
        assert_eq!(reg(&sim, 2), 15);
        assert!(sim.peek("retired") >= 5 * 3);
    }

    #[test]
    fn loads_and_stores() {
        let p = Program::new(vec![
            asm::addi(1, 0, 0x100), // base address
            asm::addi(2, 0, 77),
            asm::sw(2, 1, 0), // mem[0x100] = 77
            asm::lw(3, 1, 0), // x3 = mem[0x100]
            asm::addi(3, 3, 1),
            asm::sw(3, 1, 4), // mem[0x104] = 78
            asm::lw(4, 1, 4),
            asm::ecall(),
        ]);
        let sim = boot(&p, 5000);
        assert_eq!(reg(&sim, 3), 78);
        assert_eq!(reg(&sim, 4), 78);
        // value actually landed in the data cache backing store
        assert_eq!(sim.read_mem("dcache.mem", 0x100 / 4).unwrap(), 77);
    }

    #[test]
    fn jal_and_jalr() {
        let p = Program::new(vec![
            asm::jal(1, 8),      // skip next instruction; x1 = 4
            asm::addi(2, 0, 99), // skipped
            asm::addi(3, 0, 1),
            asm::jalr(4, 1, 0), // jump to addr in x1 (=4): addi x2 99 runs now
            asm::ecall(),       // (skipped on first pass)
        ]);
        // flow: jal -> addi x3 -> jalr -> addi x2 -> addi x3 (again) -> jalr
        // loops... To keep it terminating, jump forward instead:
        let p2 = Program::new(vec![
            asm::jal(1, 12),     // to insn 3; x1 = 4
            asm::addi(2, 0, 99), // skipped
            asm::ecall(),        // insn 2 (landing pad for jalr)
            asm::addi(3, 0, 1),  // insn 3
            asm::jalr(4, 0, 8),  // jump to absolute 8 = insn 2 (ecall)
        ]);
        let sim = boot(&p2, 4000);
        assert_eq!(reg(&sim, 1), 4);
        assert_eq!(reg(&sim, 3), 1);
        assert_eq!(reg(&sim, 2), 0); // the skipped insn never ran
        let _ = p;
    }

    #[test]
    fn lui_auipc() {
        let p = Program::new(vec![asm::lui(1, 0x12345), asm::auipc(2, 0x1), asm::ecall()]);
        let sim = boot(&p, 2000);
        assert_eq!(reg(&sim, 1), 0x12345000);
        assert_eq!(reg(&sim, 2), 0x1000 + 4); // pc of auipc is 4
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let p = Program::new(vec![
            asm::addi(0, 0, 55), // write to x0 is dropped
            asm::add(1, 0, 0),
            asm::ecall(),
        ]);
        let sim = boot(&p, 2000);
        assert_eq!(reg(&sim, 1), 0);
    }

    #[test]
    fn icache_never_writes() {
        let p = Program::new(vec![asm::addi(1, 0, 1), asm::sw(1, 0, 64), asm::ecall()]);
        let low = passes::lower(riscv_mini()).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        p.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
        sim.reset(2);
        for _ in 0..2000 {
            // the icache FSM must never enter the Write state
            assert_ne!(sim.peek("icache.state"), cache_state::WRITE);
            if sim.peek("halted") == 1 {
                break;
            }
            sim.step();
        }
        assert_eq!(sim.peek("halted"), 1);
        // but the dcache did see a write
        assert_eq!(sim.read_mem("dcache.mem", 16).unwrap(), 1);
    }
}

//! A golden-model RV32I instruction-set simulator.
//!
//! Used by the differential tests: random programs run both on this ISS
//! and on the RTL core (through any backend), and the architectural state
//! must match. This is how the riscv-mini analog earns trust as a
//! benchmark substrate.

/// Architectural state of the golden model.
#[derive(Debug, Clone)]
pub struct Iss {
    /// Register file (x0 hardwired to zero on read).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Instruction memory (word addressed from 0).
    pub imem: Vec<u32>,
    /// Data memory (word addressed from 0).
    pub dmem: Vec<u32>,
    /// Set when an `ecall` retires.
    pub halted: bool,
    /// Instructions retired.
    pub retired: u64,
}

impl Iss {
    /// Fresh state with the given program and data memory size (words).
    pub fn new(program: &[u32], dmem_words: usize) -> Self {
        Iss {
            regs: [0; 32],
            pc: 0,
            imem: program.to_vec(),
            dmem: vec![0; dmem_words],
            halted: false,
            retired: 0,
        }
    }

    fn read_reg(&self, r: u32) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn write_reg(&mut self, r: u32, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Execute one instruction; no-op once halted.
    ///
    /// Unknown opcodes are executed as no-ops (matching the RTL core's
    /// behavior of writing nothing and advancing the PC).
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        let word = self
            .imem
            .get((self.pc / 4) as usize)
            .copied()
            .unwrap_or(0x13);
        let opcode = word & 0x7f;
        let rd = (word >> 7) & 0x1f;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = (word >> 15) & 0x1f;
        let rs2 = (word >> 20) & 0x1f;
        let funct7b5 = (word >> 30) & 1;
        let imm_i = (word as i32) >> 20;
        let imm_s = (((word as i32) >> 25) << 5) | ((word >> 7) & 0x1f) as i32;
        let imm_b = (((word as i32) >> 31) << 12)
            | ((((word >> 7) & 1) as i32) << 11)
            | ((((word >> 25) & 0x3f) as i32) << 5)
            | ((((word >> 8) & 0xf) as i32) << 1);
        let imm_u = (word & 0xffff_f000) as i32;
        let imm_j = (((word as i32) >> 31) << 20)
            | ((((word >> 12) & 0xff) as i32) << 12)
            | ((((word >> 20) & 1) as i32) << 11)
            | ((((word >> 21) & 0x3ff) as i32) << 1);

        let a = self.read_reg(rs1);
        let b = self.read_reg(rs2);
        let mut next_pc = self.pc.wrapping_add(4);

        match opcode {
            0b0110111 => self.write_reg(rd, imm_u as u32), // lui
            0b0010111 => self.write_reg(rd, self.pc.wrapping_add(imm_u as u32)), // auipc
            0b1101111 => {
                // jal
                self.write_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(imm_j as u32);
            }
            0b1100111 => {
                // jalr
                self.write_reg(rd, self.pc.wrapping_add(4));
                next_pc = a.wrapping_add(imm_i as u32) & !1;
            }
            0b1100011 => {
                // branches
                let taken = match funct3 {
                    0b000 => a == b,
                    0b001 => a != b,
                    0b100 => (a as i32) < (b as i32),
                    0b101 => (a as i32) >= (b as i32),
                    0b110 => a < b,
                    _ => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(imm_b as u32);
                }
            }
            0b0000011 => {
                // lw (the RTL core implements word loads)
                let addr = a.wrapping_add(imm_i as u32);
                let v = self.dmem.get((addr / 4) as usize).copied().unwrap_or(0);
                self.write_reg(rd, v);
            }
            0b0100011 => {
                // sw
                let addr = a.wrapping_add(imm_s as u32);
                let idx = (addr / 4) as usize;
                if idx < self.dmem.len() {
                    self.dmem[idx] = b;
                }
            }
            0b0010011 | 0b0110011 => {
                let is_imm = opcode == 0b0010011;
                let operand = if is_imm { imm_i as u32 } else { b };
                let shamt = operand & 0x1f;
                let result = match funct3 {
                    0b000 => {
                        if !is_imm && funct7b5 == 1 {
                            a.wrapping_sub(operand)
                        } else {
                            a.wrapping_add(operand)
                        }
                    }
                    0b001 => a.wrapping_shl(shamt),
                    0b010 => u32::from((a as i32) < (operand as i32)),
                    0b011 => u32::from(a < operand),
                    0b100 => a ^ operand,
                    0b101 => {
                        if (word >> 30) & 1 == 1 {
                            ((a as i32) >> shamt) as u32
                        } else {
                            a.wrapping_shr(shamt)
                        }
                    }
                    0b110 => a | operand,
                    _ => a & operand,
                };
                self.write_reg(rd, result);
            }
            0b1110011 => {
                // ecall: halt. Not counted as retired — the RTL core
                // raises `halted` during execute, before its writeback
                // stage would have bumped the counter.
                self.halted = true;
                return;
            }
            _ => {}
        }
        self.pc = next_pc;
        self.retired += 1;
    }

    /// Run until halt or the cycle budget is spent.
    pub fn run(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if self.halted {
                break;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::asm;

    #[test]
    fn golden_model_basics() {
        let mut iss = Iss::new(
            &[
                asm::addi(1, 0, 7),
                asm::addi(2, 0, 35),
                asm::add(3, 1, 2),
                asm::sub(4, 2, 1),
                asm::ecall(),
            ],
            64,
        );
        iss.run(100);
        assert!(iss.halted);
        assert_eq!(iss.regs[3], 42);
        assert_eq!(iss.regs[4], 28);
    }

    #[test]
    fn golden_model_memory_and_branches() {
        let mut iss = Iss::new(
            &[
                asm::addi(1, 0, 5),
                asm::addi(2, 0, 0),
                asm::add(2, 2, 1),
                asm::addi(1, 1, -1),
                asm::bne(1, 0, -8),
                asm::sw(2, 0, 0x40),
                asm::lw(3, 0, 0x40),
                asm::ecall(),
            ],
            64,
        );
        iss.run(200);
        assert_eq!(iss.regs[2], 15);
        assert_eq!(iss.regs[3], 15);
        assert_eq!(iss.dmem[0x10], 15);
    }

    #[test]
    fn x0_stays_zero() {
        let mut iss = Iss::new(&[asm::addi(0, 0, 99), asm::ecall()], 4);
        iss.run(10);
        assert_eq!(iss.regs[0], 0);
    }
}

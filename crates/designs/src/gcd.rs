//! The classic GCD circuit — the quickstart design.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

/// Build a `width`-bit GCD unit.
///
/// Interface: pull `io_load` high with operands on `io_a`/`io_b`, then wait
/// for `io_done`; the result appears on `io_out`.
pub fn gcd(width: u32) -> Circuit {
    let mut m = ModuleBuilder::new("Gcd");
    m.clock();
    m.reset();
    let a = m.input("io_a", width);
    let b = m.input("io_b", width);
    let load = m.input("io_load", 1);
    let out = m.output("io_out", width);
    let done = m.output("io_done", 1);

    let x = m.reg_init("x", width, Expr::u(0, width));
    let y = m.reg_init("y", width, Expr::u(0, width));

    let x2 = x.clone();
    let y2 = y.clone();
    m.when_else(
        load,
        move |m| {
            m.connect(x2.clone(), a.clone());
            m.connect(y2.clone(), b.clone());
        },
        |m| {
            let gt = m.node("x_gt_y", x.clone().gt(&y.clone()));
            let x3 = x.clone();
            let y3 = y.clone();
            let x4 = x.clone();
            let y4 = y.clone();
            m.when_else(
                gt,
                move |m| {
                    m.connect(x3.clone(), x3.subw(&y3));
                },
                move |m| {
                    m.connect(y4.clone(), y4.subw(&x4));
                },
            );
        },
    );
    let x = Expr::r("x");
    let y = Expr::r("y");
    m.connect(out, x.clone());
    m.connect(done, y.eq_(&Expr::u(0, width)));
    CircuitBuilder::new("Gcd").add(m).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn run_gcd(a: u64, b: u64) -> u64 {
        let low = passes::lower(gcd(16)).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        sim.reset(1);
        sim.poke("io_a", a);
        sim.poke("io_b", b);
        sim.poke("io_load", 1);
        sim.step();
        sim.poke("io_load", 0);
        for _ in 0..512 {
            if sim.peek("io_done") == 1 {
                return sim.peek("io_out");
            }
            sim.step();
        }
        panic!("gcd did not converge");
    }

    #[test]
    fn computes_gcd() {
        assert_eq!(run_gcd(48, 32), 16);
        assert_eq!(run_gcd(7, 3), 1);
        assert_eq!(run_gcd(36, 60), 12);
        assert_eq!(run_gcd(5, 5), 5);
    }

    #[test]
    fn source_locators_present() {
        let c = gcd(16);
        let m = c.top_module();
        assert!(m.body.iter().any(|s| s.info().is_known()));
    }
}

//! # rtlcov-designs
//!
//! Benchmark circuits for the coverage system, mirroring the paper's
//! evaluation targets (Table 2, §5.2–5.5):
//!
//! * [`riscv_mini`] — multi-cycle RV32I core with split caches (the §5.5
//!   formal target and Table 2's long-running CPU benchmark);
//! * [`tlram`] — TileLink-flavored RAM with decoupled channels;
//! * [`serv_like`] — bit-serial ALU (serv-chisel analog);
//! * [`neuroproc_like`] — spiking neuron processor (NeuroProc analog);
//! * [`i2c`] — I2C slave peripheral (the §5.4 fuzzing target);
//! * [`gcd`] / [`fsm_examples`] — small teaching designs;
//! * [`soc`] — scaled rocket-like / boom-like SoCs for Figures 9/10;
//! * [`programs`] — an RV32I assembler + test programs incl. the §5.2
//!   Linux-boot substitute;
//! * [`iss`] — a golden-model RV32I instruction-set simulator for
//!   differential testing;
//! * [`workloads`] — replayable input traces per benchmark (§5.1).

#![warn(missing_docs)]

pub mod fsm_examples;
pub mod gcd;
pub mod i2c;
pub mod iss;
pub mod neuroproc_like;
pub mod programs;
pub mod queue;
pub mod riscv_mini;
pub mod serv_like;
pub mod soc;
pub mod tlram;
pub mod workloads;

//! Small FSM circuits used by tests and the FSM-coverage examples,
//! including the paper's Figure 7 state machine.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

/// The paper's Figure 7 FSM: `S ∈ {A, B, C}` with
/// `A: mux(in, A, B)`, `B: mux(in, B, C)`, `C: C`.
pub fn figure7() -> Circuit {
    let mut m = ModuleBuilder::new("Fig7");
    m.clock();
    m.reset();
    let input = m.input("in", 1);
    let out = m.output("out", 2);
    let state = m.reg_enum("state", 2, Expr::u(0, 2), "S");
    let st = state.clone();
    m.when(st.eq_(&Expr::u(0, 2)), move |m| {
        m.connect(Expr::r("state"), input.mux(&Expr::u(0, 2), &Expr::u(1, 2)));
    });
    let st = state.clone();
    m.when(st.eq_(&Expr::u(1, 2)), |m| {
        m.when_else(
            Expr::r("in"),
            |m| m.connect(Expr::r("state"), Expr::u(1, 2)),
            |m| m.connect(Expr::r("state"), Expr::u(2, 2)),
        );
    });
    m.connect(out, state);
    CircuitBuilder::new("Fig7")
        .enum_def("S", &[("A", 0), ("B", 1), ("C", 2)])
        .add(m)
        .build()
}

/// A traffic-light controller with a timer — a classic FSM with an
/// unreachable-transition hazard (yellow never goes back to green).
pub fn traffic_light() -> Circuit {
    let mut m = ModuleBuilder::new("Traffic");
    m.clock();
    m.reset();
    let car_waiting = m.input("car_waiting", 1);
    let light = m.output("light", 2);
    // Green=0, Yellow=1, Red=2
    let state = m.reg_enum("state", 2, Expr::u(0, 2), "Light");
    let timer = m.reg_init("timer", 4, Expr::u(0, 4));

    m.connect(Expr::r("timer"), timer.addw(&Expr::u(1, 4)));
    let st = state.clone();
    let cw = car_waiting.clone();
    m.when(st.eq_(&Expr::u(0, 2)), move |m| {
        let c = cw.and(&Expr::r("timer").geq(&Expr::u(8, 4))).bits(0, 0);
        m.when(c, |m| {
            m.connect(Expr::r("state"), Expr::u(1, 2));
            m.connect(Expr::r("timer"), Expr::u(0, 4));
        });
    });
    let st = state.clone();
    m.when(st.eq_(&Expr::u(1, 2)), |m| {
        m.when(Expr::r("timer").geq(&Expr::u(2, 4)), |m| {
            m.connect(Expr::r("state"), Expr::u(2, 2));
            m.connect(Expr::r("timer"), Expr::u(0, 4));
        });
    });
    let st = state.clone();
    m.when(st.eq_(&Expr::u(2, 2)), |m| {
        m.when(Expr::r("timer").geq(&Expr::u(6, 4)), |m| {
            m.connect(Expr::r("state"), Expr::u(0, 2));
            m.connect(Expr::r("timer"), Expr::u(0, 4));
        });
    });
    m.connect(light, state);
    CircuitBuilder::new("Traffic")
        .enum_def("Light", &[("Green", 0), ("Yellow", 1), ("Red", 2)])
        .add(m)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    #[test]
    fn figure7_walk() {
        let low = passes::lower(figure7()).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s.poke("in", 1);
        s.step_n(3);
        assert_eq!(s.peek("out"), 0); // A stays A while in=1
        s.poke("in", 0);
        s.step();
        assert_eq!(s.peek("out"), 1); // A -> B
        s.step();
        assert_eq!(s.peek("out"), 2); // B -> C
        s.poke("in", 1);
        s.step_n(5);
        assert_eq!(s.peek("out"), 2); // C is absorbing
    }

    #[test]
    fn traffic_cycles() {
        let low = passes::lower(traffic_light()).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s.poke("car_waiting", 1);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.peek("light") as usize] = true;
            s.step();
        }
        assert_eq!(seen, [true, true, true]);
    }
}

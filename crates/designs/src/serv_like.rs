//! A bit-serial ALU core in the spirit of the SERV benchmark
//! (`serv-chisel` in the paper's Table 2).
//!
//! Operations stream one bit per cycle through a 1-bit datapath: an
//! operation takes `width` cycles. Very few line cover points, a long
//! cycle count — the profile that makes serv a distinct benchmark.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

/// Serial ALU opcodes.
pub mod op {
    /// Bit-serial addition.
    pub const ADD: u64 = 0;
    /// Bit-serial subtraction.
    pub const SUB: u64 = 1;
    /// Bitwise and.
    pub const AND: u64 = 2;
    /// Bitwise or.
    pub const OR: u64 = 3;
    /// Bitwise xor.
    pub const XOR: u64 = 4;
}

/// Build a `width`-bit bit-serial ALU.
///
/// Drive `start` with operands on `op_a`/`op_b` and the opcode on `op_sel`;
/// `done` rises after `width` cycles with the result on `result`.
pub fn serv_like(width: u32) -> Circuit {
    let cnt_w = rtlcov_firrtl::typecheck::addr_width(width as usize) + 1;
    let mut m = ModuleBuilder::new("SerialAlu");
    m.clock();
    m.reset();
    let start = m.input("start", 1);
    let op_a = m.input("op_a", width);
    let op_b = m.input("op_b", width);
    let op_sel = m.input("op_sel", 3);
    let result = m.output("result", width);
    let done = m.output("done", 1);

    let busy = m.reg_init("busy", 1, Expr::u(0, 1));
    let _cnt = m.reg_init("cnt", cnt_w, Expr::u(0, cnt_w));
    let sh_a = m.reg("sh_a", width);
    let sh_b = m.reg("sh_b", width);
    let acc = m.reg("acc", width);
    let carry = m.reg("carry", 1);
    let _sel = m.reg("sel", 3);
    let done_reg = m.reg_init("done_reg", 1, Expr::u(0, 1));

    m.connect(result.clone(), acc.clone());
    m.connect(done.clone(), done_reg.clone());

    // bit-serial datapath: lsb of the shifters this cycle
    let a_bit = m.node("a_bit", sh_a.bit(0));
    // subtraction streams the complement of b with carry-in 1
    let b_raw = m.node("b_raw", sh_b.bit(0));
    let is_sub = m.node("is_sub", Expr::r("sel").eq_(&Expr::u(op::SUB, 3)));
    let b_bit = m.node("b_bit", is_sub.mux(&b_raw.not_().bits(0, 0), &b_raw));
    let sum = m.node("sum", a_bit.xor(&b_bit).xor(&carry.clone()).bits(0, 0));
    let _carry_next = m.node(
        "carry_next",
        a_bit
            .and(&b_bit)
            .or(&a_bit.and(&carry.clone()))
            .or(&b_bit.and(&carry.clone()))
            .bits(0, 0),
    );
    let and_bit = m.node("and_bit", a_bit.and(&b_raw).bits(0, 0));
    let or_bit = m.node("or_bit", a_bit.or(&b_raw).bits(0, 0));
    let xor_bit = m.node("xor_bit", a_bit.xor(&b_raw).bits(0, 0));

    let _out_bit = m.node(
        "out_bit",
        Expr::r("sel").eq_(&Expr::u(op::AND, 3)).mux(
            &and_bit,
            &Expr::r("sel").eq_(&Expr::u(op::OR, 3)).mux(
                &or_bit,
                &Expr::r("sel").eq_(&Expr::u(op::XOR, 3)).mux(&xor_bit, &sum),
            ),
        ),
    );

    let idle = m.node("idle", busy.not_().bits(0, 0));
    let go = m.node("go", start.and(&idle).bits(0, 0));
    m.when(go, move |m| {
        m.connect(Expr::r("busy"), Expr::u(1, 1));
        m.connect(Expr::r("cnt"), Expr::u(0, cnt_w));
        m.connect(Expr::r("sh_a"), op_a.clone());
        m.connect(Expr::r("sh_b"), op_b.clone());
        m.connect(Expr::r("sel"), op_sel.clone());
        m.connect(Expr::r("done_reg"), Expr::u(0, 1));
        // carry-in: 1 for subtraction (two's complement), else 0
        m.connect(Expr::r("carry"), op_sel.eq_(&Expr::u(op::SUB, 3)));
    });
    let b = busy.clone();
    m.when(b, move |m| {
        // shift one bit through the datapath
        m.connect(Expr::r("sh_a"), Expr::r("sh_a").shr(1).pad(width));
        m.connect(Expr::r("sh_b"), Expr::r("sh_b").shr(1).pad(width));
        m.connect(
            Expr::r("acc"),
            Expr::r("out_bit")
                .dshl(&Expr::u(width as u64 - 1, 6))
                .bits(width - 1, 0)
                .or(&Expr::r("acc").shr(1).pad(width)),
        );
        m.connect(Expr::r("carry"), Expr::r("carry_next"));
        m.connect(Expr::r("cnt"), Expr::r("cnt").addw(&Expr::u(1, cnt_w)));
        let last = Expr::r("cnt").eq_(&Expr::u(width as u64 - 1, cnt_w));
        m.when(last, |m| {
            m.connect(Expr::r("busy"), Expr::u(0, 1));
            m.connect(Expr::r("done_reg"), Expr::u(1, 1));
        });
    });

    CircuitBuilder::new("SerialAlu").add(m).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn run(a: u64, b: u64, sel: u64) -> u64 {
        let low = passes::lower(serv_like(16)).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s.poke("op_a", a);
        s.poke("op_b", b);
        s.poke("op_sel", sel);
        s.poke("start", 1);
        s.step();
        s.poke("start", 0);
        for _ in 0..64 {
            if s.peek("done") == 1 {
                return s.peek("result");
            }
            s.step();
        }
        panic!("serial alu did not finish");
    }

    #[test]
    fn serial_add() {
        assert_eq!(run(1234, 4321, op::ADD), 5555);
        assert_eq!(run(0xffff, 1, op::ADD), 0); // wraps at 16 bits
    }

    #[test]
    fn serial_sub() {
        assert_eq!(run(100, 58, op::SUB), 42);
        assert_eq!(run(0, 1, op::SUB), 0xffff);
    }

    #[test]
    fn serial_logic() {
        assert_eq!(run(0b1100, 0b1010, op::AND), 0b1000);
        assert_eq!(run(0b1100, 0b1010, op::OR), 0b1110);
        assert_eq!(run(0b1100, 0b1010, op::XOR), 0b0110);
    }

    #[test]
    fn takes_width_cycles() {
        let low = passes::lower(serv_like(16)).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s.poke("op_a", 1);
        s.poke("op_b", 2);
        s.poke("op_sel", op::ADD);
        s.poke("start", 1);
        s.step();
        s.poke("start", 0);
        let mut cycles = 0;
        while s.peek("done") == 0 {
            s.step();
            cycles += 1;
            assert!(cycles < 100);
        }
        assert_eq!(cycles, 16); // one shift per bit of the 16-bit datapath
    }
}

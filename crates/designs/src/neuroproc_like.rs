//! A spiking-neuron processor in the spirit of the NeuroProc benchmark.
//!
//! `n` leaky integrate-and-fire neurons are evaluated one per cycle in a
//! round-robin pipeline: each neuron accumulates a weighted input,
//! leaks, and fires when its membrane potential crosses a threshold. The
//! paper's NeuroProc run dominates Table 2's cycle counts; this analog
//! gives the benchmarks a comparably long-running, data-path-heavy design.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

/// Build a neuron processor with `n` neurons (power of two) and 16-bit
/// potentials.
///
/// Each neuron is a leaky integrate-and-fire unit with a refractory
/// period: after firing, a neuron ignores stimulation for `refr_period`
/// visits. `inhibit` turns the input weight into suppression.
pub fn neuroproc_like(n: usize) -> Circuit {
    assert!(n.is_power_of_two(), "neuron count must be a power of two");
    let idx_w = rtlcov_firrtl::typecheck::addr_width(n);
    let mut m = ModuleBuilder::new("NeuroProc");
    m.clock();
    m.reset();
    let in_spike = m.input("in_spike", 1);
    let in_weight = m.input("in_weight", 8);
    let threshold = m.input("threshold", 16);
    let leak = m.input("leak", 4);
    let refr_period = m.input("refr_period", 4);
    let inhibit = m.input("inhibit", 1);
    let out_spike = m.output("out_spike", 1);
    let out_neuron = m.output("out_neuron", idx_w);
    let fired_total = m.output("fired_total", 32);

    let pot = m.mem("pot", 16, n, &["r"], &["w"]);
    let refr = m.mem("refr", 4, n, &["r"], &["w"]);
    let idx = m.reg_init("idx", idx_w, Expr::u(0, idx_w));
    let spike_reg = m.reg_init("spike_reg", 1, Expr::u(0, 1));
    let fired = m.reg_init("fired", 32, Expr::u(0, 32));

    m.connect(pot.field("r").field("addr"), idx.clone());
    m.connect(pot.field("r").field("en"), Expr::one());
    let current = m.node("current", pot.field("r").field("data"));
    m.connect(refr.field("r").field("addr"), idx.clone());
    m.connect(refr.field("r").field("en"), Expr::one());
    let in_refractory = m.node(
        "in_refractory",
        refr.field("r").field("data").neq(&Expr::u(0, 4)),
    );

    // integrate: add weighted input when a spike arrives (suppressing in
    // inhibitory mode or while refractory)
    let wire_stim = m.wire("stim_w", 16);
    m.connect(wire_stim.clone(), Expr::u(0, 16));
    let suppress = m.wire("suppress", 1);
    m.connect(suppress.clone(), Expr::u(0, 1)); // default before the when
    let ir = in_refractory.clone();
    let isp = in_spike.clone();
    let iw = in_weight.clone();
    let inh = inhibit.clone();
    let cur = current.clone();
    m.when(isp.and(&ir.not_().bits(0, 0)).bits(0, 0), move |m| {
        m.when_else(
            inh.clone(),
            {
                let iw = iw.clone();
                let cur = cur.clone();
                move |m| {
                    // inhibitory: subtract the weight, saturating at zero
                    let drop = iw.pad(16);
                    m.connect(Expr::r("stim_w"), cur.lt(&drop).mux(&cur, &drop));
                    m.connect(Expr::r("suppress"), Expr::u(1, 1));
                }
            },
            {
                let iw = iw.clone();
                move |m| {
                    m.connect(Expr::r("stim_w"), iw.pad(16));
                }
            },
        );
    });
    let integrated = m.node(
        "integrated",
        suppress.mux(
            &current.subw(&Expr::r("stim_w")),
            &current.addw(&Expr::r("stim_w")),
        ),
    );
    // leak: subtract, saturating at zero
    let leaked = m.node(
        "leaked",
        integrated
            .lt(&leak.pad(16))
            .mux(&Expr::u(0, 16), &integrated.subw(&leak.pad(16))),
    );
    let fires = m.node(
        "fires",
        leaked
            .geq(&threshold)
            .and(&in_refractory.not_().bits(0, 0))
            .bits(0, 0),
    );
    let next_pot = m.node("next_pot", fires.mux(&Expr::u(0, 16), &leaked));

    m.connect(pot.field("w").field("addr"), idx.clone());
    m.connect(pot.field("w").field("en"), Expr::one());
    m.connect(pot.field("w").field("data"), next_pot.clone());
    m.connect(pot.field("w").field("mask"), Expr::one());

    // refractory countdown / reload
    let refr_next = m.wire("refr_next", 4);
    m.connect(refr_next.clone(), Expr::u(0, 4));
    let f2 = fires.clone();
    let rp = refr_period.clone();
    m.when_else(
        f2,
        move |m| {
            m.connect(Expr::r("refr_next"), rp.clone());
        },
        |m| {
            m.when(Expr::r("in_refractory"), |m| {
                m.connect(
                    Expr::r("refr_next"),
                    Expr::r("refr")
                        .field("r")
                        .field("data")
                        .subw(&Expr::u(1, 4)),
                );
            });
        },
    );
    m.connect(refr.field("w").field("addr"), idx.clone());
    m.connect(refr.field("w").field("en"), Expr::one());
    m.connect(refr.field("w").field("data"), refr_next.clone());
    m.connect(refr.field("w").field("mask"), Expr::one());

    m.connect(Expr::r("idx"), idx.addw(&Expr::u(1, idx_w)));
    m.connect(Expr::r("spike_reg"), fires.clone());
    let f = fires.clone();
    m.when(f, |m| {
        m.connect(Expr::r("fired"), Expr::r("fired").addw(&Expr::u(1, 32)));
    });

    m.connect(out_spike, spike_reg.clone());
    m.connect(out_neuron, idx.clone());
    m.connect(fired_total, fired.clone());

    CircuitBuilder::new("NeuroProc").add(m).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn sim(n: usize) -> CompiledSim {
        let low = passes::lower(neuroproc_like(n)).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s.poke("threshold", 100);
        s.poke("leak", 1);
        s
    }

    #[test]
    fn neurons_fire_after_enough_input() {
        let mut s = sim(4);
        s.poke("in_spike", 1);
        s.poke("in_weight", 60);
        // each neuron is visited every 4 cycles and gains 59 net per visit;
        // firing threshold 100 → fires on its second visit
        s.step_n(4 * 3);
        assert!(
            s.peek("fired_total") >= 4,
            "fired {}",
            s.peek("fired_total")
        );
    }

    #[test]
    fn no_input_no_spikes() {
        let mut s = sim(4);
        s.poke("in_spike", 0);
        s.step_n(100);
        assert_eq!(s.peek("fired_total"), 0);
    }

    #[test]
    fn potential_resets_after_firing() {
        let mut s = sim(2);
        s.poke("in_spike", 1);
        s.poke("in_weight", 200);
        s.step_n(2); // both neurons integrate past the threshold and fire
        assert_eq!(s.read_mem("pot", 0).unwrap(), 0);
        assert_eq!(s.read_mem("pot", 1).unwrap(), 0);
        assert_eq!(s.peek("fired_total"), 2);
    }

    #[test]
    fn refractory_period_suppresses_refiring() {
        let mut s = sim(2);
        s.poke("in_spike", 1);
        s.poke("in_weight", 200);
        s.poke("refr_period", 8);
        s.step_n(2); // both neurons fire once, entering refractory
        assert_eq!(s.peek("fired_total"), 2);
        // heavy stimulation continues but the neurons are refractory
        s.step_n(8);
        assert_eq!(s.peek("fired_total"), 2, "refractory neurons must not fire");
        // after the period expires they fire again
        s.step_n(24);
        assert!(s.peek("fired_total") > 2);
    }

    #[test]
    fn inhibitory_input_drains_potential() {
        let mut s = sim(2);
        s.poke("in_spike", 1);
        s.poke("in_weight", 50);
        s.poke("leak", 0);
        s.step_n(2); // both neurons at 50
        assert_eq!(s.read_mem("pot", 0).unwrap(), 50);
        s.poke("inhibit", 1);
        s.poke("in_weight", 30);
        s.step_n(2);
        assert_eq!(s.read_mem("pot", 0).unwrap(), 20);
        s.step_n(2); // saturates at zero (30 > 20)
        assert_eq!(s.read_mem("pot", 0).unwrap(), 0);
    }

    #[test]
    fn round_robin_index_wraps() {
        let mut s = sim(4);
        for expected in [1u64, 2, 3, 0, 1] {
            s.step();
            assert_eq!(s.peek("out_neuron"), expected);
        }
    }
}

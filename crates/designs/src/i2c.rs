//! An I2C slave peripheral — the paper's fuzzing target (§5.4, Fig. 11).
//!
//! The controller watches SCL/SDA, detects start/stop conditions, matches
//! a 7-bit device address, and shifts a data byte in or out. The deeply
//! sequential protocol makes most branches hard to reach with random
//! inputs — exactly why the paper fuzzes it with coverage feedback.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr};

/// I2C slave FSM states (enum `I2cState`).
pub mod state {
    /// Bus idle, waiting for a start condition.
    pub const IDLE: u64 = 0;
    /// Shifting in the 7-bit address + R/W bit.
    pub const ADDR: u64 = 1;
    /// Driving the address ACK.
    pub const ACK_ADDR: u64 = 2;
    /// Shifting a data byte in (write transfer).
    pub const WRITE: u64 = 3;
    /// Driving the data ACK.
    pub const ACK_DATA: u64 = 4;
    /// Shifting a data byte out (read transfer).
    pub const READ: u64 = 5;
    /// Waiting for the master's ACK/NACK on read data.
    pub const WAIT_ACK: u64 = 6;
}

/// The fixed 7-bit device address the slave responds to. We use the I2C
/// general-call address (all zeros): it is a legal target and it keeps the
/// fuzzing experiment's difficulty in the *sequencing* (clean start + 8
/// clock pulses) rather than in guessing an arbitrary 7-bit constant.
pub const DEVICE_ADDR: u64 = 0;

/// Build the I2C slave.
///
/// Inputs `scl`/`sda_in` model the open-drain bus; `sda_out`/`sda_oe`
/// drive it. `data_out`/`data_valid` expose received bytes; `data_in` is
/// returned on read transfers.
pub fn i2c() -> Circuit {
    use state::*;
    let mut m = ModuleBuilder::new("I2c");
    m.clock();
    m.reset();
    let scl = m.input("scl", 1);
    let sda_in = m.input("sda_in", 1);
    let _data_in = m.input("data_in", 8);
    let sda_out = m.output("sda_out", 1);
    let sda_oe = m.output("sda_oe", 1);
    let data_out = m.output("data_out", 8);
    let data_valid = m.output("data_valid", 1);
    let addr_matched = m.output("addr_matched", 1);

    let st = m.reg_enum("st", 3, Expr::u(IDLE, 3), "I2cState");
    let scl_prev = m.reg_init("scl_prev", 1, Expr::u(1, 1));
    let sda_prev = m.reg_init("sda_prev", 1, Expr::u(1, 1));
    let shift = m.reg("shift", 8);
    let bitcnt = m.reg_init("bitcnt", 4, Expr::u(0, 4));
    let rw_bit = m.reg("rw_bit", 1);
    let out_reg = m.reg_init("out_reg", 8, Expr::u(0, 8));
    let valid_reg = m.reg_init("valid_reg", 1, Expr::u(0, 1));
    let matched_reg = m.reg_init("matched_reg", 1, Expr::u(0, 1));
    let sda_out_reg = m.reg_init("sda_out_reg", 1, Expr::u(1, 1));
    let sda_oe_reg = m.reg_init("sda_oe_reg", 1, Expr::u(0, 1));

    m.connect(Expr::r("scl_prev"), scl.clone());
    m.connect(Expr::r("sda_prev"), sda_in.clone());
    m.connect(sda_out, sda_out_reg.clone());
    m.connect(sda_oe, sda_oe_reg.clone());
    m.connect(data_out, out_reg.clone());
    m.connect(data_valid, valid_reg.clone());
    m.connect(addr_matched, matched_reg.clone());

    // start: SDA falls while SCL high; stop: SDA rises while SCL high
    let scl_high = m.node("scl_high", scl.clone());
    let start_cond = m.node(
        "start_cond",
        scl_high
            .and(&sda_prev)
            .and(&sda_in.not_().bits(0, 0))
            .bits(0, 0),
    );
    let stop_cond = m.node(
        "stop_cond",
        scl_high
            .and(&sda_prev.not_().bits(0, 0))
            .and(&sda_in)
            .bits(0, 0),
    );
    let scl_rise = m.node("scl_rise", scl.and(&scl_prev.not_().bits(0, 0)).bits(0, 0));
    let scl_fall = m.node("scl_fall", scl.not_().bits(0, 0).and(&scl_prev).bits(0, 0));

    // pulse flags clear each cycle
    m.connect(Expr::r("valid_reg"), Expr::u(0, 1));

    let sc = start_cond.clone();
    m.when(sc, |m| {
        m.connect(Expr::r("st"), Expr::u(ADDR, 3));
        m.connect(Expr::r("bitcnt"), Expr::u(0, 4));
        m.connect(Expr::r("shift"), Expr::u(0, 8));
        m.connect(Expr::r("sda_oe_reg"), Expr::u(0, 1));
    });
    let stp = stop_cond.clone();
    m.when(stp, |m| {
        m.connect(Expr::r("st"), Expr::u(IDLE, 3));
        m.connect(Expr::r("matched_reg"), Expr::u(0, 1));
        m.connect(Expr::r("sda_oe_reg"), Expr::u(0, 1));
    });

    // main FSM advances on SCL edges (unless a start/stop hijacked it)
    let no_cond = m.node("no_cond", start_cond.or(&stop_cond).not_().bits(0, 0));
    let nc = no_cond.clone();
    m.when(nc, move |m| {
        let s = st.clone();
        // ADDR: sample on rising edge
        m.when(s.eq_(&Expr::u(ADDR, 3)).and(&scl_rise).bits(0, 0), |m| {
            m.connect(
                Expr::r("shift"),
                Expr::r("shift").bits(6, 0).cat(&Expr::r("sda_in")),
            );
            m.connect(Expr::r("bitcnt"), Expr::r("bitcnt").addw(&Expr::u(1, 4)));
            m.when(Expr::r("bitcnt").eq_(&Expr::u(7, 4)), |m| {
                m.connect(Expr::r("rw_bit"), Expr::r("sda_in"));
                // at the 8th rising edge the 7 address bits sit in
                // shift[6:0] and sda_in carries the R/W bit
                m.when_else(
                    Expr::r("shift").bits(6, 0).eq_(&Expr::u(DEVICE_ADDR, 7)),
                    |m| {
                        m.connect(Expr::r("st"), Expr::u(ACK_ADDR, 3));
                        m.connect(Expr::r("matched_reg"), Expr::u(1, 1));
                    },
                    |m| {
                        // not our address: return to idle
                        m.connect(Expr::r("st"), Expr::u(IDLE, 3));
                    },
                );
                m.connect(Expr::r("bitcnt"), Expr::u(0, 4));
            });
        });
        // ACK_ADDR: pull SDA low on the falling edge, release after
        let s = st.clone();
        m.when(
            s.eq_(&Expr::u(ACK_ADDR, 3)).and(&scl_fall).bits(0, 0),
            |m| {
                m.connect(Expr::r("sda_oe_reg"), Expr::u(1, 1));
                m.connect(Expr::r("sda_out_reg"), Expr::u(0, 1));
            },
        );
        let s = st.clone();
        m.when(
            s.eq_(&Expr::u(ACK_ADDR, 3)).and(&scl_rise).bits(0, 0),
            |m| {
                m.connect(Expr::r("sda_oe_reg"), Expr::u(0, 1));
                m.when_else(
                    Expr::r("rw_bit"),
                    |m| {
                        m.connect(Expr::r("st"), Expr::u(READ, 3));
                        m.connect(Expr::r("shift"), Expr::r("data_in"));
                    },
                    |m| {
                        m.connect(Expr::r("st"), Expr::u(WRITE, 3));
                        m.connect(Expr::r("shift"), Expr::u(0, 8));
                    },
                );
                m.connect(Expr::r("bitcnt"), Expr::u(0, 4));
            },
        );
        // WRITE: sample data bits
        let s = st.clone();
        m.when(s.eq_(&Expr::u(WRITE, 3)).and(&scl_rise).bits(0, 0), |m| {
            m.connect(
                Expr::r("shift"),
                Expr::r("shift").bits(6, 0).cat(&Expr::r("sda_in")),
            );
            m.connect(Expr::r("bitcnt"), Expr::r("bitcnt").addw(&Expr::u(1, 4)));
            m.when(Expr::r("bitcnt").eq_(&Expr::u(7, 4)), |m| {
                m.connect(
                    Expr::r("out_reg"),
                    Expr::r("shift").bits(6, 0).cat(&Expr::r("sda_in")),
                );
                m.connect(Expr::r("valid_reg"), Expr::u(1, 1));
                m.connect(Expr::r("st"), Expr::u(ACK_DATA, 3));
                m.connect(Expr::r("bitcnt"), Expr::u(0, 4));
            });
        });
        // ACK_DATA: ack then continue receiving
        let s = st.clone();
        m.when(
            s.eq_(&Expr::u(ACK_DATA, 3)).and(&scl_fall).bits(0, 0),
            |m| {
                m.connect(Expr::r("sda_oe_reg"), Expr::u(1, 1));
                m.connect(Expr::r("sda_out_reg"), Expr::u(0, 1));
            },
        );
        let s = st.clone();
        m.when(
            s.eq_(&Expr::u(ACK_DATA, 3)).and(&scl_rise).bits(0, 0),
            |m| {
                m.connect(Expr::r("sda_oe_reg"), Expr::u(0, 1));
                m.connect(Expr::r("st"), Expr::u(WRITE, 3));
            },
        );
        // READ: drive data bits out on falling edges
        let s = st.clone();
        m.when(s.eq_(&Expr::u(READ, 3)).and(&scl_fall).bits(0, 0), |m| {
            m.connect(Expr::r("sda_oe_reg"), Expr::u(1, 1));
            m.connect(Expr::r("sda_out_reg"), Expr::r("shift").bit(7));
            m.connect(
                Expr::r("shift"),
                Expr::r("shift").bits(6, 0).cat(&Expr::u(0, 1)),
            );
            m.connect(Expr::r("bitcnt"), Expr::r("bitcnt").addw(&Expr::u(1, 4)));
            m.when(Expr::r("bitcnt").eq_(&Expr::u(7, 4)), |m| {
                m.connect(Expr::r("st"), Expr::u(WAIT_ACK, 3));
                m.connect(Expr::r("bitcnt"), Expr::u(0, 4));
            });
        });
        // WAIT_ACK: master acks (SDA low) → next byte, else idle
        let s = st.clone();
        m.when(
            s.eq_(&Expr::u(WAIT_ACK, 3)).and(&scl_rise).bits(0, 0),
            |m| {
                m.connect(Expr::r("sda_oe_reg"), Expr::u(0, 1));
                m.when_else(
                    Expr::r("sda_in").not_().bits(0, 0),
                    |m| {
                        m.connect(Expr::r("st"), Expr::u(READ, 3));
                        m.connect(Expr::r("shift"), Expr::r("data_in"));
                    },
                    |m| {
                        m.connect(Expr::r("st"), Expr::u(IDLE, 3));
                    },
                );
            },
        );
    });

    let _ = (shift, bitcnt, rw_bit);
    CircuitBuilder::new("I2c")
        .enum_def(
            "I2cState",
            &[
                ("Idle", IDLE),
                ("Addr", ADDR),
                ("AckAddr", ACK_ADDR),
                ("Write", WRITE),
                ("AckData", ACK_DATA),
                ("Read", READ),
                ("WaitAck", WAIT_ACK),
            ],
        )
        .add(m)
        .build()
}

/// Drive one I2C byte write transaction against a simulator; returns true
/// if `data_valid` pulsed. Used by tests and the fuzzing oracle.
pub fn write_transaction(sim: &mut dyn rtlcov_sim::Simulator, addr7: u64, byte: u64) -> bool {
    let mut saw_valid = false;
    let half = |sim: &mut dyn rtlcov_sim::Simulator, scl: u64, sda: u64| {
        sim.poke("scl", scl);
        sim.poke("sda_in", sda);
        sim.step();
    };
    // bus idle
    half(sim, 1, 1);
    half(sim, 1, 1);
    // start condition: SDA falls while SCL high
    half(sim, 1, 0);
    half(sim, 0, 0);
    // address (7 bits, MSB first) + write bit (0)
    let bits: Vec<u64> = (0..7)
        .rev()
        .map(|i| (addr7 >> i) & 1)
        .chain(std::iter::once(0))
        .collect();
    for b in bits {
        half(sim, 0, b);
        half(sim, 1, b); // rising edge samples
        half(sim, 0, b);
    }
    // ack cycle (slave drives)
    half(sim, 0, 1);
    half(sim, 1, 1);
    half(sim, 0, 1);
    // data byte
    for i in (0..8).rev() {
        let b = (byte >> i) & 1;
        half(sim, 0, b);
        half(sim, 1, b);
        saw_valid |= sim.peek("data_valid") == 1;
        half(sim, 0, b);
        saw_valid |= sim.peek("data_valid") == 1;
    }
    // data ack cycle
    half(sim, 0, 1);
    half(sim, 1, 1);
    half(sim, 0, 1);
    // stop: SDA rises while SCL high
    half(sim, 1, 0);
    half(sim, 1, 1);
    saw_valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn sim() -> CompiledSim {
        let low = passes::lower(i2c()).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.poke("scl", 1);
        s.poke("sda_in", 1);
        s.reset(1);
        s
    }

    #[test]
    fn write_to_matching_address() {
        let mut s = sim();
        let got = write_transaction(&mut s, DEVICE_ADDR, 0xa5);
        assert!(got, "data_valid should pulse");
        assert_eq!(s.peek("data_out"), 0xa5);
        // the stop condition clears the match flag again
        assert_eq!(s.peek("addr_matched"), 0);
    }

    #[test]
    fn wrong_address_is_ignored() {
        let mut s = sim();
        let got = write_transaction(&mut s, DEVICE_ADDR ^ 0x15, 0xa5);
        assert!(!got);
        assert_eq!(s.peek("addr_matched"), 0);
    }

    #[test]
    fn stop_resets_to_idle() {
        let mut s = sim();
        write_transaction(&mut s, DEVICE_ADDR, 0x12);
        assert_eq!(s.peek("st"), state::IDLE);
    }

    #[test]
    fn random_noise_rarely_reaches_deep_states() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut s = sim();
        let mut rng = StdRng::seed_from_u64(7);
        let mut deepest = 0;
        for _ in 0..2000 {
            s.poke("scl", rng.gen_range(0..2));
            s.poke("sda_in", rng.gen_range(0..2));
            s.step();
            deepest = deepest.max(s.peek("st"));
        }
        // random inputs may enter ADDR but essentially never complete an
        // address match (probability ~2^-8 per attempt with exact framing)
        assert!(deepest <= state::ACK_ADDR, "deepest {deepest}");
    }
}

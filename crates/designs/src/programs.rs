//! A small RV32I assembler and the test programs the benchmarks run.
//!
//! The paper's riscv-mini experiments replay RISC-V ISA tests and §5.2
//! boots Linux; as a laptop-scale substitute we hand-assemble programs
//! ranging from ISA smoke tests to a long-running "boot" workload that
//! exercises arithmetic, branches, memory traffic and function calls for a
//! configurable cycle budget (see DESIGN.md substitutions).

use rtlcov_sim::{SimError, Simulator};

/// RV32I instruction encoders.
pub mod asm {
    fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
    }

    fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
        (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
    }

    fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
        let imm = imm as u32;
        ((imm >> 5 & 0x7f) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (funct3 << 12)
            | ((imm & 0x1f) << 7)
            | opcode
    }

    fn b_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
        let imm = imm as u32;
        ((imm >> 12 & 1) << 31)
            | ((imm >> 5 & 0x3f) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (funct3 << 12)
            | ((imm >> 1 & 0xf) << 8)
            | ((imm >> 11 & 1) << 7)
            | opcode
    }

    fn u_type(imm20: u32, rd: u32, opcode: u32) -> u32 {
        (imm20 << 12) | (rd << 7) | opcode
    }

    fn j_type(imm: i32, rd: u32, opcode: u32) -> u32 {
        let imm = imm as u32;
        ((imm >> 20 & 1) << 31)
            | ((imm >> 1 & 0x3ff) << 21)
            | ((imm >> 11 & 1) << 20)
            | ((imm >> 12 & 0xff) << 12)
            | (rd << 7)
            | opcode
    }

    /// `addi rd, rs1, imm`
    pub fn addi(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b000, rd, 0b0010011)
    }
    /// `slti rd, rs1, imm`
    pub fn slti(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b010, rd, 0b0010011)
    }
    /// `sltiu rd, rs1, imm`
    pub fn sltiu(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b011, rd, 0b0010011)
    }
    /// `xori rd, rs1, imm`
    pub fn xori(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b100, rd, 0b0010011)
    }
    /// `ori rd, rs1, imm`
    pub fn ori(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b110, rd, 0b0010011)
    }
    /// `andi rd, rs1, imm`
    pub fn andi(rd: u32, rs1: u32, imm: i32) -> u32 {
        i_type(imm, rs1, 0b111, rd, 0b0010011)
    }
    /// `slli rd, rs1, shamt`
    pub fn slli(rd: u32, rs1: u32, shamt: u32) -> u32 {
        i_type(shamt as i32, rs1, 0b001, rd, 0b0010011)
    }
    /// `srli rd, rs1, shamt`
    pub fn srli(rd: u32, rs1: u32, shamt: u32) -> u32 {
        i_type(shamt as i32, rs1, 0b101, rd, 0b0010011)
    }
    /// `srai rd, rs1, shamt`
    pub fn srai(rd: u32, rs1: u32, shamt: u32) -> u32 {
        i_type((shamt | 0x400) as i32, rs1, 0b101, rd, 0b0010011)
    }
    /// `add rd, rs1, rs2`
    pub fn add(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b000, rd, 0b0110011)
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0b0100000, rs2, rs1, 0b000, rd, 0b0110011)
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b001, rd, 0b0110011)
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b010, rd, 0b0110011)
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b011, rd, 0b0110011)
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b100, rd, 0b0110011)
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b101, rd, 0b0110011)
    }
    /// `sra rd, rs1, rs2`
    pub fn sra(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0b0100000, rs2, rs1, 0b101, rd, 0b0110011)
    }
    /// `or rd, rs1, rs2`
    pub fn or(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b110, rd, 0b0110011)
    }
    /// `and rd, rs1, rs2`
    pub fn and(rd: u32, rs1: u32, rs2: u32) -> u32 {
        r_type(0, rs2, rs1, 0b111, rd, 0b0110011)
    }
    /// `lw rd, offset(rs1)`
    pub fn lw(rd: u32, rs1: u32, offset: i32) -> u32 {
        i_type(offset, rs1, 0b010, rd, 0b0000011)
    }
    /// `sw rs2, offset(rs1)`
    pub fn sw(rs2: u32, rs1: u32, offset: i32) -> u32 {
        s_type(offset, rs2, rs1, 0b010, 0b0100011)
    }
    /// `beq rs1, rs2, offset`
    pub fn beq(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b000, 0b1100011)
    }
    /// `bne rs1, rs2, offset`
    pub fn bne(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b001, 0b1100011)
    }
    /// `blt rs1, rs2, offset`
    pub fn blt(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b100, 0b1100011)
    }
    /// `bge rs1, rs2, offset`
    pub fn bge(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b101, 0b1100011)
    }
    /// `bltu rs1, rs2, offset`
    pub fn bltu(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b110, 0b1100011)
    }
    /// `bgeu rs1, rs2, offset`
    pub fn bgeu(rs1: u32, rs2: u32, offset: i32) -> u32 {
        b_type(offset, rs2, rs1, 0b111, 0b1100011)
    }
    /// `jal rd, offset`
    pub fn jal(rd: u32, offset: i32) -> u32 {
        j_type(offset, rd, 0b1101111)
    }
    /// `jalr rd, rs1, offset`
    pub fn jalr(rd: u32, rs1: u32, offset: i32) -> u32 {
        i_type(offset, rs1, 0b000, rd, 0b1100111)
    }
    /// `lui rd, imm20`
    pub fn lui(rd: u32, imm20: u32) -> u32 {
        u_type(imm20, rd, 0b0110111)
    }
    /// `auipc rd, imm20`
    pub fn auipc(rd: u32, imm20: u32) -> u32 {
        u_type(imm20, rd, 0b0010111)
    }
    /// `ecall` — treated as halt by the core.
    pub fn ecall() -> u32 {
        0b1110011
    }
}

/// An assembled program plus optional initial data memory contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Instruction words, placed from address 0.
    pub text: Vec<u32>,
    /// Initial `(word address, value)` pairs for the data memory.
    pub data: Vec<(u64, u32)>,
}

impl Program {
    /// A program with no initial data.
    pub fn new(text: Vec<u32>) -> Self {
        Program {
            text,
            data: Vec::new(),
        }
    }

    /// Attach initial data words.
    pub fn with_data(mut self, data: Vec<(u64, u32)>) -> Self {
        self.data = data;
        self
    }

    /// Load the program through a simulator's backdoor memory interface.
    ///
    /// # Errors
    ///
    /// Propagates backdoor write failures (unknown memory, out of range).
    pub fn load(&self, sim: &mut dyn Simulator, imem: &str, dmem: &str) -> Result<(), SimError> {
        for (i, word) in self.text.iter().enumerate() {
            sim.write_mem(imem, i as u64, *word as u64)?;
        }
        for (addr, value) in &self.data {
            sim.write_mem(dmem, *addr, *value as u64)?;
        }
        Ok(())
    }
}

/// ISA smoke-test suite: one program per instruction group, the software
/// test suite used for §5.3 coverage merging.
pub fn isa_suite() -> Vec<(&'static str, Program)> {
    use asm::*;
    vec![
        (
            "arith",
            Program::new(vec![
                addi(1, 0, 100),
                addi(2, 0, -3),
                add(3, 1, 2),
                sub(4, 1, 2),
                slt(5, 2, 1),
                sltu(6, 2, 1),
                slti(7, 2, 0),
                sltiu(8, 1, 200),
                ecall(),
            ]),
        ),
        (
            "logic",
            Program::new(vec![
                addi(1, 0, 0x55),
                addi(2, 0, 0x0f),
                and(3, 1, 2),
                or(4, 1, 2),
                xor(5, 1, 2),
                andi(6, 1, 0x3c),
                ori(7, 1, 0x700),
                xori(8, 1, -1),
                ecall(),
            ]),
        ),
        (
            "shift",
            Program::new(vec![
                addi(1, 0, -16),
                slli(2, 1, 3),
                srli(3, 1, 2),
                srai(4, 1, 2),
                addi(5, 0, 2),
                sll(6, 1, 5),
                srl(7, 1, 5),
                sra(8, 1, 5),
                ecall(),
            ]),
        ),
        (
            "branch",
            Program::new(vec![
                addi(1, 0, 3),
                addi(2, 0, 0),
                // loop: x2 += x1; x1 -= 1; bne x1, x0, loop
                add(2, 2, 1),
                addi(1, 1, -1),
                bne(1, 0, -8),
                blt(0, 2, 8),
                addi(3, 0, 99), // skipped
                bge(2, 0, 8),
                addi(4, 0, 99), // skipped
                ecall(),
            ]),
        ),
        (
            "memory",
            Program::new(vec![
                addi(1, 0, 0x40),
                addi(2, 0, 123),
                sw(2, 1, 0),
                sw(2, 1, 8),
                lw(3, 1, 0),
                lw(4, 1, 8),
                add(5, 3, 4),
                sw(5, 1, 16),
                ecall(),
            ]),
        ),
        (
            "jump",
            Program::new(vec![
                jal(1, 12),
                addi(2, 0, 99), // skipped
                ecall(),
                addi(3, 0, 7),
                jalr(4, 0, 8),
            ]),
        ),
        (
            "upper",
            Program::new(vec![lui(1, 0xdead0), auipc(2, 0xbeef), ecall()]),
        ),
    ]
}

/// The §5.2 "Linux boot" substitute: a long-running kernel-ish workload —
/// nested loops, function calls via `jal`/`jalr`, and a memory-walk inner
/// loop — sized by `outer_iterations`.
pub fn boot_workload(outer_iterations: u32) -> Program {
    use asm::*;
    // registers: x1 outer counter, x2 inner counter, x3 accumulator,
    // x4 memory base, x5 scratch, x6 call target, x31 link
    let text = vec![
        /* 0:  */ addi(1, 0, 0), // outer = 0
        /* 4:  */ lui(5, 0), // placeholder (patched below to iteration cap)
        /* 8:  */ addi(3, 0, 0), // acc = 0
        /* 12: */ addi(4, 0, 0x200), // memory base
        // outer loop:
        /* 16: */ addi(2, 0, 8), // inner = 8
        // inner loop: acc += inner; mem[base + inner*4] = acc; x5 = load back
        /* 20: */
        add(3, 3, 2),
        /* 24: */ slli(6, 2, 2),
        /* 28: */ add(6, 6, 4),
        /* 32: */ sw(3, 6, 0),
        /* 36: */ lw(5, 6, 0),
        /* 40: */ addi(2, 2, -1),
        /* 44: */ bne(2, 0, -24), // back to 20
        // "function call": jal to a small leaf at 72
        /* 48: */
        jal(31, 24), // to 72
        /* 52: */ addi(1, 1, 1), // outer++
        /* 56: */ blt(1, 7, -40), // while outer < cap (x7): back to 16
        /* 60: */ ecall(),
        /* 64: */ addi(0, 0, 0), // padding
        /* 68: */ addi(0, 0, 0),
        // leaf function: x3 = x3 ^ x1; return
        /* 72: */ xor(3, 3, 1),
        /* 76: */ jalr(0, 31, 0),
    ];
    let mut text = text;
    // patch: x7 = outer_iterations (set before the loop, replacing padding)
    // insert cap setup at slot 1 (the lui placeholder)
    text[1] = addi(7, 0, outer_iterations.min(2047) as i32);
    Program::new(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_match_reference() {
        // cross-checked against a reference assembler
        assert_eq!(asm::addi(1, 0, 7), 0x0070_0093);
        assert_eq!(asm::add(3, 1, 2), 0x0020_81b3);
        assert_eq!(asm::sub(4, 2, 1), 0x4011_0233);
        assert_eq!(asm::lw(3, 1, 0), 0x0000_a183);
        assert_eq!(asm::sw(2, 1, 0), 0x0020_a023);
        assert_eq!(asm::lui(1, 0x12345), 0x1234_50b7);
        assert_eq!(asm::jal(1, 8), 0x0080_00ef);
        assert_eq!(asm::ecall(), 0x0000_0073);
    }

    #[test]
    fn branch_encoding_negative_offset() {
        // bne x1, x0, -8
        let word = asm::bne(1, 0, -8);
        // imm[12|10:5] = 1111111, imm[4:1|11] = 1100 1
        assert_eq!(word, 0xfe00_9ce3);
    }

    #[test]
    fn isa_suite_is_nonempty() {
        let suite = isa_suite();
        assert!(suite.len() >= 7);
        for (name, p) in &suite {
            assert!(!p.text.is_empty(), "{name}");
            assert!(
                p.text.iter().any(|w| w & 0x7f == 0b1110011),
                "{name} must contain a halt"
            );
        }
    }

    #[test]
    fn boot_workload_scales() {
        let small = boot_workload(2);
        let big = boot_workload(100);
        assert_eq!(small.text.len(), big.text.len());
        assert_ne!(small.text[1], big.text[1]);
    }
}

//! A Chisel-style `Queue`: the canonical DecoupledIO component.
//!
//! Circular buffer with decoupled enqueue and dequeue interfaces — the
//! exact pattern the paper's ready/valid pass was built for (§4.4). Used
//! by tests and as a composable building block.

use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::{Circuit, Expr, Field, Type};

fn decoupled(width: u32) -> Type {
    Type::Bundle(vec![
        Field {
            name: "ready".into(),
            flip: true,
            ty: Type::bool(),
        },
        Field {
            name: "valid".into(),
            flip: false,
            ty: Type::bool(),
        },
        Field {
            name: "bits".into(),
            flip: false,
            ty: Type::uint(width),
        },
    ])
}

/// Build a queue of `depth` entries (power of two) of `width`-bit values.
pub fn queue(width: u32, depth: usize) -> Circuit {
    assert!(
        depth.is_power_of_two(),
        "queue depth must be a power of two"
    );
    let ptr_w = rtlcov_firrtl::typecheck::addr_width(depth);
    let mut m = ModuleBuilder::new("Queue");
    m.clock();
    m.reset();
    let enq = m.input_ty("enq", decoupled(width));
    let deq = m.output_ty("deq", decoupled(width));
    let count = m.output("count", ptr_w + 1);

    let mem = m.mem("ram", width, depth, &["r"], &["w"]);
    let enq_ptr = m.reg_init("enq_ptr", ptr_w, Expr::u(0, ptr_w));
    let deq_ptr = m.reg_init("deq_ptr", ptr_w, Expr::u(0, ptr_w));
    let maybe_full = m.reg_init("maybe_full", 1, Expr::u(0, 1));

    let ptr_match = m.node("ptr_match", enq_ptr.eq_(&deq_ptr));
    let empty = m.node(
        "empty",
        ptr_match.and(&maybe_full.not_().bits(0, 0)).bits(0, 0),
    );
    let full = m.node("full", ptr_match.and(&maybe_full).bits(0, 0));
    let do_enq = m.node(
        "do_enq",
        enq.field("valid").and(&enq.field("ready")).bits(0, 0),
    );
    let do_deq = m.node(
        "do_deq",
        deq.field("valid").and(&deq.field("ready")).bits(0, 0),
    );

    m.connect(enq.field("ready"), full.not_().bits(0, 0));
    m.connect(deq.field("valid"), empty.not_().bits(0, 0));

    m.connect(mem.field("r").field("addr"), deq_ptr.clone());
    m.connect(mem.field("r").field("en"), Expr::one());
    m.connect(deq.field("bits"), mem.field("r").field("data"));

    m.connect(mem.field("w").field("addr"), enq_ptr.clone());
    m.connect(mem.field("w").field("en"), do_enq.clone());
    m.connect(mem.field("w").field("data"), enq.field("bits"));
    m.connect(mem.field("w").field("mask"), Expr::one());

    let de = do_enq.clone();
    m.when(de, |m| {
        m.connect(Expr::r("enq_ptr"), Expr::r("enq_ptr").addw(&Expr::u(1, 1)));
    });
    let dd = do_deq.clone();
    m.when(dd, |m| {
        m.connect(Expr::r("deq_ptr"), Expr::r("deq_ptr").addw(&Expr::u(1, 1)));
    });
    let changed = m.node("changed", do_enq.neq(&do_deq));
    m.when(changed, move |m| {
        m.connect(Expr::r("maybe_full"), do_enq.clone());
    });

    // occupancy = enq_ptr - deq_ptr (mod depth), plus depth when full
    let diff = m.node("diff", Expr::r("enq_ptr").subw(&Expr::r("deq_ptr")));
    m.connect(
        count,
        Expr::r("full").mux(&Expr::u(depth as u64, ptr_w + 1), &diff.pad(ptr_w + 1)),
    );

    CircuitBuilder::new("Queue").add(m).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_core::instrument::{CoverageCompiler, Metrics};
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn sim(depth: usize) -> CompiledSim {
        let low = passes::lower(queue(8, depth)).unwrap();
        let mut s = CompiledSim::new(&low).unwrap();
        s.reset(1);
        s
    }

    fn push(s: &mut CompiledSim, v: u64) -> bool {
        s.poke("enq_valid", 1);
        s.poke("enq_bits", v);
        let accepted = s.peek("enq_ready") == 1;
        s.step();
        s.poke("enq_valid", 0);
        accepted
    }

    fn pop(s: &mut CompiledSim) -> Option<u64> {
        s.poke("deq_ready", 1);
        let v = (s.peek("deq_valid") == 1).then(|| s.peek("deq_bits"));
        s.step();
        s.poke("deq_ready", 0);
        v
    }

    #[test]
    fn fifo_order() {
        let mut s = sim(4);
        for v in [11u64, 22, 33] {
            assert!(push(&mut s, v));
        }
        assert_eq!(s.peek("count"), 3);
        assert_eq!(pop(&mut s), Some(11));
        assert_eq!(pop(&mut s), Some(22));
        assert_eq!(pop(&mut s), Some(33));
        assert_eq!(pop(&mut s), None);
    }

    #[test]
    fn full_queue_backpressures() {
        let mut s = sim(4);
        for v in 0..4u64 {
            assert!(push(&mut s, v));
        }
        assert_eq!(s.peek("count"), 4);
        assert!(!push(&mut s, 99), "full queue must not accept");
        assert_eq!(pop(&mut s), Some(0));
        assert!(push(&mut s, 99));
    }

    #[test]
    fn wraparound_many_times() {
        let mut s = sim(2);
        for round in 0..20u64 {
            assert!(push(&mut s, round));
            assert_eq!(pop(&mut s), Some(round), "round {round}");
        }
    }

    #[test]
    fn ready_valid_pass_finds_both_interfaces() {
        let inst = CoverageCompiler::new(Metrics::ready_valid_only())
            .run(queue(8, 4))
            .unwrap();
        assert_eq!(inst.artifacts.ready_valid.cover_count(), 2);
        // transfers are counted on both sides
        let mut s = CompiledSim::new(&inst.circuit).unwrap();
        s.reset(1);
        s.poke("enq_valid", 1);
        s.poke("enq_bits", 7);
        s.poke("deq_ready", 0);
        s.step();
        s.poke("enq_valid", 0);
        s.poke("deq_ready", 1);
        s.step();
        let counts = s.cover_counts();
        assert_eq!(counts.count("rv_enq"), Some(1));
        assert_eq!(counts.count("rv_deq"), Some(1));
    }

    #[test]
    fn simultaneous_enq_deq_keeps_count() {
        let mut s = sim(4);
        push(&mut s, 1);
        push(&mut s, 2);
        // enqueue and dequeue in the same cycle
        s.poke("enq_valid", 1);
        s.poke("enq_bits", 3);
        s.poke("deq_ready", 1);
        assert_eq!(s.peek("deq_valid"), 1);
        s.step();
        s.poke("enq_valid", 0);
        s.poke("deq_ready", 0);
        assert_eq!(s.peek("count"), 2);
    }
}

//! AFL-style input mutators.
//!
//! The paper connects AFL to an rfuzz-style harness; this module implements
//! AFL's core mutation operators over raw byte buffers: bit flips, byte
//! operations, bounded arithmetic, interesting-value substitution, havoc
//! stacking, and splicing between corpus entries.

use rand::Rng;

/// Interesting 8-bit values (from AFL's technical details).
const INTERESTING_8: [u8; 9] = [0x80, 0xff, 0x00, 0x01, 0x10, 0x20, 0x40, 0x64, 0x7f];

/// Apply one random mutation (possibly stacked) to `input`.
pub fn mutate(input: &mut Vec<u8>, rng: &mut impl Rng) {
    if input.is_empty() {
        input.push(rng.gen());
        return;
    }
    match rng.gen_range(0..10) {
        0 => bitflip(input, rng),
        1 => byteflip(input, rng),
        2 => arith(input, rng),
        3 => interesting(input, rng),
        4 => random_byte(input, rng),
        5 => grow(input, rng),
        6 => shrink(input, rng),
        7 | 8 => clone_block(input, rng),
        _ => havoc(input, rng),
    }
}

/// Flip 1, 2 or 4 consecutive bits.
pub fn bitflip(input: &mut [u8], rng: &mut impl Rng) {
    let n = [1u32, 2, 4][rng.gen_range(0..3)];
    let total_bits = input.len() * 8;
    let start = rng.gen_range(0..total_bits);
    for i in 0..n as usize {
        let bit = (start + i) % total_bits;
        input[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Invert a whole byte.
pub fn byteflip(input: &mut [u8], rng: &mut impl Rng) {
    let i = rng.gen_range(0..input.len());
    input[i] ^= 0xff;
}

/// Add or subtract a small delta (AFL's arith stage, ±35).
pub fn arith(input: &mut [u8], rng: &mut impl Rng) {
    let i = rng.gen_range(0..input.len());
    let delta = rng.gen_range(1..=35u8);
    if rng.gen() {
        input[i] = input[i].wrapping_add(delta);
    } else {
        input[i] = input[i].wrapping_sub(delta);
    }
}

/// Overwrite a byte with an "interesting" value.
pub fn interesting(input: &mut [u8], rng: &mut impl Rng) {
    let i = rng.gen_range(0..input.len());
    input[i] = INTERESTING_8[rng.gen_range(0..INTERESTING_8.len())];
}

/// Replace a byte with a random value.
pub fn random_byte(input: &mut [u8], rng: &mut impl Rng) {
    let i = rng.gen_range(0..input.len());
    input[i] = rng.gen();
}

/// Append random bytes (lengthens the run).
pub fn grow(input: &mut Vec<u8>, rng: &mut impl Rng) {
    let n = rng.gen_range(1..=16);
    for _ in 0..n {
        input.push(rng.gen());
    }
}

/// Truncate the tail (shortens the run).
pub fn shrink(input: &mut Vec<u8>, rng: &mut impl Rng) {
    if input.len() > 2 {
        let keep = rng.gen_range(1..input.len());
        input.truncate(keep);
    }
}

/// Duplicate a random block and insert it right after itself — AFL's
/// havoc block-clone operator. This is the mutation that extends repeated
/// waveforms (e.g. one more SCL pulse in an I2C frame).
pub fn clone_block(input: &mut Vec<u8>, rng: &mut impl Rng) {
    if input.is_empty() {
        input.push(rng.gen());
        return;
    }
    let len = rng.gen_range(1..=input.len().min(32));
    let start = rng.gen_range(0..=input.len() - len);
    let block: Vec<u8> = input[start..start + len].to_vec();
    let copies = rng.gen_range(1..=4);
    let at = start + len;
    for _ in 0..copies {
        if input.len() > 4096 {
            break;
        }
        input.splice(at..at, block.iter().copied());
    }
}

/// Overwrite a random block with a copy of another block (AFL's havoc
/// block-overwrite operator).
pub fn overwrite_block(input: &mut [u8], rng: &mut impl Rng) {
    if input.len() < 2 {
        return;
    }
    let len = rng.gen_range(1..=input.len() / 2);
    let src = rng.gen_range(0..=input.len() - len);
    let dst = rng.gen_range(0..=input.len() - len);
    let block: Vec<u8> = input[src..src + len].to_vec();
    input[dst..dst + len].copy_from_slice(&block);
}

/// Overwrite a random position with a dictionary value — AFL's
/// dictionary stage. The dictionary holds comparison constants harvested
/// from the DUT (see `FuzzHarness::dictionary`), written little-endian so
/// multi-byte constants land the way the harness packs input words.
pub fn dict_value(input: &mut [u8], dict: &[u64], rng: &mut impl Rng) {
    if input.is_empty() || dict.is_empty() {
        return;
    }
    let v = dict[rng.gen_range(0..dict.len())];
    let bytes = (((64 - v.leading_zeros()) as usize).div_ceil(8)).max(1);
    let i = rng.gen_range(0..input.len());
    for k in 0..bytes.min(input.len() - i) {
        input[i + k] = (v >> (8 * k)) as u8;
    }
}

/// Stack 2–8 random mutations (AFL's havoc stage).
pub fn havoc(input: &mut Vec<u8>, rng: &mut impl Rng) {
    let n = rng.gen_range(2..=8);
    for _ in 0..n {
        match rng.gen_range(0..7) {
            0 => bitflip(input, rng),
            1 => byteflip(input, rng),
            2 => arith(input, rng),
            3 => interesting(input, rng),
            4 => clone_block(input, rng),
            5 => overwrite_block(input, rng),
            _ => random_byte(input, rng),
        }
        if input.is_empty() {
            input.push(rng.gen());
        }
    }
}

/// Splice two corpus entries at random cut points (AFL's crossover).
pub fn splice(a: &[u8], b: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let cut_a = rng.gen_range(0..a.len());
    let cut_b = rng.gen_range(0..b.len());
    let mut out = a[..cut_a].to_vec();
    out.extend_from_slice(&b[cut_b..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mutations_change_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let original = vec![0u8; 32];
        let mut changed = 0;
        for _ in 0..100 {
            let mut input = original.clone();
            mutate(&mut input, &mut rng);
            if input != original {
                changed += 1;
            }
        }
        assert!(
            changed > 90,
            "only {changed} of 100 mutations changed the input"
        );
    }

    #[test]
    fn bitflip_flips_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let mut input = vec![0u8; 8];
            bitflip(&mut input, &mut rng);
            let ones: u32 = input.iter().map(|b| b.count_ones()).sum();
            assert!(matches!(ones, 1 | 2 | 4), "{ones}");
        }
    }

    #[test]
    fn splice_preserves_material() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = vec![1u8; 10];
        let b = vec![2u8; 10];
        for _ in 0..20 {
            let s = splice(&a, &b, &mut rng);
            assert!(!s.is_empty());
            assert!(s.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn grow_and_shrink_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut input = vec![0u8; 4];
        grow(&mut input, &mut rng);
        assert!(input.len() > 4);
        let mut input = vec![0u8; 100];
        shrink(&mut input, &mut rng);
        assert!(input.len() < 100);
        assert!(!input.is_empty());
    }

    #[test]
    fn clone_block_repeats_material() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut input: Vec<u8> = (0..16).collect();
        clone_block(&mut input, &mut rng);
        assert!(input.len() > 16);
    }

    #[test]
    fn overwrite_block_keeps_length() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut input: Vec<u8> = (0..16).collect();
        overwrite_block(&mut input, &mut rng);
        assert_eq!(input.len(), 16);
    }

    #[test]
    fn dict_value_plants_constants() {
        let mut rng = StdRng::seed_from_u64(6);
        let dict = [17u64, 43, 0x1234];
        let mut planted_wide = false;
        for _ in 0..50 {
            let mut input = vec![0u8; 16];
            dict_value(&mut input, &dict, &mut rng);
            assert!(input.iter().any(|&b| b != 0));
            if input.windows(2).any(|w| w == [0x34, 0x12]) {
                planted_wide = true;
            }
        }
        assert!(planted_wide, "multi-byte constants must land little-endian");
    }

    #[test]
    fn empty_input_is_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut input = Vec::new();
        mutate(&mut input, &mut rng);
        assert!(!input.is_empty());
    }
}

//! # rtlcov-fuzz
//!
//! Coverage-guided mutational fuzzing for RTL (§5.4 of the paper): an
//! AFL-style mutation engine ([`mutate`]), an rfuzz-style harness mapping
//! raw bytes onto DUT pins ([`harness`]), and a fuzzing loop that accepts
//! **any** instrumented coverage metric as feedback ([`fuzzer`]) — the
//! mix-and-match capability the cover-primitive design enables.

#![warn(missing_docs)]

pub mod codec_fuzz;
pub mod equivalence;
pub mod fuzzer;
pub mod harness;
pub mod mutate;

pub use codec_fuzz::CodecFuzzReport;
pub use fuzzer::{averaged_campaign, CoveragePoint, Feedback, Fuzzer};
pub use harness::FuzzHarness;

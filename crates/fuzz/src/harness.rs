//! The rfuzz-style harness: raw fuzzer bytes drive the DUT's input pins,
//! one chunk per clock cycle.
//!
//! Inputs are packed in declaration order, bit-exact: a design with inputs
//! `scl:1, sda_in:1, data_in:8` consumes 10 bits ≈ 2 bytes per cycle.
//! The input buffer length determines the run length.

use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::{Circuit, Expr, PrimOp, Stmt};
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::{SimError, Simulator};

/// A reusable fuzz harness around a compiled simulator.
#[derive(Debug, Clone)]
pub struct FuzzHarness {
    base: CompiledSim,
    /// `(name, width)` of each driven input (reset excluded).
    inputs: Vec<(String, u32)>,
    bits_per_cycle: usize,
    max_cycles: usize,
    native_feedback: bool,
    dictionary: Vec<u64>,
}

/// Harvest literal comparison operands from an expression tree.
fn dict_from_expr(e: &Expr, out: &mut Vec<u64>) {
    match e {
        Expr::Prim { op, args, .. } => {
            if matches!(
                op,
                PrimOp::Eq | PrimOp::Neq | PrimOp::Lt | PrimOp::Leq | PrimOp::Gt | PrimOp::Geq
            ) {
                for a in args {
                    if let Expr::UIntLit(bv) | Expr::SIntLit(bv) = a {
                        out.push(bv.to_u64());
                    }
                }
            }
            for a in args {
                dict_from_expr(a, out);
            }
        }
        Expr::Mux(c, t, f) => {
            dict_from_expr(c, out);
            dict_from_expr(t, out);
            dict_from_expr(f, out);
        }
        Expr::ValidIf(c, v) => {
            dict_from_expr(c, out);
            dict_from_expr(v, out);
        }
        Expr::SubField(b, _) | Expr::SubIndex(b, _) => dict_from_expr(b, out),
        Expr::Ref(_) | Expr::UIntLit(_) | Expr::SIntLit(_) => {}
    }
}

fn dict_from_stmts(stmts: &[Stmt], out: &mut Vec<u64>) {
    for s in stmts {
        match s {
            Stmt::Node { value, .. } => dict_from_expr(value, out),
            Stmt::Connect { value, .. } => dict_from_expr(value, out),
            Stmt::Reg {
                reset: Some((_, init)),
                ..
            } => dict_from_expr(init, out),
            Stmt::When {
                cond, then, else_, ..
            } => {
                dict_from_expr(cond, out);
                dict_from_stmts(then, out);
                dict_from_stmts(else_, out);
            }
            Stmt::Cover { pred, enable, .. } => {
                dict_from_expr(pred, out);
                dict_from_expr(enable, out);
            }
            Stmt::CoverValues { signal, enable, .. } => {
                dict_from_expr(signal, out);
                dict_from_expr(enable, out);
            }
            _ => {}
        }
    }
}

/// Collect the comparison constants of a circuit — the AFL-style
/// dictionary. Values 0 and 1 are dropped: trivial mutations produce
/// them constantly, so they carry no signal.
fn extract_dictionary(circuit: &Circuit) -> Vec<u64> {
    let mut out = Vec::new();
    for m in &circuit.modules {
        dict_from_stmts(&m.body, &mut out);
    }
    out.retain(|&v| v > 1);
    out.sort_unstable();
    out.dedup();
    out
}

/// Result of one fuzz execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Instrumented cover counts (line/toggle/fsm/... whatever was
    /// compiled in).
    pub covers: CoverageMap,
    /// Native per-mux branch counts (rfuzz's mux-toggle metric) when
    /// enabled.
    pub native: CoverageMap,
    /// Cycles executed.
    pub cycles: usize,
}

impl FuzzHarness {
    /// Build a harness from a lowered, instrumented circuit.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(circuit: &Circuit, max_cycles: usize) -> Result<Self, SimError> {
        let flat = rtlcov_sim::elaborate::elaborate(circuit).map_err(|e| SimError(e.0))?;
        let base = CompiledSim::new(circuit)?;
        let inputs: Vec<(String, u32)> = flat
            .inputs
            .iter()
            .filter(|n| n.as_str() != "reset")
            .map(|n| (n.clone(), flat.signals[n].width))
            .collect();
        let bits_per_cycle = inputs
            .iter()
            .map(|(_, w)| *w as usize)
            .sum::<usize>()
            .max(1);
        Ok(FuzzHarness {
            base,
            inputs,
            bits_per_cycle,
            max_cycles,
            native_feedback: false,
            dictionary: extract_dictionary(circuit),
        })
    }

    /// Comparison constants harvested from the DUT, for dictionary
    /// mutations. A lock comparing against magic bytes is essentially
    /// unreachable by blind byte mutation; seeding the mutator with the
    /// circuit's own comparison operands (AFL's dictionary stage) closes
    /// that gap.
    pub fn dictionary(&self) -> &[u64] {
        &self.dictionary
    }

    /// Also collect native mux-branch coverage (the rfuzz feedback metric).
    pub fn enable_native_feedback(&mut self) {
        self.base.enable_native_coverage();
        self.native_feedback = true;
    }

    /// Bytes consumed per simulated cycle.
    pub fn bytes_per_cycle(&self) -> usize {
        self.bits_per_cycle.div_ceil(8)
    }

    /// Driven inputs (name, width).
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Execute one input buffer from reset; returns coverage.
    pub fn run(&self, input: &[u8]) -> ExecResult {
        let mut sim = self.base.clone();
        sim.reset(1);
        let bpc = self.bytes_per_cycle();
        let cycles = (input.len() / bpc).min(self.max_cycles);
        for c in 0..cycles {
            let chunk = &input[c * bpc..(c + 1) * bpc];
            let mut bit_pos = 0usize;
            for (name, width) in &self.inputs {
                let mut value = 0u64;
                for i in 0..*width as usize {
                    let p = bit_pos + i;
                    if p / 8 < chunk.len() && (chunk[p / 8] >> (p % 8)) & 1 == 1 {
                        value |= 1 << i;
                    }
                }
                bit_pos += *width as usize;
                sim.poke(name, value);
            }
            sim.step();
        }
        ExecResult {
            covers: sim.cover_counts(),
            native: if self.native_feedback {
                sim.native_coverage()
            } else {
                CoverageMap::new()
            },
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn harness() -> FuzzHarness {
        let low = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<4>
    input b : UInt<4>
    cover(clock, eq(a, b), UInt<1>(1)) : same
",
            )
            .unwrap(),
        )
        .unwrap();
        FuzzHarness::new(&low, 64).unwrap()
    }

    #[test]
    fn packs_bits_per_cycle() {
        let h = harness();
        assert_eq!(h.bytes_per_cycle(), 1); // 4 + 4 bits
        assert_eq!(h.inputs().len(), 2);
    }

    #[test]
    fn deterministic_execution() {
        let h = harness();
        let input: Vec<u8> = (0..20).collect();
        let r1 = h.run(&input);
        let r2 = h.run(&input);
        assert_eq!(r1.covers, r2.covers);
        assert_eq!(r1.cycles, 20);
    }

    #[test]
    fn input_reaches_cover() {
        let h = harness();
        // the reset cycle itself fires the cover once (a = b = 0), then
        // byte 0x33 drives a = 3, b = 3 => one more hit
        let r = h.run(&[0x33]);
        assert_eq!(r.covers.count("same"), Some(2));
        // byte 0x21: a = 1, b = 2 => only the reset-cycle hit
        let r = h.run(&[0x21]);
        assert_eq!(r.covers.count("same"), Some(1));
    }

    #[test]
    fn dictionary_holds_comparison_constants() {
        let low = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input k : UInt<8>
    output o : UInt<1>
    o <= and(eq(k, UInt<8>(17)), neq(k, UInt<8>(200)))
",
            )
            .unwrap(),
        )
        .unwrap();
        let h = FuzzHarness::new(&low, 8).unwrap();
        assert!(h.dictionary().contains(&17));
        assert!(h.dictionary().contains(&200));
        assert!(!h.dictionary().contains(&0));
    }

    #[test]
    fn max_cycles_respected() {
        let h = harness();
        let input = vec![0u8; 1000];
        let r = h.run(&input);
        assert_eq!(r.cycles, 64);
    }
}

//! The coverage-guided fuzzing loop (§5.4).
//!
//! Any instrumented coverage metric can serve as feedback — the paper's
//! core point: because metrics are compiler passes over a common `cover`
//! primitive, switching the feedback metric is a one-line change instead
//! of a simulator swap. Figure 11 compares line-coverage feedback,
//! rfuzz-style mux-toggle feedback, and no feedback (random).

use crate::harness::{ExecResult, FuzzHarness};
use crate::mutate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov_core::CoverageMap;
use std::collections::HashSet;

/// Which signal guides corpus growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// New instrumented cover points (e.g. line coverage) grow the corpus.
    InstrumentedCovers,
    /// rfuzz-style structural mux-branch coverage.
    NativeMux,
    /// No feedback: pure random generation (the Fig. 11 baseline).
    Random,
}

/// AFL-style count bucketing: collapses counts into 8 ranges so "hit more
/// often" counts as novelty only across orders of magnitude.
fn bucket(count: u64) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 3,
        4..=7 => 4,
        8..=15 => 5,
        16..=127 => 6,
        _ => 7,
    }
}

/// One point of the cumulative-coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Executions completed.
    pub executions: usize,
    /// Distinct instrumented cover points hit so far.
    pub covered: usize,
    /// Total instrumented cover points.
    pub total: usize,
}

impl CoveragePoint {
    /// Covered fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// The fuzzer state.
#[derive(Debug)]
pub struct Fuzzer {
    harness: FuzzHarness,
    feedback: Feedback,
    rng: StdRng,
    corpus: Vec<Vec<u8>>,
    dictionary: Vec<u64>,
    seen: HashSet<(String, u8)>,
    cumulative: CoverageMap,
    executions: usize,
    history: Vec<CoveragePoint>,
}

impl Fuzzer {
    /// Create a fuzzer over a harness with the given feedback and seed.
    pub fn new(harness: FuzzHarness, feedback: Feedback, seed: u64) -> Self {
        let seed_input = vec![0u8; harness.bytes_per_cycle() * 32];
        let dictionary = harness.dictionary().to_vec();
        Fuzzer {
            harness,
            feedback,
            rng: StdRng::seed_from_u64(seed),
            corpus: vec![seed_input],
            dictionary,
            seen: HashSet::new(),
            cumulative: CoverageMap::new(),
            executions: 0,
            history: Vec::new(),
        }
    }

    fn signature(&self, result: &ExecResult) -> Vec<(String, u8)> {
        let map = match self.feedback {
            Feedback::InstrumentedCovers => &result.covers,
            Feedback::NativeMux => &result.native,
            Feedback::Random => return Vec::new(),
        };
        map.iter()
            .filter(|(_, c)| *c > 0)
            .map(|(n, c)| (n.to_string(), bucket(c)))
            .collect()
    }

    /// Run one fuzz iteration; returns true if the input was saved.
    pub fn step(&mut self) -> bool {
        let input = self.next_input();
        let result = self.harness.run(&input);
        self.executions += 1;
        self.cumulative.merge(&result.covers);
        self.history.push(CoveragePoint {
            executions: self.executions,
            covered: self.cumulative.covered(),
            total: self.cumulative.len(),
        });

        let mut novel = false;
        for key in self.signature(&result) {
            if self.seen.insert(key) {
                novel = true;
            }
        }
        if novel {
            self.corpus.push(input);
        }
        novel
    }

    /// Run `n` iterations.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn next_input(&mut self) -> Vec<u8> {
        match self.feedback {
            Feedback::Random => {
                // no corpus: fresh random input every time
                let cycles = self.rng.gen_range(4..=64);
                let len = cycles * self.harness.bytes_per_cycle();
                (0..len).map(|_| self.rng.gen()).collect()
            }
            _ => {
                // a slice of fresh random inputs keeps exploration alive
                // (AFL's havoc stage injects large random blocks similarly)
                if self.rng.gen_bool(0.05) {
                    let cycles = self.rng.gen_range(4..=64);
                    let len = cycles * self.harness.bytes_per_cycle();
                    return (0..len).map(|_| self.rng.gen()).collect();
                }
                let idx = self.rng.gen_range(0..self.corpus.len());
                let mut input = if self.corpus.len() >= 2 && self.rng.gen_bool(0.1) {
                    let other = self.rng.gen_range(0..self.corpus.len());
                    mutate::splice(&self.corpus[idx], &self.corpus[other], &mut self.rng)
                } else {
                    self.corpus[idx].clone()
                };
                mutate::mutate(&mut input, &mut self.rng);
                // dictionary stage: plant a DUT comparison constant so
                // magic-value guards (FSM lock steps) are reachable
                if !self.dictionary.is_empty() && self.rng.gen_bool(0.5) {
                    mutate::dict_value(&mut input, &self.dictionary, &mut self.rng);
                }
                input
            }
        }
    }

    /// The cumulative-coverage curve (one point per execution).
    pub fn history(&self) -> &[CoveragePoint] {
        &self.history
    }

    /// Cumulative merged coverage across all executions.
    pub fn cumulative(&self) -> &CoverageMap {
        &self.cumulative
    }

    /// Corpus size.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Executions so far.
    pub fn executions(&self) -> usize {
        self.executions
    }
}

/// Run `runs` independent campaigns of `iterations` each and average the
/// cumulative line-coverage curve (the paper averages five runs for
/// Figure 11). The curve is sampled at `samples` evenly spaced points.
pub fn averaged_campaign(
    make_harness: impl Fn() -> FuzzHarness,
    feedback: Feedback,
    iterations: usize,
    runs: usize,
    samples: usize,
) -> Vec<(usize, f64)> {
    let mut sums = vec![0.0; samples];
    for run in 0..runs {
        let mut fuzzer = Fuzzer::new(make_harness(), feedback, 1000 + run as u64);
        fuzzer.run(iterations);
        let history = fuzzer.history();
        for (i, sum) in sums.iter_mut().enumerate() {
            let at = ((i + 1) * iterations / samples).min(history.len()) - 1;
            *sum += history[at].fraction();
        }
    }
    (0..samples)
        .map(|i| (((i + 1) * iterations) / samples, sums[i] / runs as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_core::instrument::{CoverageCompiler, Metrics};

    /// A lock circuit: the cover fires only after the magic byte sequence,
    /// which random inputs essentially never produce but coverage feedback
    /// discovers step by step.
    fn lock_harness() -> FuzzHarness {
        let src = "
circuit Lock :
  module Lock :
    input clock : Clock
    input reset : UInt<1>
    input key : UInt<8>
    output open : UInt<1>
    reg stage : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    open <= eq(stage, UInt<2>(3))
    when eq(stage, UInt<2>(0)) :
      when eq(key, UInt<8>(17)) :
        stage <= UInt<2>(1)
    else when eq(stage, UInt<2>(1)) :
      when eq(key, UInt<8>(43)) :
        stage <= UInt<2>(2)
      else :
        stage <= UInt<2>(0)
    else when eq(stage, UInt<2>(2)) :
      when eq(key, UInt<8>(99)) :
        stage <= UInt<2>(3)
      else :
        stage <= UInt<2>(0)
";
        let circuit = rtlcov_firrtl::parser::parse(src).unwrap();
        let inst = CoverageCompiler::new(Metrics::line_only())
            .run(circuit)
            .unwrap();
        FuzzHarness::new(&inst.circuit, 32).unwrap()
    }

    #[test]
    fn feedback_beats_random_on_lock() {
        let iterations = 6000;
        let mut guided = Fuzzer::new(lock_harness(), Feedback::InstrumentedCovers, 7);
        guided.run(iterations);
        let mut random = Fuzzer::new(lock_harness(), Feedback::Random, 7);
        random.run(iterations);
        let g = guided.cumulative().covered();
        let r = random.cumulative().covered();
        assert!(
            g >= r,
            "guided {g} < random {r} — feedback should not lose on a lock circuit"
        );
        assert!(guided.corpus_len() > 1, "corpus should grow");
    }

    #[test]
    fn history_is_monotone() {
        let mut f = Fuzzer::new(lock_harness(), Feedback::InstrumentedCovers, 3);
        f.run(200);
        let h = f.history();
        assert_eq!(h.len(), 200);
        for w in h.windows(2) {
            assert!(w[1].covered >= w[0].covered);
        }
    }

    #[test]
    fn native_mux_feedback_runs() {
        let mut h = lock_harness();
        h.enable_native_feedback();
        let mut f = Fuzzer::new(h, Feedback::NativeMux, 11);
        f.run(200);
        assert!(f.executions() == 200);
        assert!(f.corpus_len() >= 1);
    }

    #[test]
    fn averaged_campaign_shape() {
        let curve = averaged_campaign(lock_harness, Feedback::InstrumentedCovers, 200, 2, 10);
        assert_eq!(curve.len(), 10);
        assert_eq!(curve.last().unwrap().0, 200);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "averaged curve must not decrease");
        }
    }
}

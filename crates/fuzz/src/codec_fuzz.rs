//! Fuzz harness for the `rtlcov-core` binary codec.
//!
//! The campaign and the coverage database both feed untrusted on-disk
//! bytes into [`rtlcov_core::codec::decode`], so the decoder's contract —
//! *never panic, reject every malformed input, and round-trip every
//! accepted one* — is load-bearing. This harness drives the decoder with
//! three seeded input families:
//!
//! 1. **pure noise** — uniformly random bytes of random length;
//! 2. **plausible headers** — a valid `RCOV` header followed by noise, so
//!    the entry loop (not just the magic check) gets exercised;
//! 3. **mutated valid shards** — a correctly encoded random map with a
//!    few bytes flipped, truncated, or extended.
//!
//! For every input that decodes `Ok`, the harness asserts the re-encode /
//! re-decode fixpoint: `decode(encode(m)) == m`. Everything is seeded
//! `StdRng`, so a failing iteration reproduces from its seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov_core::codec::{decode, encode, MAGIC, VERSION};
use rtlcov_core::CoverageMap;

/// What one [`run`] observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecFuzzReport {
    /// Inputs fed to the decoder.
    pub iterations: usize,
    /// Inputs the decoder accepted.
    pub accepted: usize,
    /// Inputs the decoder rejected with a structured error.
    pub rejected: usize,
}

/// A random map over a small name alphabet (collisions exercise the
/// duplicate check in mutated encodings).
fn random_map(rng: &mut StdRng) -> CoverageMap {
    let mut map = CoverageMap::new();
    for _ in 0..rng.gen_range(0usize..12) {
        let name = format!("m{}.c{}", rng.gen_range(0u32..4), rng.gen_range(0u32..8));
        map.record(name, rng.gen::<u64>());
    }
    map
}

fn noise(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..=max_len);
    (0..len).map(|_| rng.gen()).collect()
}

fn with_header(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&rng.gen_range(0u64..16).to_le_bytes());
    bytes.extend(noise(rng, 96));
    bytes
}

fn mutated_valid(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = encode(&random_map(rng));
    match rng.gen_range(0u8..3) {
        0 => {
            // flip a few bytes
            for _ in 0..rng.gen_range(1usize..4) {
                if !bytes.is_empty() {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= 1 << rng.gen_range(0u32..8);
                }
            }
        }
        1 => bytes.truncate(rng.gen_range(0..=bytes.len())),
        _ => bytes.extend(noise(rng, 8)),
    }
    bytes
}

/// Feed `iterations` seeded inputs through the decoder.
///
/// # Panics
///
/// Panics (failing the harness) if the decoder panics on any input, or if
/// an accepted input fails the `decode(encode(m)) == m` fixpoint.
pub fn run(seed: u64, iterations: usize) -> CodecFuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = CodecFuzzReport::default();
    for i in 0..iterations {
        let bytes = match i % 3 {
            0 => noise(&mut rng, 256),
            1 => with_header(&mut rng),
            _ => mutated_valid(&mut rng),
        };
        report.iterations += 1;
        match decode(&bytes) {
            Ok(map) => {
                report.accepted += 1;
                let reencoded = encode(&map);
                let redecoded = decode(&reencoded)
                    .unwrap_or_else(|e| panic!("seed {seed} iter {i}: re-decode failed: {e}"));
                assert_eq!(
                    redecoded, map,
                    "seed {seed} iter {i}: decode/encode is not a fixpoint"
                );
            }
            Err(_) => report.rejected += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_survives_seeded_noise() {
        let report = run(0xc0dec, 3000);
        assert_eq!(report.iterations, 3000);
        assert_eq!(report.accepted + report.rejected, report.iterations);
        // valid-shard mutations that only extend or barely flip still
        // decode sometimes; pure noise essentially never does — both
        // outcomes must be represented or the harness is not probing
        // the boundary
        assert!(report.rejected > 0, "{report:?}");
    }

    #[test]
    fn same_seed_reproduces_the_same_trajectory() {
        assert_eq!(run(7, 500), run(7, 500));
    }

    #[test]
    fn valid_encodings_are_accepted() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let map = random_map(&mut rng);
            assert_eq!(decode(&encode(&map)).unwrap(), map);
        }
    }
}

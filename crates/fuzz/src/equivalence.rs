//! Differential equivalence fuzzing for the simulator pipeline.
//!
//! A byte script deterministically generates a random FIRRTL circuit and
//! an input stimulus; the circuit then runs on every software backend
//! configuration — compiled with and without the micro-op optimizer, and
//! the activity-driven engine in seed (per-instruction) and partitioned
//! form. All four must agree bit-for-bit on every named signal at every
//! cycle and on the final coverage maps. This is the executable statement
//! of the optimizer/partitioner contract: pure performance, zero
//! observable difference.

use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::essent::{EssentOptions, EssentSim};
use rtlcov_sim::opt::OptOptions;
use rtlcov_sim::{SimError, Simulator};

/// Cycling byte reader: any byte slice is a valid script.
struct Script<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Script<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Script { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }

    fn next_u16(&mut self) -> u16 {
        u16::from_le_bytes([self.next(), self.next()])
    }
}

/// Generate a random-but-deterministic FIRRTL circuit from a byte script.
///
/// Every node is normalised to `UInt<16>` via `tail(pad(x, 32), 16)`, so
/// arbitrary op choices always width-check. The op table deliberately
/// covers the micro-ops the optimizer rewrites (constant folds, shifts,
/// compares, muxes, signed shifts, reductions) and the circuit carries
/// `cover` and `cover_values` statements so batched sampling is exercised.
pub fn generate_circuit(script: &[u8]) -> String {
    let mut s = Script::new(script);
    let n_inputs = 1 + (s.next() % 3) as usize;
    let n_regs = 1 + (s.next() % 2) as usize;
    let n_nodes = 4 + (s.next() % 12) as usize;

    let mut src = String::from("circuit Gen :\n  module Gen :\n");
    src.push_str("    input clock : Clock\n    input reset : UInt<1>\n");

    // operand pool: names of 16-bit values usable as arguments
    let mut pool: Vec<String> = Vec::new();

    let mut input_widths = Vec::new();
    for i in 0..n_inputs {
        let w = 1 + (s.next() % 16) as u32;
        src.push_str(&format!("    input in{i} : UInt<{w}>\n"));
        input_widths.push(w);
    }
    src.push_str("    output out : UInt<16>\n");

    for j in 0..n_regs {
        let init = s.next_u16();
        src.push_str(&format!(
            "    reg r{j} : UInt<16>, clock with : (reset => (reset, UInt<16>({init})))\n"
        ));
        pool.push(format!("r{j}"));
    }
    for i in 0..n_inputs {
        src.push_str(&format!("    node s{i} = pad(in{i}, 16)\n"));
        pool.push(format!("s{i}"));
    }
    for k in 0..2 {
        let c = s.next_u16();
        src.push_str(&format!("    node k{k} = UInt<16>({c})\n"));
        pool.push(format!("k{k}"));
    }

    for n in 0..n_nodes {
        let a = pool[(s.next() as usize) % pool.len()].clone();
        let b = pool[(s.next() as usize) % pool.len()].clone();
        let c = pool[(s.next() as usize) % pool.len()].clone();
        let imm = s.next();
        let raw = match s.next() % 20 {
            0 => format!("add({a}, {b})"),
            1 => format!("sub({a}, {b})"),
            2 => format!("mul({a}, {b})"),
            3 => format!("and({a}, {b})"),
            4 => format!("or({a}, {b})"),
            5 => format!("xor({a}, {b})"),
            6 => format!("not({a})"),
            7 => format!("asUInt(neg({a}))"),
            8 => format!("eq({a}, {b})"),
            9 => format!("lt({a}, {b})"),
            10 => format!("gt({a}, {b})"),
            11 => format!("mux(orr({c}), {a}, {b})"),
            12 => format!("shl({a}, {})", imm % 8),
            13 => format!("shr({a}, {})", imm % 16),
            14 => format!("asUInt(shr(asSInt({a}), {}))", imm % 16),
            15 => format!("cat({a}, {b})"),
            16 => format!("andr({a})"),
            17 => format!("orr({a})"),
            18 => format!("xorr({a})"),
            _ => format!("dshr({a}, tail({b}, 12))"),
        };
        src.push_str(&format!("    node n{n} = tail(pad({raw}, 32), 16)\n"));
        pool.push(format!("n{n}"));
    }

    for j in 0..n_regs {
        let v = pool[(s.next() as usize) % pool.len()].clone();
        src.push_str(&format!("    r{j} <= {v}\n"));
    }
    let o = pool[(s.next() as usize) % pool.len()].clone();
    src.push_str(&format!("    out <= {o}\n"));

    let p0 = pool[(s.next() as usize) % pool.len()].clone();
    let p1 = pool[(s.next() as usize) % pool.len()].clone();
    let p2 = pool[(s.next() as usize) % pool.len()].clone();
    src.push_str(&format!(
        "    cover(clock, orr({p0}), UInt<1>(1)) : c0\n    cover(clock, eq({p1}, {p2}), UInt<1>(1)) : c1\n"
    ));
    // a 4-bit observed signal keeps the cover_values key space small
    let cv = pool[(s.next() as usize) % pool.len()].clone();
    let en = pool[(s.next() as usize) % pool.len()].clone();
    src.push_str(&format!(
        "    node cvn = tail({cv}, 12)\n    cover_values(clock, cvn, orr({en})) : v0\n"
    ));
    src
}

/// What [`check_equivalence`] verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivReport {
    /// Cycles stepped.
    pub cycles: usize,
    /// Named signals compared per cycle.
    pub signals: usize,
}

/// Generate a circuit and stimulus from `script` and require all four
/// software backend configurations to agree on every peek each cycle and
/// on the final cover maps.
///
/// # Errors
///
/// A message naming the first divergence (or a build failure).
pub fn check_equivalence(script: &[u8]) -> Result<EquivReport, String> {
    let src = generate_circuit(script);
    let circuit = rtlcov_firrtl::parser::parse(&src).map_err(|e| format!("parse: {e:?}"))?;
    let low = rtlcov_firrtl::passes::lower(circuit).map_err(|e| format!("lower: {e:?}"))?;

    let seed_opts = EssentOptions {
        optimize: false,
        partition: false,
        ..EssentOptions::default()
    };
    type Build = Result<Box<dyn Simulator>, SimError>;
    let build: Vec<(&str, Build)> = vec![
        (
            "compiled-raw",
            CompiledSim::new_with(&low, &OptOptions::none())
                .map(|s| Box::new(s) as Box<dyn Simulator>),
        ),
        (
            "compiled-opt",
            CompiledSim::new_with(&low, &OptOptions::default())
                .map(|s| Box::new(s) as Box<dyn Simulator>),
        ),
        (
            "essent-seed",
            EssentSim::new_with(&low, &seed_opts).map(|s| Box::new(s) as Box<dyn Simulator>),
        ),
        (
            "essent-part",
            EssentSim::new_with(&low, &EssentOptions::default())
                .map(|s| Box::new(s) as Box<dyn Simulator>),
        ),
    ];
    let mut sims: Vec<(&str, Box<dyn Simulator>)> = Vec::new();
    for (name, r) in build {
        sims.push((name, r.map_err(|e| format!("{name}: {e}"))?));
    }

    let mut signals = sims[0].1.signals();
    signals.sort();
    for (name, sim) in &sims[1..] {
        let mut theirs = sim.signals();
        theirs.sort();
        if theirs != signals {
            return Err(format!("{name}: signal set differs from compiled-raw"));
        }
    }

    let mut s = Script::new(script);
    // skip the generator prefix so stimulus differs from structure
    for _ in 0..32 {
        s.next();
    }
    let cycles = 8 + (s.next() % 25) as usize;
    let inputs: Vec<(String, u32)> = {
        let n_inputs = 1 + (script.first().copied().unwrap_or(0) % 3) as usize;
        (0..n_inputs).map(|i| (format!("in{i}"), 16u32)).collect()
    };

    for (_, sim) in sims.iter_mut() {
        sim.reset(1);
    }
    for cycle in 0..cycles {
        for (name, _) in &inputs {
            let v = s.next_u16() as u64;
            for (_, sim) in sims.iter_mut() {
                sim.poke(name, v);
            }
        }
        // pre-step peeks exercise settle-under-poke on every backend
        for sig in &signals {
            let want = sims[0].1.peek(sig);
            for (name, sim) in &sims[1..] {
                let got = sim.peek(sig);
                if got != want {
                    return Err(format!(
                        "cycle {cycle} pre-step `{sig}`: compiled-raw={want} {name}={got}"
                    ));
                }
            }
        }
        for (_, sim) in sims.iter_mut() {
            sim.step();
        }
    }
    for sig in &signals {
        let want = sims[0].1.peek(sig);
        for (name, sim) in &sims[1..] {
            let got = sim.peek(sig);
            if got != want {
                return Err(format!("final `{sig}`: compiled-raw={want} {name}={got}"));
            }
        }
    }

    let want = sims[0].1.cover_counts();
    for (name, sim) in &sims[1..] {
        let got = sim.cover_counts();
        if got != want {
            return Err(format!(
                "cover maps differ: compiled-raw={want:?} {name}={got:?}"
            ));
        }
    }
    Ok(EquivReport {
        cycles,
        signals: signals.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuits_parse_and_lower() {
        for seed in 0u8..16 {
            let script: Vec<u8> = (0..64)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            let src = generate_circuit(&script);
            let c = rtlcov_firrtl::parser::parse(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed {e:?}\n{src}"));
            rtlcov_firrtl::passes::lower(c)
                .unwrap_or_else(|e| panic!("seed {seed}: lower failed {e:?}\n{src}"));
        }
    }

    #[test]
    fn backends_agree_on_deterministic_scripts() {
        for seed in 0u8..24 {
            let script: Vec<u8> = (0..96)
                .map(|i| seed.wrapping_mul(17).wrapping_add(i ^ seed))
                .collect();
            let report = check_equivalence(&script).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.cycles >= 8);
            assert!(report.signals > 0, "seed {seed}: no signals compared");
        }
    }

    #[test]
    fn empty_script_is_a_valid_circuit() {
        check_equivalence(&[]).unwrap();
    }
}

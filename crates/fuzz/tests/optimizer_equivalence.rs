//! Property test: the optimized/partitioned simulators are observationally
//! identical to the unoptimized baseline on arbitrary generated circuits.

use proptest::prelude::*;
use rtlcov_fuzz::equivalence::check_equivalence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_backends_match_baseline(script in proptest::collection::vec(any::<u8>(), 1..256)) {
        if let Err(e) = check_equivalence(&script) {
            prop_assert!(false, "backends diverged: {e}");
        }
    }
}

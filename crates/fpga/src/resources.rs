//! Analytical FPGA resource and timing model (Figures 9 and 10).
//!
//! The paper reports LUT/FF usage and achieved frequency of FireSim images
//! on a Xilinx VU9P after Vivado place-and-route. We cannot run Vivado, so
//! this module estimates resources from the lowered netlist with
//! per-primitive LUT costs (the standard first-order model: a `k`-input
//! function costs `⌈bits·(inputs-1)/(LUT_size-1)⌉` LUTs, one FF per
//! register bit, BRAM for memories) and derives a frequency from logic
//! depth plus a utilization penalty with deterministic placement "noise" —
//! reproducing the paper's *shapes*: linear counter cost in width, small
//! widths within noise, and placement failure when the device runs out.

use rtlcov_firrtl::ir::*;
use std::collections::HashMap;

/// A synthetic FPGA device (defaults shaped like a scaled-down VU9P).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Available LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
    /// Available block RAMs (36 Kb each).
    pub brams: u64,
    /// Base achievable frequency at low utilization (MHz).
    pub base_mhz: f64,
}

impl Default for Device {
    fn default() -> Self {
        // scaled so that the boom-like SoC with 48-bit counters exceeds
        // capacity, per Figure 10's failed placement
        Device {
            luts: 45_000,
            ffs: 120_000,
            brams: 1_000,
            base_mhz: 90.0,
        }
    }
}

/// Resource usage of a circuit on the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// LUT count.
    pub luts: u64,
    /// Flip-flop count.
    pub ffs: u64,
    /// Block RAM count.
    pub brams: u64,
    /// Combinational depth estimate (LUT levels on the critical path).
    pub depth: u64,
}

impl Resources {
    /// LUT utilization on a device, in `[0, ∞)`.
    pub fn lut_utilization(&self, device: &Device) -> f64 {
        self.luts as f64 / device.luts as f64
    }

    /// True if the design fits the device.
    pub fn fits(&self, device: &Device) -> bool {
        self.luts <= device.luts && self.ffs <= device.ffs && self.brams <= device.brams
    }
}

/// Place-and-route outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlaceResult {
    /// Placed at the given frequency (MHz).
    Placed {
        /// Achieved frequency in MHz.
        fmax_mhz: f64,
    },
    /// Did not fit the device (the paper's 48-bit BOOM data point).
    FailedPlacement,
}

fn lut_cost(total_bits: u64, inputs_per_bit: u64) -> u64 {
    // 6-input LUTs: a function of k inputs costs ceil((k-1)/5) LUTs per bit
    let k = inputs_per_bit.max(2);
    total_bits * k.saturating_sub(1).div_ceil(5)
}

/// Estimate the resources of a lowered circuit, counting each module once
/// per instantiation.
pub fn estimate(circuit: &Circuit) -> Resources {
    let mut per_module: HashMap<&str, Resources> = HashMap::new();
    // instance counts via the tree
    let mut counts: HashMap<String, u64> = HashMap::new();
    count_instances(circuit, &circuit.top, &mut counts);

    for m in &circuit.modules {
        per_module.insert(m.name.as_str(), estimate_module(m, circuit));
    }

    let mut total = Resources::default();
    for (name, n) in &counts {
        if let Some(r) = per_module.get(name.as_str()) {
            total.luts += r.luts * n;
            total.ffs += r.ffs * n;
            total.brams += r.brams * n;
            total.depth = total.depth.max(r.depth);
        }
    }
    total
}

fn count_instances(circuit: &Circuit, module: &str, counts: &mut HashMap<String, u64>) {
    *counts.entry(module.to_string()).or_insert(0) += 1;
    if let Some(m) = circuit.module(module) {
        m.for_each_stmt(&mut |s| {
            if let Stmt::Inst { module: target, .. } = s {
                count_instances(circuit, target, counts);
            }
        });
    }
}

fn estimate_module(m: &Module, circuit: &Circuit) -> Resources {
    let env = rtlcov_firrtl::typecheck::module_env(m, circuit).unwrap_or_default();
    let width_of = |e: &Expr| -> u64 {
        rtlcov_firrtl::typecheck::expr_type(e, &env)
            .ok()
            .and_then(|t| t.width())
            .unwrap_or(1) as u64
    };
    let mut r = Resources::default();
    m.for_each_stmt(&mut |s| match s {
        Stmt::Reg { ty, .. } => {
            r.ffs += u64::from(ty.width().unwrap_or(1));
        }
        Stmt::Mem(mem) => {
            let bits = mem.depth as u64 * u64::from(mem.data_ty.width().unwrap_or(1));
            // 36 Kb BRAMs; extra read ports cost duplicates
            let ports = mem.readers.len().max(1) as u64;
            r.brams += bits.div_ceil(36 * 1024) * ports;
        }
        Stmt::Node { value, .. } | Stmt::Connect { value, .. } => {
            let (luts, depth) = expr_cost(value, &width_of);
            r.luts += luts;
            r.depth = r.depth.max(depth);
        }
        Stmt::Cover { pred, enable, .. } => {
            let (l1, _) = expr_cost(pred, &width_of);
            let (l2, _) = expr_cost(enable, &width_of);
            r.luts += l1 + l2 + 1;
        }
        _ => {}
    });
    r
}

/// `(luts, depth)` of one expression tree; `width_of` resolves the bit
/// width of any subexpression so costs scale with datapath width.
fn expr_cost(e: &Expr, width_of: &impl Fn(&Expr) -> u64) -> (u64, u64) {
    match e {
        Expr::Ref(_) | Expr::UIntLit(_) | Expr::SIntLit(_) => (0, 0),
        Expr::SubField(inner, _) | Expr::SubIndex(inner, _) => expr_cost(inner, width_of),
        Expr::Mux(c, t, f) => {
            let (lc, dc) = expr_cost(c, width_of);
            let (lt, dt) = expr_cost(t, width_of);
            let (lf, df) = expr_cost(f, width_of);
            let w = width_of(e);
            (lc + lt + lf + lut_cost(w, 3), dc.max(dt).max(df) + 1)
        }
        Expr::ValidIf(c, v) => {
            let (lc, dc) = expr_cost(c, width_of);
            let (lv, dv) = expr_cost(v, width_of);
            let w = width_of(e);
            (lc + lv + lut_cost(w, 3), dc.max(dv) + 1)
        }
        Expr::Prim { op, args, .. } => {
            let (mut luts, mut depth) = (0, 0);
            for a in args {
                let (l, d) = expr_cost(a, width_of);
                luts += l;
                depth = depth.max(d);
            }
            use PrimOp as P;
            let w = width_of(e);
            let aw = args.first().map(width_of).unwrap_or(1);
            let (own, own_depth) = match op {
                // carry chains: one LUT per result bit
                P::Add | P::Sub => (w, 2),
                P::Mul => (w * aw.max(1) / 2, 6),
                P::Div | P::Rem => (w * aw.max(1), 12),
                // comparators: reduction over operand bits
                P::Lt | P::Leq | P::Gt | P::Geq => (aw.div_ceil(2).max(1), 2),
                P::Eq | P::Neq => (aw.div_ceil(3).max(1), 1),
                // bitwise: LUTs pack ~2 two-input gates each
                P::And | P::Or | P::Xor => (w.div_ceil(2).max(1), 1),
                P::Not | P::Neg => (w.div_ceil(2).max(1), 1),
                P::Andr | P::Orr | P::Xorr => (aw.div_ceil(6).max(1), 1),
                // barrel shifters: log2 levels of w-bit muxes
                P::Dshl | P::Dshr => (w * 3, 3),
                // rewiring ops are free
                P::Bits
                | P::Head
                | P::Tail
                | P::Shl
                | P::Shr
                | P::Pad
                | P::Cat
                | P::AsUInt
                | P::AsSInt
                | P::AsClock
                | P::Cvt => (0, 0),
            };
            (luts + own, depth + own_depth)
        }
    }
}

/// Model place-and-route: fit check + frequency from depth and congestion.
///
/// The "noise" term is a deterministic hash of the resource counts,
/// standing in for the placement variance the paper observes (±few MHz
/// between otherwise comparable builds).
pub fn place_and_route(resources: &Resources, device: &Device) -> PlaceResult {
    if !resources.fits(device) {
        return PlaceResult::FailedPlacement;
    }
    let util = resources.lut_utilization(device);
    // congestion penalty kicks in past ~50 % utilization
    let congestion = if util > 0.5 {
        1.0 + (util - 0.5) * 1.2
    } else {
        1.0
    };
    let depth_penalty = 1.0 + resources.depth as f64 / 60.0;
    let mut fmax = device.base_mhz / (congestion * depth_penalty);
    // deterministic placement noise: ±3 %
    let h = resources
        .luts
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(resources.ffs);
    let noise = ((h % 61) as f64 - 30.0) / 1000.0;
    fmax *= 1.0 + noise;
    PlaceResult::Placed { fmax_mhz: fmax }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_chain::insert_scan_chain;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn counter_circuit() -> Circuit {
        passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= tail(add(r, a), 1)
    o <= r
    cover(clock, eq(r, UInt<8>(0)), UInt<1>(1)) : wrap
",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn ffs_count_register_bits() {
        let r = estimate(&counter_circuit());
        assert!(r.ffs >= 8, "{r:?}");
        assert!(r.luts > 0);
    }

    #[test]
    fn counter_width_scales_resources_linearly() {
        let mut prev_ffs = 0;
        let mut deltas = Vec::new();
        for w in [1u32, 8, 16, 32, 48] {
            let mut c = counter_circuit();
            insert_scan_chain(&mut c, w).unwrap();
            let r = estimate(&c);
            if prev_ffs > 0 {
                deltas.push(r.ffs - prev_ffs);
            }
            prev_ffs = r.ffs;
        }
        // FF growth tracks counter-width growth (Figure 9's linear trend)
        assert!(deltas.windows(2).all(|w| w[1] >= w[0]), "{deltas:?}");
    }

    #[test]
    fn memories_use_bram_not_luts() {
        let c = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input addr : UInt<10>
    output o : UInt<32>
    mem m : UInt<32>[1024], readers(r)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
    o <= m.r.data
",
            )
            .unwrap(),
        )
        .unwrap();
        let r = estimate(&c);
        assert!(r.brams >= 1, "{r:?}");
    }

    #[test]
    fn oversized_design_fails_placement() {
        let device = Device {
            luts: 10,
            ffs: 10,
            brams: 0,
            base_mhz: 90.0,
        };
        let r = estimate(&counter_circuit());
        assert_eq!(place_and_route(&r, &device), PlaceResult::FailedPlacement);
    }

    #[test]
    fn placed_frequency_reasonable_and_deterministic() {
        let device = Device::default();
        let r = estimate(&counter_circuit());
        let p1 = place_and_route(&r, &device);
        let p2 = place_and_route(&r, &device);
        assert_eq!(p1, p2);
        match p1 {
            PlaceResult::Placed { fmax_mhz } => {
                assert!(fmax_mhz > 30.0 && fmax_mhz < 120.0, "{fmax_mhz}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn utilization_reduces_fmax() {
        let device = Device::default();
        let small = Resources {
            luts: 1_000,
            ffs: 1_000,
            brams: 0,
            depth: 10,
        };
        let big = Resources {
            luts: 42_000,
            ffs: 100_000,
            brams: 0,
            depth: 10,
        };
        let f = |r: &Resources| match place_and_route(r, &device) {
            PlaceResult::Placed { fmax_mhz } => fmax_mhz,
            _ => panic!("fits"),
        };
        assert!(f(&small) > f(&big));
    }
}

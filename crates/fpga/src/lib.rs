//! # rtlcov-fpga
//!
//! The FireSim analog (§3.3/§5.2/§5.3): a compiler pass that replaces
//! `cover` statements with saturating counters on a scan chain
//! ([`scan_chain`]), an emulated FPGA host with a run/pause/scan driver
//! ([`host`]), an analytical resource + timing model for the Figure
//! 9/10 sweeps ([`resources`]), and a [`Simulator`](rtlcov_sim::Simulator)
//! adapter over the whole flow ([`backend`]) so campaigns can schedule
//! FPGA jobs like any software backend.

#![warn(missing_docs)]

pub mod backend;
pub mod host;
pub mod resources;
pub mod scan_chain;

pub use backend::FpgaBackend;
pub use host::FpgaHost;
pub use resources::{estimate, place_and_route, Device, PlaceResult, Resources};
pub use scan_chain::{insert_scan_chain, ScanChainInfo};

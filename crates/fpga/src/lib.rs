//! # rtlcov-fpga
//!
//! The FireSim analog (§3.3/§5.2/§5.3): a compiler pass that replaces
//! `cover` statements with saturating counters on a scan chain
//! ([`scan_chain`]), an emulated FPGA host with a run/pause/scan driver
//! ([`host`]), and an analytical resource + timing model for the Figure
//! 9/10 sweeps ([`resources`]).

#![warn(missing_docs)]

pub mod host;
pub mod resources;
pub mod scan_chain;

pub use host::FpgaHost;
pub use resources::{estimate, place_and_route, Device, PlaceResult, Resources};
pub use scan_chain::{insert_scan_chain, ScanChainInfo};

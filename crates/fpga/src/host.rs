//! The emulated FPGA host and its driver (§3.3 / §5.2).
//!
//! [`FpgaHost`] plays the role of the FPGA + FPGA-hosted simulation
//! module: it executes the scan-chain-transformed circuit cycle-accurately
//! and exposes the scan controls. [`FpgaHost::scan_out_counts`] is the C++
//! driver analog: it pauses the simulation (freezing all counts), clocks
//! the chain out, rebuilds the `CoverageMap` from the chain metadata, and
//! restores the counters so the simulation can continue — the same
//! run/pause/scan protocol the paper describes.

use crate::scan_chain::ScanChainInfo;
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use rtlcov_sim::compiled::CompiledSim;
use rtlcov_sim::{SimError, Simulator};
use std::time::Instant;

/// The emulated FPGA-accelerated simulator.
#[derive(Debug, Clone)]
pub struct FpgaHost {
    sim: CompiledSim,
    info: ScanChainInfo,
    target_cycles: u64,
    /// host cycles spent scanning (FPGA cycles, not target cycles)
    scan_cycles: u64,
}

impl FpgaHost {
    /// Build a host from a scan-chain-transformed circuit.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(circuit: &Circuit, info: ScanChainInfo) -> Result<Self, SimError> {
        let mut sim = CompiledSim::new(circuit)?;
        sim.poke("scan_en", 0);
        sim.poke("scan_in", 0);
        Ok(FpgaHost {
            sim,
            info,
            target_cycles: 0,
            scan_cycles: 0,
        })
    }

    /// Drive a target input.
    pub fn poke(&mut self, signal: &str, value: u64) {
        self.sim.poke(signal, value);
    }

    /// Read a target signal.
    pub fn peek(&mut self, signal: &str) -> u64 {
        self.sim.peek(signal)
    }

    /// Backdoor memory write (program loading).
    ///
    /// # Errors
    ///
    /// Unknown memory or out-of-range address.
    pub fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        self.sim.write_mem(mem, addr, value)
    }

    /// Backdoor memory read.
    ///
    /// # Errors
    ///
    /// Unknown memory or out-of-range address.
    pub fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        self.sim.read_mem(mem, addr)
    }

    /// All signal names of the transformed circuit, sorted (includes the
    /// scan-chain controls and counter registers).
    pub fn signals(&self) -> Vec<String> {
        self.sim.signals()
    }

    /// Run `n` target cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.sim.step();
        }
        self.target_cycles += n;
    }

    /// Assert reset for `n` cycles.
    pub fn reset(&mut self, n: usize) {
        self.sim.reset(n);
        self.target_cycles += n as u64;
    }

    /// Target cycles executed so far.
    pub fn target_cycles(&self) -> u64 {
        self.target_cycles
    }

    /// FPGA cycles spent in scan mode so far.
    pub fn scan_cycles(&self) -> u64 {
        self.scan_cycles
    }

    /// Pause the simulation, scan all counters out, rebuild the coverage
    /// map, and shift the counters back in so execution can continue.
    ///
    /// Returns the map and the wall-clock time of the scan (the §5.2
    /// "scanning out the cover counts took N ms" measurement).
    pub fn scan_out_counts(&mut self) -> (CoverageMap, std::time::Duration) {
        let start = Instant::now();
        let w = self.info.counter_width as usize;
        let total_bits = self.info.chain_bits();
        self.sim.poke("scan_en", 1);
        let mut bits = Vec::with_capacity(total_bits);
        for _ in 0..total_bits {
            bits.push(self.sim.peek("scan_out") as u8);
            // restore by feeding the stream back into scan_in: after
            // `total_bits` shifts every counter holds its old value again
            let out = *bits.last().expect("just pushed");
            self.sim.poke("scan_in", u64::from(out));
            self.sim.step();
        }
        self.sim.poke("scan_en", 0);
        self.sim.poke("scan_in", 0);
        self.scan_cycles += total_bits as u64;

        let mut map = CoverageMap::new();
        for (i, name) in self.info.order.iter().enumerate() {
            let mut value = 0u64;
            for bit in 0..w {
                if bits[i * w + bit] == 1 {
                    value |= 1 << bit;
                }
            }
            map.record(name, value);
            map.declare(name);
        }
        (map, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_chain::insert_scan_chain;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;

    fn host(width: u32) -> FpgaHost {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    cover(clock, a, UInt<1>(1)) : ca
    cover(clock, b, UInt<1>(1)) : cb
";
        let mut c = passes::lower(parse(src).unwrap()).unwrap();
        let info = insert_scan_chain(&mut c, width).unwrap();
        FpgaHost::new(&c, info).unwrap()
    }

    #[test]
    fn scan_reconstructs_counts() {
        let mut h = host(16);
        h.poke("a", 1);
        h.poke("b", 0);
        h.run(7);
        h.poke("b", 1);
        h.run(2);
        let (map, _) = h.scan_out_counts();
        assert_eq!(map.count("ca"), Some(9));
        assert_eq!(map.count("cb"), Some(2));
        assert_eq!(h.scan_cycles(), 32);
    }

    #[test]
    fn scan_is_nondestructive() {
        let mut h = host(8);
        h.poke("a", 1);
        h.poke("b", 1);
        h.run(5);
        let (m1, _) = h.scan_out_counts();
        // continue running after the scan: counts resume from 5
        h.run(3);
        let (m2, _) = h.scan_out_counts();
        assert_eq!(m1.count("ca"), Some(5));
        assert_eq!(m2.count("ca"), Some(8));
    }

    #[test]
    fn matches_software_simulation() {
        // the paper's key property: identical CoverageMap from FPGA and
        // software backends
        let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    when en :
      r <= tail(add(r, UInt<4>(1)), 1)
    cover(clock, eq(r, UInt<4>(3)), UInt<1>(1)) : r3
    cover(clock, en, UInt<1>(1)) : en_hit
";
        let low = passes::lower(parse(src).unwrap()).unwrap();
        // software run
        let mut sw = CompiledSim::new(&low).unwrap();
        sw.reset(1);
        sw.poke("en", 1);
        sw.step_n(10);
        let sw_counts = sw.cover_counts();
        // FPGA run with the same stimulus
        let mut fpga_circuit = low.clone();
        let info = insert_scan_chain(&mut fpga_circuit, 16).unwrap();
        let mut h = FpgaHost::new(&fpga_circuit, info).unwrap();
        h.reset(1);
        h.poke("en", 1);
        h.run(10);
        let (fpga_counts, _) = h.scan_out_counts();
        assert_eq!(sw_counts, fpga_counts);
    }

    #[test]
    fn narrow_counters_saturate_but_detect_coverage() {
        let mut h = host(2);
        h.poke("a", 1);
        h.poke("b", 0);
        h.run(100);
        let (map, _) = h.scan_out_counts();
        assert_eq!(map.count("ca"), Some(3)); // saturated
        assert_eq!(map.count("cb"), Some(0)); // still visible as uncovered
    }
}

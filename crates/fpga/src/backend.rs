//! [`FpgaBackend`]: the FPGA host behind the uniform [`Simulator`]
//! interface, so campaign runners can schedule FPGA-accelerated jobs
//! interchangeably with the software backends.
//!
//! The adapter owns the whole flow: clone the lowered circuit, run the
//! scan-chain transform, and drive the emulated host. `cover_counts`
//! pauses the target and scans the chain out — non-destructive, so the
//! workload can keep running afterwards.

use crate::host::FpgaHost;
use crate::scan_chain::insert_scan_chain;
use rtlcov_core::CoverageMap;
use rtlcov_firrtl::ir::Circuit;
use rtlcov_sim::{Fuel, SimError, Simulator};
use std::cell::RefCell;

/// Default counter width for campaign-launched FPGA jobs: wide enough
/// that realistic workloads never saturate, still cheap to scan.
pub const DEFAULT_COUNTER_WIDTH: u32 = 32;

/// The emulated FPGA flow as a [`Simulator`].
///
/// The host lives in a [`RefCell`] because [`Simulator::cover_counts`]
/// takes `&self` while scanning the chain out requires clocking the
/// target (`&mut`). The borrow is confined to each method call, so the
/// usual single-threaded driver pattern never conflicts.
#[derive(Debug)]
pub struct FpgaBackend {
    host: RefCell<FpgaHost>,
    fuel: Fuel,
}

impl FpgaBackend {
    /// Transform `circuit` (already lowered) with a scan chain of
    /// `counter_width`-bit counters and build the emulated host.
    ///
    /// # Errors
    ///
    /// Scan-chain insertion failures (bad width, missing clock) and
    /// simulator construction failures, both flattened to [`SimError`].
    pub fn new(circuit: &Circuit, counter_width: u32) -> Result<Self, SimError> {
        let mut transformed = circuit.clone();
        let info = insert_scan_chain(&mut transformed, counter_width)
            .map_err(|e| SimError(format!("scan chain insertion failed: {e}")))?;
        let host = FpgaHost::new(&transformed, info)?;
        Ok(FpgaBackend {
            host: RefCell::new(host),
            fuel: Fuel::unlimited(),
        })
    }

    /// Like [`FpgaBackend::new`] with [`DEFAULT_COUNTER_WIDTH`].
    ///
    /// # Errors
    ///
    /// See [`FpgaBackend::new`].
    pub fn with_default_width(circuit: &Circuit) -> Result<Self, SimError> {
        Self::new(circuit, DEFAULT_COUNTER_WIDTH)
    }

    /// Target cycles executed so far.
    pub fn target_cycles(&self) -> u64 {
        self.host.borrow().target_cycles()
    }

    /// FPGA cycles spent scanning so far.
    pub fn scan_cycles(&self) -> u64 {
        self.host.borrow().scan_cycles()
    }
}

impl Simulator for FpgaBackend {
    fn poke(&mut self, signal: &str, value: u64) {
        self.host.get_mut().poke(signal, value);
    }

    fn peek(&self, signal: &str) -> u64 {
        self.host.borrow_mut().peek(signal)
    }

    fn step(&mut self) {
        if !self.fuel.consume() {
            return;
        }
        self.host.get_mut().run(1);
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel.starved()
    }

    fn cover_counts(&self) -> CoverageMap {
        self.host.borrow_mut().scan_out_counts().0
    }

    fn write_mem(&mut self, mem: &str, addr: u64, value: u64) -> Result<(), SimError> {
        self.host.get_mut().write_mem(mem, addr, value)
    }

    fn read_mem(&self, mem: &str, addr: u64) -> Result<u64, SimError> {
        self.host.borrow().read_mem(mem, addr)
    }

    fn signals(&self) -> Vec<String> {
        self.host.borrow().signals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;

    fn lowered() -> Circuit {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    when en :
      r <= tail(add(r, UInt<4>(1)), 1)
    cover(clock, eq(r, UInt<4>(3)), UInt<1>(1)) : r3
    cover(clock, en, UInt<1>(1)) : en_hit
";
        passes::lower(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn behaves_like_a_software_simulator() {
        let low = lowered();
        let drive = |sim: &mut dyn Simulator| {
            sim.reset(1);
            sim.poke("en", 1);
            sim.step_n(10);
            sim.cover_counts()
        };
        let mut sw = CompiledSim::new(&low).unwrap();
        let mut fpga = FpgaBackend::with_default_width(&low).unwrap();
        assert_eq!(drive(&mut sw), drive(&mut fpga));
    }

    #[test]
    fn cover_counts_is_nondestructive() {
        let low = lowered();
        let mut fpga = FpgaBackend::new(&low, 16).unwrap();
        fpga.reset(1);
        fpga.poke("en", 1);
        fpga.step_n(4);
        let first = fpga.cover_counts();
        fpga.step_n(3);
        let second = fpga.cover_counts();
        assert_eq!(first.count("en_hit"), Some(4));
        assert_eq!(second.count("en_hit"), Some(7));
    }
}

//! The FireSim-analog coverage scan-chain insertion pass (§3.3, Figure 4).
//!
//! Cover statements cannot be mapped onto an FPGA directly, so — like the
//! pass the paper added to FireSim's Golden Gate compiler — this pass
//! replaces every `cover` with a **saturating counter** of a user-chosen
//! width and threads all counters onto a **scan chain**: in scan mode the
//! counters form one long shift register clocked out through `scan_out`.
//! The pass emits the list of cover names in chain order; the driver uses
//! it to map scanned bits back to cover names — yielding exactly the same
//! `CoverageMap` as the software simulators.

use rtlcov_firrtl::dsl::ExprExt;
use rtlcov_firrtl::ir::*;
use rtlcov_firrtl::passes::PassError;

const PASS: &str = "scan-chain";

/// Metadata produced by the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChainInfo {
    /// Counter width in bits (1–48 in the paper's sweeps).
    pub counter_width: u32,
    /// Hierarchical cover names in scan order (first element is the first
    /// counter clocked out, LSB first).
    pub order: Vec<String>,
}

impl ScanChainInfo {
    /// Total scan-chain length in bits.
    pub fn chain_bits(&self) -> usize {
        self.order.len() * self.counter_width as usize
    }
}

/// Replace covers with saturating counters on a scan chain.
///
/// Adds three ports to every module containing covers (directly or in
/// children): `scan_en : UInt<1>` (input), `scan_in : UInt<1>` (input),
/// `scan_out : UInt<1>` (output). While `scan_en` is high, counting is
/// frozen and the chain shifts one bit per cycle.
///
/// # Errors
///
/// Fails if `counter_width` is zero or above 64, or if a cover-bearing
/// module has no clock.
pub fn insert_scan_chain(
    circuit: &mut Circuit,
    counter_width: u32,
) -> Result<ScanChainInfo, PassError> {
    if counter_width == 0 || counter_width > 64 {
        return Err(PassError::new(PASS, "counter width must be in 1..=64"));
    }
    let w = counter_width;
    // which modules (transitively) contain covers?
    let has_covers = modules_with_covers(circuit);

    // rewrite modules bottom-up (instance targets before instantiators):
    // DFS postorder from the top module
    let module_names: Vec<String> = {
        let mut postorder = Vec::new();
        let mut visited = std::collections::HashSet::new();
        fn dfs(
            circuit: &Circuit,
            name: &str,
            visited: &mut std::collections::HashSet<String>,
            out: &mut Vec<String>,
        ) {
            if !visited.insert(name.to_string()) {
                return;
            }
            if let Some(m) = circuit.module(name) {
                let mut children = Vec::new();
                m.for_each_stmt(&mut |s| {
                    if let Stmt::Inst { module, .. } = s {
                        children.push(module.clone());
                    }
                });
                for c in children {
                    dfs(circuit, &c, visited, out);
                }
            }
            out.push(name.to_string());
        }
        dfs(circuit, &circuit.top.clone(), &mut visited, &mut postorder);
        postorder
    };
    let mut order_per_module: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();

    for name in &module_names {
        if !has_covers.contains(name) {
            continue;
        }
        let child_orders = order_per_module.clone();
        let module = circuit.module_mut(name).expect("module exists");
        let clock = module.clock().ok_or_else(|| {
            PassError::new(PASS, format!("module `{name}` has covers but no clock"))
        })?;

        module.ports.push(Port {
            name: "scan_en".into(),
            dir: Direction::Input,
            ty: Type::bool(),
            info: Info::none(),
        });
        module.ports.push(Port {
            name: "scan_in".into(),
            dir: Direction::Input,
            ty: Type::bool(),
            info: Info::none(),
        });
        module.ports.push(Port {
            name: "scan_out".into(),
            dir: Direction::Output,
            ty: Type::bool(),
            info: Info::none(),
        });

        let mut order: Vec<String> = Vec::new();
        let mut link: Expr = Expr::r("scan_in");
        let mut new_body: Vec<Stmt> = Vec::new();
        let mut counter_idx = 0usize;
        let body = std::mem::take(&mut module.body);
        // instance order for chaining children
        for stmt in body {
            match stmt {
                Stmt::Cover {
                    name: cname,
                    pred,
                    enable,
                    ..
                } => {
                    let cnt = format!("_scan_cnt_{counter_idx}");
                    counter_idx += 1;
                    new_body.push(Stmt::Reg {
                        name: cnt.clone(),
                        ty: Type::uint(w),
                        clock: clock.clone(),
                        reset: None,
                        info: Info::none(),
                    });
                    let cnt_e = Expr::r(&cnt);
                    let fire = Expr::and(pred, enable);
                    // saturate: increment only below the max value
                    let max = Expr::UIntLit(rtlcov_firrtl::bv::Bv::ones(w));
                    let saturated = cnt_e.eq_(&max);
                    let inc = cnt_e.addw(&Expr::u(1, w));
                    let count_next =
                        Expr::mux(Expr::and(fire, Expr::not(saturated)), inc, cnt_e.clone());
                    // shift: LSB goes out; link bit enters at the MSB
                    let shifted = if w == 1 {
                        link.clone()
                    } else {
                        link.clone().cat(&cnt_e.bits(w - 1, 1))
                    };
                    let next = Expr::mux(Expr::r("scan_en"), shifted, count_next);
                    new_body.push(Stmt::Connect {
                        loc: Expr::r(&cnt),
                        value: next,
                        info: Info::none(),
                    });
                    link = cnt_e.bit(0);
                    order.push(cname);
                }
                Stmt::Inst {
                    name: iname,
                    module: target,
                    info,
                } => {
                    let child_has = has_covers.contains(&target);
                    new_body.push(Stmt::Inst {
                        name: iname.clone(),
                        module: target.clone(),
                        info,
                    });
                    if child_has {
                        // thread the chain through the child
                        new_body.push(Stmt::Connect {
                            loc: Expr::r(&iname).field("scan_en"),
                            value: Expr::r("scan_en"),
                            info: Info::none(),
                        });
                        new_body.push(Stmt::Connect {
                            loc: Expr::r(&iname).field("scan_in"),
                            value: link.clone(),
                            info: Info::none(),
                        });
                        link = Expr::r(&iname).field("scan_out");
                        for c in child_orders.get(&target).into_iter().flatten() {
                            order.push(format!("{iname}.{c}"));
                        }
                    }
                }
                other => new_body.push(other),
            }
        }
        new_body.push(Stmt::Connect {
            loc: Expr::r("scan_out"),
            value: link,
            info: Info::none(),
        });
        module.body = new_body;
        order_per_module.insert(name.clone(), order);
    }

    // the counter nearest `scan_out` is clocked out first, i.e. the
    // stream order is the reverse of the thread order
    let mut top_order = order_per_module.remove(&circuit.top).unwrap_or_default();
    top_order.reverse();
    Ok(ScanChainInfo {
        counter_width,
        order: top_order,
    })
}

fn modules_with_covers(circuit: &Circuit) -> std::collections::HashSet<String> {
    use std::collections::HashSet;
    let mut direct: HashSet<String> = HashSet::new();
    let mut children: std::collections::HashMap<String, Vec<String>> = Default::default();
    for m in &circuit.modules {
        let mut covers = false;
        let mut insts = Vec::new();
        m.for_each_stmt(&mut |s| match s {
            Stmt::Cover { .. } => covers = true,
            Stmt::Inst { module, .. } => insts.push(module.clone()),
            _ => {}
        });
        if covers {
            direct.insert(m.name.clone());
        }
        children.insert(m.name.clone(), insts);
    }
    // transitively: a module has covers if any child does
    let mut changed = true;
    while changed {
        changed = false;
        for m in &circuit.modules {
            if direct.contains(&m.name) {
                continue;
            }
            if children[&m.name].iter().any(|c| direct.contains(c)) {
                direct.insert(m.name.clone());
                changed = true;
            }
        }
    }
    direct
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcov_firrtl::parser::parse;
    use rtlcov_firrtl::passes;
    use rtlcov_sim::compiled::CompiledSim;
    use rtlcov_sim::Simulator;

    fn build(src: &str, width: u32) -> (CompiledSim, ScanChainInfo) {
        let mut c = passes::lower(parse(src).unwrap()).unwrap();
        let info = insert_scan_chain(&mut c, width).unwrap();
        // scan-chain output must still be a valid circuit
        let c = passes::check::check(c).unwrap();
        (CompiledSim::new(&c).unwrap(), info)
    }

    const ONE_COVER: &str = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : hit
";

    #[test]
    fn counter_counts_and_scans_out() {
        let (mut sim, info) = build(ONE_COVER, 8);
        assert_eq!(info.order, vec!["hit"]);
        sim.poke("scan_en", 0);
        sim.poke("scan_in", 0);
        sim.poke("a", 1);
        sim.step_n(5);
        sim.poke("a", 0);
        sim.step_n(3);
        // scan out 8 bits, LSB first
        sim.poke("scan_en", 1);
        let mut value = 0u64;
        for bit in 0..8 {
            value |= sim.peek("scan_out") << bit;
            sim.step();
        }
        assert_eq!(value, 5);
    }

    #[test]
    fn counter_saturates() {
        let (mut sim, _) = build(ONE_COVER, 2);
        sim.poke("scan_en", 0);
        sim.poke("a", 1);
        sim.step_n(10); // would reach 10, saturates at 3
        sim.poke("scan_en", 1);
        let mut value = 0u64;
        for bit in 0..2 {
            value |= sim.peek("scan_out") << bit;
            sim.step();
        }
        assert_eq!(value, 3);
    }

    #[test]
    fn counting_frozen_during_scan() {
        let (mut sim, _) = build(ONE_COVER, 8);
        sim.poke("a", 1);
        sim.poke("scan_en", 0);
        sim.step_n(3);
        sim.poke("scan_en", 1); // a still 1, but counting frozen
        let mut value = 0u64;
        for bit in 0..8 {
            value |= sim.peek("scan_out") << bit;
            sim.step();
        }
        assert_eq!(value, 3);
    }

    #[test]
    fn chain_order_spans_hierarchy() {
        let src = "
circuit Top :
  module Child :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : inner
  module Top :
    input clock : Clock
    input a : UInt<1>
    inst c1 of Child
    inst c2 of Child
    c1.clock <= clock
    c2.clock <= clock
    c1.a <= a
    c2.a <= not(a)
    cover(clock, a, UInt<1>(1)) : outer
";
        let (mut sim, info) = build(src, 4);
        // when-expansion hoists the instances before the cover, so the
        // chain threads c1 -> c2 -> outer and streams out in reverse
        assert_eq!(info.order, vec!["outer", "c2.inner", "c1.inner"]);
        assert_eq!(info.chain_bits(), 12);
        // run: a=1 for 3 cycles => outer 3, c1 3, c2 0
        sim.poke("scan_en", 0);
        sim.poke("scan_in", 0);
        sim.poke("a", 1);
        sim.step_n(3);
        sim.poke("scan_en", 1);
        let mut bits = Vec::new();
        for _ in 0..12 {
            bits.push(sim.peek("scan_out"));
            sim.step();
        }
        let count = |range: std::ops::Range<usize>| -> u64 {
            bits[range]
                .iter()
                .enumerate()
                .fold(0, |acc, (i, b)| acc | (b << i))
        };
        // first counter out is the first in `order`
        assert_eq!(count(0..4), 3, "outer");
        assert_eq!(count(4..8), 0, "c2.inner");
        assert_eq!(count(8..12), 3, "c1.inner");
    }

    #[test]
    fn rejects_bad_width() {
        let mut c = passes::lower(parse(ONE_COVER).unwrap()).unwrap();
        assert!(insert_scan_chain(&mut c, 0).is_err());
        let mut c2 = passes::lower(parse(ONE_COVER).unwrap()).unwrap();
        assert!(insert_scan_chain(&mut c2, 65).is_err());
    }
}

//! Expression-building sugar: Chisel-like operators on [`Expr`].
//!
//! All methods follow FIRRTL width rules (`add` grows by one bit, `mul`
//! sums widths, ...). The `*w` variants wrap back to the width of `self`,
//! which is what register update logic almost always wants.

use crate::ir::{Expr, PrimOp};

/// Fluent operations on expressions.
pub trait ExprExt: Sized + Clone {
    /// Wrap into the underlying expression type.
    fn expr(&self) -> Expr;

    /// FIRRTL `add` (width grows by one).
    fn add(&self, other: &Self) -> Expr;
    /// Same-width wrapping add: `tail(add(a, b), 1)`.
    fn addw(&self, other: &Self) -> Expr;
    /// FIRRTL `sub`.
    fn sub(&self, other: &Self) -> Expr;
    /// Same-width wrapping subtract.
    fn subw(&self, other: &Self) -> Expr;
    /// FIRRTL `mul`.
    fn mul(&self, other: &Self) -> Expr;
    /// FIRRTL `div`.
    fn div(&self, other: &Self) -> Expr;
    /// FIRRTL `rem`.
    fn rem(&self, other: &Self) -> Expr;
    /// Equality (1 bit).
    fn eq_(&self, other: &Self) -> Expr;
    /// Inequality.
    fn neq(&self, other: &Self) -> Expr;
    /// Unsigned/signed less-than.
    fn lt(&self, other: &Self) -> Expr;
    /// Less-or-equal.
    fn leq(&self, other: &Self) -> Expr;
    /// Greater-than.
    fn gt(&self, other: &Self) -> Expr;
    /// Greater-or-equal.
    fn geq(&self, other: &Self) -> Expr;
    /// Bitwise and.
    fn and(&self, other: &Self) -> Expr;
    /// Bitwise or.
    fn or(&self, other: &Self) -> Expr;
    /// Bitwise xor.
    fn xor(&self, other: &Self) -> Expr;
    /// Bitwise not.
    fn not_(&self) -> Expr;
    /// Reduction or (any bit set).
    fn orr(&self) -> Expr;
    /// Reduction and.
    fn andr(&self) -> Expr;
    /// Reduction xor.
    fn xorr(&self) -> Expr;
    /// Bit slice, `hi` and `lo` inclusive.
    fn bits(&self, hi: u32, lo: u32) -> Expr;
    /// Single-bit extraction.
    fn bit(&self, i: u32) -> Expr;
    /// Concatenation with `self` as high bits.
    fn cat(&self, low: &Self) -> Expr;
    /// Zero/sign extend to at least `n` bits.
    fn pad(&self, n: u32) -> Expr;
    /// Static left shift.
    fn shl(&self, n: u32) -> Expr;
    /// Static right shift.
    fn shr(&self, n: u32) -> Expr;
    /// Drop the `n` most-significant bits.
    fn tail(&self, n: u32) -> Expr;
    /// Dynamic left shift.
    fn dshl(&self, amount: &Self) -> Expr;
    /// Dynamic right shift.
    fn dshr(&self, amount: &Self) -> Expr;
    /// 2:1 mux with `self` as the condition.
    fn mux(&self, tval: &Self, fval: &Self) -> Expr;
    /// Bundle field access.
    fn field(&self, name: &str) -> Expr;
    /// Vector element access.
    fn idx(&self, i: usize) -> Expr;
    /// Reinterpret as signed.
    fn as_sint(&self) -> Expr;
    /// Reinterpret as unsigned.
    fn as_uint(&self) -> Expr;
}

fn bin(op: PrimOp, a: &Expr, b: &Expr) -> Expr {
    Expr::prim(op, vec![a.clone(), b.clone()], vec![])
}

fn un(op: PrimOp, a: &Expr, consts: Vec<u64>) -> Expr {
    Expr::prim(op, vec![a.clone()], consts)
}

impl ExprExt for Expr {
    fn expr(&self) -> Expr {
        self.clone()
    }

    fn add(&self, other: &Self) -> Expr {
        bin(PrimOp::Add, self, other)
    }

    fn addw(&self, other: &Self) -> Expr {
        un(PrimOp::Tail, &bin(PrimOp::Add, self, other), vec![1])
    }

    fn sub(&self, other: &Self) -> Expr {
        bin(PrimOp::Sub, self, other)
    }

    fn subw(&self, other: &Self) -> Expr {
        un(PrimOp::Tail, &bin(PrimOp::Sub, self, other), vec![1])
    }

    fn mul(&self, other: &Self) -> Expr {
        bin(PrimOp::Mul, self, other)
    }

    fn div(&self, other: &Self) -> Expr {
        bin(PrimOp::Div, self, other)
    }

    fn rem(&self, other: &Self) -> Expr {
        bin(PrimOp::Rem, self, other)
    }

    fn eq_(&self, other: &Self) -> Expr {
        bin(PrimOp::Eq, self, other)
    }

    fn neq(&self, other: &Self) -> Expr {
        bin(PrimOp::Neq, self, other)
    }

    fn lt(&self, other: &Self) -> Expr {
        bin(PrimOp::Lt, self, other)
    }

    fn leq(&self, other: &Self) -> Expr {
        bin(PrimOp::Leq, self, other)
    }

    fn gt(&self, other: &Self) -> Expr {
        bin(PrimOp::Gt, self, other)
    }

    fn geq(&self, other: &Self) -> Expr {
        bin(PrimOp::Geq, self, other)
    }

    fn and(&self, other: &Self) -> Expr {
        bin(PrimOp::And, self, other)
    }

    fn or(&self, other: &Self) -> Expr {
        bin(PrimOp::Or, self, other)
    }

    fn xor(&self, other: &Self) -> Expr {
        bin(PrimOp::Xor, self, other)
    }

    fn not_(&self) -> Expr {
        un(PrimOp::Not, self, vec![])
    }

    fn orr(&self) -> Expr {
        un(PrimOp::Orr, self, vec![])
    }

    fn andr(&self) -> Expr {
        un(PrimOp::Andr, self, vec![])
    }

    fn xorr(&self) -> Expr {
        un(PrimOp::Xorr, self, vec![])
    }

    fn bits(&self, hi: u32, lo: u32) -> Expr {
        un(PrimOp::Bits, self, vec![hi as u64, lo as u64])
    }

    fn bit(&self, i: u32) -> Expr {
        self.bits(i, i)
    }

    fn cat(&self, low: &Self) -> Expr {
        bin(PrimOp::Cat, self, low)
    }

    fn pad(&self, n: u32) -> Expr {
        un(PrimOp::Pad, self, vec![n as u64])
    }

    fn shl(&self, n: u32) -> Expr {
        un(PrimOp::Shl, self, vec![n as u64])
    }

    fn shr(&self, n: u32) -> Expr {
        un(PrimOp::Shr, self, vec![n as u64])
    }

    fn tail(&self, n: u32) -> Expr {
        un(PrimOp::Tail, self, vec![n as u64])
    }

    fn dshl(&self, amount: &Self) -> Expr {
        bin(PrimOp::Dshl, self, amount)
    }

    fn dshr(&self, amount: &Self) -> Expr {
        bin(PrimOp::Dshr, self, amount)
    }

    fn mux(&self, tval: &Self, fval: &Self) -> Expr {
        Expr::mux(self.clone(), tval.clone(), fval.clone())
    }

    fn field(&self, name: &str) -> Expr {
        Expr::SubField(Box::new(self.clone()), name.to_string())
    }

    fn idx(&self, i: usize) -> Expr {
        Expr::SubIndex(Box::new(self.clone()), i)
    }

    fn as_sint(&self) -> Expr {
        un(PrimOp::AsSInt, self, vec![])
    }

    fn as_uint(&self) -> Expr {
        un(PrimOp::AsUInt, self, vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::const_fold;

    #[test]
    fn addw_wraps() {
        let e = Expr::u(255, 8).addw(&Expr::u(1, 8));
        let v = const_fold(&e).unwrap();
        assert_eq!(v.bits.width(), 8);
        assert_eq!(v.bits.to_u64(), 0);
    }

    #[test]
    fn subw_wraps() {
        let e = Expr::u(0, 8).subw(&Expr::u(1, 8));
        let v = const_fold(&e).unwrap();
        assert_eq!(v.bits.to_u64(), 255);
    }

    #[test]
    fn bit_extract() {
        let e = Expr::u(0b100, 3).bit(2);
        assert_eq!(const_fold(&e).unwrap().bits.to_u64(), 1);
    }

    #[test]
    fn fluent_chain() {
        let e = Expr::u(0b1100, 4).and(&Expr::u(0b1010, 4)).orr();
        assert!(const_fold(&e).unwrap().is_true());
    }
}

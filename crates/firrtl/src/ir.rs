//! The FIRRTL-subset intermediate representation.
//!
//! This models the slice of FIRRTL that Chisel designs exercise and that the
//! paper's coverage passes operate on: ground and aggregate types, `when`
//! blocks, registers with synchronous reset, combinational-read /
//! synchronous-write memories, module instances — plus the paper's one new
//! primitive, the [`Stmt::Cover`] statement, and the §6 extension
//! [`Stmt::CoverValues`].

use crate::bv::Bv;
use std::fmt;
use std::sync::Arc;

/// A source locator (`@[file line:col]` in the textual format).
///
/// Line-coverage metadata is built from these, exactly as the Chisel
/// front-end supplies them to the FIRRTL compiler.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Info {
    /// Source file name, shared to keep the AST small.
    pub file: Option<Arc<str>>,
    /// 1-based line number; 0 when unknown.
    pub line: u32,
    /// 1-based column; 0 when unknown.
    pub col: u32,
}

impl Info {
    /// A locator pointing at `file:line`.
    pub fn new(file: impl Into<Arc<str>>, line: u32, col: u32) -> Self {
        Info {
            file: Some(file.into()),
            line,
            col,
        }
    }

    /// The "no information" locator.
    pub fn none() -> Self {
        Info::default()
    }

    /// True if this locator carries a file and line.
    pub fn is_known(&self) -> bool {
        self.file.is_some() && self.line > 0
    }
}

impl fmt::Display for Info {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(f, " @[{} {}:{}]", file, self.line, self.col),
            None => Ok(()),
        }
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Driven by the environment.
    Input,
    /// Driven by the module.
    Output,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Input => Direction::Output,
            Direction::Output => Direction::Input,
        }
    }
}

/// A field of a bundle type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// True for `flip` fields (reversed data-flow, e.g. `ready`).
    pub flip: bool,
    /// Field type.
    pub ty: Type,
}

/// A FIRRTL type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Clock signal.
    Clock,
    /// Synchronous reset (1-bit).
    Reset,
    /// Unsigned integer; `None` width means "infer".
    UInt(Option<u32>),
    /// Signed integer; `None` width means "infer".
    SInt(Option<u32>),
    /// Record of named, possibly flipped fields.
    Bundle(Vec<Field>),
    /// Homogeneous vector.
    Vector(Box<Type>, usize),
}

impl Type {
    /// Shorthand for `UInt` of a known width.
    pub fn uint(width: u32) -> Self {
        Type::UInt(Some(width))
    }

    /// Shorthand for `SInt` of a known width.
    pub fn sint(width: u32) -> Self {
        Type::SInt(Some(width))
    }

    /// A single bit.
    pub fn bool() -> Self {
        Type::UInt(Some(1))
    }

    /// True for clock/reset/uint/sint (non-aggregate) types.
    pub fn is_ground(&self) -> bool {
        !matches!(self, Type::Bundle(_) | Type::Vector(..))
    }

    /// True if this is a signed integer type.
    pub fn is_signed(&self) -> bool {
        matches!(self, Type::SInt(_))
    }

    /// The width of a ground type, if known. Clock and reset are 1 bit wide.
    pub fn width(&self) -> Option<u32> {
        match self {
            Type::Clock | Type::Reset => Some(1),
            Type::UInt(w) | Type::SInt(w) => *w,
            _ => None,
        }
    }

    /// Replace the width of a ground int type.
    pub fn with_width(&self, w: u32) -> Type {
        match self {
            Type::UInt(_) => Type::UInt(Some(w)),
            Type::SInt(_) => Type::SInt(Some(w)),
            other => other.clone(),
        }
    }

    /// Total bit count of the flattened type, if all widths are known.
    pub fn total_width(&self) -> Option<u32> {
        match self {
            Type::Bundle(fields) => {
                let mut sum = 0;
                for f in fields {
                    sum += f.ty.total_width()?;
                }
                Some(sum)
            }
            Type::Vector(ty, n) => Some(ty.total_width()? * *n as u32),
            other => other.width(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Clock => write!(f, "Clock"),
            Type::Reset => write!(f, "Reset"),
            Type::UInt(Some(w)) => write!(f, "UInt<{w}>"),
            Type::UInt(None) => write!(f, "UInt"),
            Type::SInt(Some(w)) => write!(f, "SInt<{w}>"),
            Type::SInt(None) => write!(f, "SInt"),
            Type::Bundle(fields) => {
                write!(f, "{{ ")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if field.flip {
                        write!(f, "flip ")?;
                    }
                    write!(f, "{} : {}", field.name, field.ty)?;
                }
                write!(f, " }}")
            }
            Type::Vector(ty, n) => write!(f, "{ty}[{n}]"),
        }
    }
}

/// FIRRTL primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Addition (`max(w) + 1` result).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (`wa + wb` result).
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Unsigned/signed less-than (1-bit).
    Lt,
    /// Less-or-equal.
    Leq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Geq,
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not.
    Not,
    /// Arithmetic negation (`w + 1` signed result).
    Neg,
    /// Reduction and (1-bit).
    Andr,
    /// Reduction or.
    Orr,
    /// Reduction xor.
    Xorr,
    /// Zero/sign extend to at least `n` bits (const arg).
    Pad,
    /// Static left shift (const arg).
    Shl,
    /// Static right shift (const arg).
    Shr,
    /// Dynamic left shift.
    Dshl,
    /// Dynamic right shift.
    Dshr,
    /// Concatenation.
    Cat,
    /// Bit slice `bits(e, hi, lo)` (two const args).
    Bits,
    /// `head(e, n)`: the `n` most significant bits.
    Head,
    /// `tail(e, n)`: drop the `n` most significant bits.
    Tail,
    /// Reinterpret as unsigned.
    AsUInt,
    /// Reinterpret as signed.
    AsSInt,
    /// Reinterpret as clock.
    AsClock,
    /// Convert UInt to SInt losslessly (width + 1 when unsigned).
    Cvt,
}

impl PrimOp {
    /// The textual FIRRTL name of the op.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Div => "div",
            PrimOp::Rem => "rem",
            PrimOp::Lt => "lt",
            PrimOp::Leq => "leq",
            PrimOp::Gt => "gt",
            PrimOp::Geq => "geq",
            PrimOp::Eq => "eq",
            PrimOp::Neq => "neq",
            PrimOp::And => "and",
            PrimOp::Or => "or",
            PrimOp::Xor => "xor",
            PrimOp::Not => "not",
            PrimOp::Neg => "neg",
            PrimOp::Andr => "andr",
            PrimOp::Orr => "orr",
            PrimOp::Xorr => "xorr",
            PrimOp::Pad => "pad",
            PrimOp::Shl => "shl",
            PrimOp::Shr => "shr",
            PrimOp::Dshl => "dshl",
            PrimOp::Dshr => "dshr",
            PrimOp::Cat => "cat",
            PrimOp::Bits => "bits",
            PrimOp::Head => "head",
            PrimOp::Tail => "tail",
            PrimOp::AsUInt => "asUInt",
            PrimOp::AsSInt => "asSInt",
            PrimOp::AsClock => "asClock",
            PrimOp::Cvt => "cvt",
        }
    }

    /// Parse a textual op name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "add" => PrimOp::Add,
            "sub" => PrimOp::Sub,
            "mul" => PrimOp::Mul,
            "div" => PrimOp::Div,
            "rem" => PrimOp::Rem,
            "lt" => PrimOp::Lt,
            "leq" => PrimOp::Leq,
            "gt" => PrimOp::Gt,
            "geq" => PrimOp::Geq,
            "eq" => PrimOp::Eq,
            "neq" => PrimOp::Neq,
            "and" => PrimOp::And,
            "or" => PrimOp::Or,
            "xor" => PrimOp::Xor,
            "not" => PrimOp::Not,
            "neg" => PrimOp::Neg,
            "andr" => PrimOp::Andr,
            "orr" => PrimOp::Orr,
            "xorr" => PrimOp::Xorr,
            "pad" => PrimOp::Pad,
            "shl" => PrimOp::Shl,
            "shr" => PrimOp::Shr,
            "dshl" => PrimOp::Dshl,
            "dshr" => PrimOp::Dshr,
            "cat" => PrimOp::Cat,
            "bits" => PrimOp::Bits,
            "head" => PrimOp::Head,
            "tail" => PrimOp::Tail,
            "asUInt" => PrimOp::AsUInt,
            "asSInt" => PrimOp::AsSInt,
            "asClock" => PrimOp::AsClock,
            "cvt" => PrimOp::Cvt,
            _ => return None,
        })
    }

    /// Number of expression operands the op takes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not
            | PrimOp::Neg
            | PrimOp::Andr
            | PrimOp::Orr
            | PrimOp::Xorr
            | PrimOp::Pad
            | PrimOp::Shl
            | PrimOp::Shr
            | PrimOp::Bits
            | PrimOp::Head
            | PrimOp::Tail
            | PrimOp::AsUInt
            | PrimOp::AsSInt
            | PrimOp::AsClock
            | PrimOp::Cvt => 1,
            _ => 2,
        }
    }

    /// Number of constant (integer literal) parameters.
    pub fn const_arity(self) -> usize {
        match self {
            PrimOp::Pad | PrimOp::Shl | PrimOp::Shr | PrimOp::Head | PrimOp::Tail => 1,
            PrimOp::Bits => 2,
            _ => 0,
        }
    }
}

/// A FIRRTL expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to a named component (port, wire, reg, node, instance, mem).
    Ref(String),
    /// Bundle field access.
    SubField(Box<Expr>, String),
    /// Vector element access with a constant index.
    SubIndex(Box<Expr>, usize),
    /// Unsigned literal.
    UIntLit(Bv),
    /// Signed literal (bit pattern stored unsigned).
    SIntLit(Bv),
    /// 2:1 multiplexer.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Conditionally valid value (reads as zero when invalid — Chisel
    /// semantics, no X-propagation).
    ValidIf(Box<Expr>, Box<Expr>),
    /// Primitive operation.
    Prim {
        /// The operation.
        op: PrimOp,
        /// Expression operands.
        args: Vec<Expr>,
        /// Constant parameters (e.g. shift amounts, bit indices).
        consts: Vec<u64>,
    },
}

impl Expr {
    /// Reference helper.
    pub fn r(name: impl Into<String>) -> Expr {
        Expr::Ref(name.into())
    }

    /// Unsigned literal helper.
    pub fn u(value: u64, width: u32) -> Expr {
        Expr::UIntLit(Bv::from_u64(value, width))
    }

    /// 1-bit constant one.
    pub fn one() -> Expr {
        Expr::u(1, 1)
    }

    /// 1-bit constant zero.
    pub fn zero_bit() -> Expr {
        Expr::u(0, 1)
    }

    /// Build a primitive op expression.
    pub fn prim(op: PrimOp, args: Vec<Expr>, consts: Vec<u64>) -> Expr {
        debug_assert_eq!(args.len(), op.arity(), "{} arity", op.name());
        debug_assert_eq!(consts.len(), op.const_arity(), "{} const arity", op.name());
        Expr::Prim { op, args, consts }
    }

    /// `and` of two 1-bit expressions, with trivial simplification.
    pub fn and(a: Expr, b: Expr) -> Expr {
        match (&a, &b) {
            (Expr::UIntLit(v), _) if v.to_u64() == 1 && v.width() == 1 => return b,
            (_, Expr::UIntLit(v)) if v.to_u64() == 1 && v.width() == 1 => return a,
            _ => {}
        }
        Expr::prim(PrimOp::And, vec![a, b], vec![])
    }

    /// `not` of a 1-bit expression.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Expr) -> Expr {
        Expr::prim(PrimOp::Not, vec![a], vec![])
    }

    /// Equality comparison.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::prim(PrimOp::Eq, vec![a, b], vec![])
    }

    /// 2:1 mux helper.
    pub fn mux(cond: Expr, tval: Expr, fval: Expr) -> Expr {
        Expr::Mux(Box::new(cond), Box::new(tval), Box::new(fval))
    }

    /// True if the expression is a literal.
    pub fn is_lit(&self) -> bool {
        matches!(self, Expr::UIntLit(_) | Expr::SIntLit(_))
    }

    /// The literal value if this is a literal expression.
    pub fn as_lit(&self) -> Option<&Bv> {
        match self {
            Expr::UIntLit(v) | Expr::SIntLit(v) => Some(v),
            _ => None,
        }
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::SubField(e, _) => e.for_each(f),
            Expr::SubIndex(e, _) => e.for_each(f),
            Expr::Mux(c, t, e) => {
                c.for_each(f);
                t.for_each(f);
                e.for_each(f);
            }
            Expr::ValidIf(c, v) => {
                c.for_each(f);
                v.for_each(f);
            }
            Expr::Prim { args, .. } => {
                for a in args {
                    a.for_each(f);
                }
            }
            _ => {}
        }
    }

    /// Rewrite the expression bottom-up.
    pub fn map(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::SubField(e, name) => Expr::SubField(Box::new(e.map(f)), name),
            Expr::SubIndex(e, i) => Expr::SubIndex(Box::new(e.map(f)), i),
            Expr::Mux(c, t, e) => {
                Expr::Mux(Box::new(c.map(f)), Box::new(t.map(f)), Box::new(e.map(f)))
            }
            Expr::ValidIf(c, v) => Expr::ValidIf(Box::new(c.map(f)), Box::new(v.map(f))),
            Expr::Prim { op, args, consts } => Expr::Prim {
                op,
                args: args.into_iter().map(|a| a.map(f)).collect(),
                consts,
            },
            other => other,
        };
        f(rebuilt)
    }

    /// Collect the names of all referenced components.
    pub fn refs(&self, out: &mut Vec<String>) {
        self.for_each(&mut |e| {
            if let Expr::Ref(name) = e {
                out.push(name.clone());
            }
        });
    }

    /// Render the canonical flattened name of a reference chain
    /// (`a.b[2].c` → `a_b_2_c`), as produced by the type-lowering pass.
    pub fn flat_name(&self) -> Option<String> {
        match self {
            Expr::Ref(name) => Some(name.clone()),
            Expr::SubField(e, field) => Some(format!("{}_{}", e.flat_name()?, field)),
            Expr::SubIndex(e, i) => Some(format!("{}_{}", e.flat_name()?, i)),
            _ => None,
        }
    }
}

/// Kind of signal selected for toggle coverage and reported by alias
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Module port.
    Port,
    /// Register.
    Reg,
    /// Wire or named node.
    Wire,
    /// Memory read/write port field.
    Mem,
}

/// Ports of a memory reader (addr/en/data) or writer (addr/en/data/mask).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mem {
    /// Memory name.
    pub name: String,
    /// Element type (ground after type lowering).
    pub data_ty: Type,
    /// Number of elements.
    pub depth: usize,
    /// Combinational read ports by name.
    pub readers: Vec<String>,
    /// Synchronous write ports by name.
    pub writers: Vec<String>,
    /// Source locator.
    pub info: Info,
}

/// A FIRRTL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Wire declaration.
    Wire {
        /// Name.
        name: String,
        /// Type.
        ty: Type,
        /// Source locator.
        info: Info,
    },
    /// Register declaration with optional synchronous reset.
    Reg {
        /// Name.
        name: String,
        /// Type.
        ty: Type,
        /// Clock expression.
        clock: Expr,
        /// Optional `(reset signal, init value)`.
        reset: Option<(Expr, Expr)>,
        /// Source locator.
        info: Info,
    },
    /// Named combinational node.
    Node {
        /// Name.
        name: String,
        /// Bound expression.
        value: Expr,
        /// Source locator.
        info: Info,
    },
    /// Connection `loc <= value`.
    Connect {
        /// Sink (reference chain).
        loc: Expr,
        /// Driven expression.
        value: Expr,
        /// Source locator.
        info: Info,
    },
    /// `loc is invalid` — reads as zero in our Chisel-like semantics.
    Invalid {
        /// The invalidated reference.
        loc: Expr,
        /// Source locator.
        info: Info,
    },
    /// Module instantiation.
    Inst {
        /// Instance name.
        name: String,
        /// Instantiated module name.
        module: String,
        /// Source locator.
        info: Info,
    },
    /// Memory declaration.
    Mem(Mem),
    /// Conditional block.
    When {
        /// Condition (1-bit).
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// Else branch.
        else_: Vec<Stmt>,
        /// Source locator.
        info: Info,
    },
    /// The paper's cover primitive: count cycles where `pred & enable` is
    /// true at a rising clock edge.
    Cover {
        /// Unique name within the module.
        name: String,
        /// Clock to sample on.
        clock: Expr,
        /// Covered predicate.
        pred: Expr,
        /// Qualifying enable (folded with enclosing `when` predicates).
        enable: Expr,
        /// Source locator.
        info: Info,
    },
    /// §6 extension: count occurrences of each value of `signal`.
    CoverValues {
        /// Unique name within the module.
        name: String,
        /// Clock to sample on.
        clock: Expr,
        /// The observed signal (counts indexed by its value).
        signal: Expr,
        /// Qualifying enable.
        enable: Expr,
        /// Source locator.
        info: Info,
    },
    /// Empty statement (used by passes to delete in place).
    Skip,
}

impl Stmt {
    /// The locator attached to the statement, if any.
    pub fn info(&self) -> &Info {
        static NONE: std::sync::OnceLock<Info> = std::sync::OnceLock::new();
        match self {
            Stmt::Wire { info, .. }
            | Stmt::Reg { info, .. }
            | Stmt::Node { info, .. }
            | Stmt::Connect { info, .. }
            | Stmt::Invalid { info, .. }
            | Stmt::Inst { info, .. }
            | Stmt::When { info, .. }
            | Stmt::Cover { info, .. }
            | Stmt::CoverValues { info, .. } => info,
            Stmt::Mem(m) => &m.info,
            Stmt::Skip => NONE.get_or_init(Info::none),
        }
    }
}

/// A module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction from the module's perspective.
    pub dir: Direction,
    /// Port type.
    pub ty: Type,
    /// Source locator.
    pub info: Info,
}

/// A FIRRTL module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Ports.
    pub ports: Vec<Port>,
    /// Statement body.
    pub body: Vec<Stmt>,
    /// Source locator.
    pub info: Info,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ports: Vec::new(),
            body: Vec::new(),
            info: Info::none(),
        }
    }

    /// Look up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// The conventional clock port expression, if present.
    pub fn clock(&self) -> Option<Expr> {
        self.ports
            .iter()
            .find(|p| matches!(p.ty, Type::Clock))
            .map(|p| Expr::r(p.name.clone()))
    }

    /// The conventional reset port expression, if present.
    pub fn reset(&self) -> Option<Expr> {
        self.ports
            .iter()
            .find(|p| matches!(p.ty, Type::Reset) || p.name == "reset")
            .map(|p| Expr::r(p.name.clone()))
    }

    /// Iterate over all statements, recursing into `when` branches.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                if let Stmt::When { then, else_, .. } = s {
                    walk(then, f);
                    walk(else_, f);
                }
            }
        }
        walk(&self.body, f);
    }
}

/// Enum definition used for FSM coverage (the ChiselEnum analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum type name.
    pub name: String,
    /// `(variant name, encoding)` pairs.
    pub variants: Vec<(String, u64)>,
}

/// Annotations carried alongside the circuit (the FIRRTL annotation system).
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// Declares an enum type (states of an FSM).
    EnumDef(EnumDef),
    /// Marks `module.reg` as holding values of enum `enum_name`.
    EnumReg {
        /// Module containing the register.
        module: String,
        /// Register name.
        reg: String,
        /// Name of a declared [`Annotation::EnumDef`].
        enum_name: String,
    },
    /// Explicitly marks a port bundle as a decoupled (ready/valid) interface.
    /// The ready/valid pass also detects unannotated conforming bundles.
    Decoupled {
        /// Module name.
        module: String,
        /// Port name.
        port: String,
    },
    /// Free-form marker used by tests and tooling.
    Custom {
        /// Annotation key.
        key: String,
        /// Annotation payload.
        value: String,
    },
}

/// A complete circuit: a set of modules with a designated top.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Name of the top module.
    pub top: String,
    /// All modules (top included).
    pub modules: Vec<Module>,
    /// Attached annotations.
    pub annotations: Vec<Annotation>,
}

impl Circuit {
    /// Create a circuit from a single module.
    pub fn new(top: Module) -> Self {
        Circuit {
            top: top.name.clone(),
            modules: vec![top],
            annotations: Vec::new(),
        }
    }

    /// Look up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Mutable module lookup.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// The top module.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's `top` names no module (checked circuits
    /// cannot be in that state).
    pub fn top_module(&self) -> &Module {
        self.module(&self.top).expect("top module exists")
    }

    /// Enum definition lookup.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::EnumDef(def) if def.name == name => Some(def),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(Type::uint(8).width(), Some(8));
        assert_eq!(Type::Clock.width(), Some(1));
        assert_eq!(Type::UInt(None).width(), None);
        let b = Type::Bundle(vec![
            Field {
                name: "a".into(),
                flip: false,
                ty: Type::uint(3),
            },
            Field {
                name: "b".into(),
                flip: true,
                ty: Type::uint(5),
            },
        ]);
        assert_eq!(b.total_width(), Some(8));
        assert!(!b.is_ground());
        let v = Type::Vector(Box::new(Type::uint(4)), 3);
        assert_eq!(v.total_width(), Some(12));
    }

    #[test]
    fn primop_roundtrip() {
        for op in [
            PrimOp::Add,
            PrimOp::Bits,
            PrimOp::Cat,
            PrimOp::AsUInt,
            PrimOp::Tail,
            PrimOp::Cvt,
        ] {
            assert_eq!(PrimOp::from_name(op.name()), Some(op));
        }
        assert_eq!(PrimOp::from_name("bogus"), None);
    }

    #[test]
    fn expr_helpers() {
        let e = Expr::and(Expr::one(), Expr::r("x"));
        assert_eq!(e, Expr::r("x"));
        let e = Expr::and(Expr::r("a"), Expr::r("b"));
        let mut names = Vec::new();
        e.refs(&mut names);
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn flat_names() {
        let e = Expr::SubField(
            Box::new(Expr::SubIndex(Box::new(Expr::r("io")), 2)),
            "valid".into(),
        );
        assert_eq!(e.flat_name().as_deref(), Some("io_2_valid"));
        assert_eq!(Expr::one().flat_name(), None);
    }

    #[test]
    fn module_clock_detection() {
        let mut m = Module::new("Top");
        m.ports.push(Port {
            name: "clock".into(),
            dir: Direction::Input,
            ty: Type::Clock,
            info: Info::none(),
        });
        assert_eq!(m.clock(), Some(Expr::r("clock")));
        assert_eq!(m.reset(), None);
    }

    #[test]
    fn info_display() {
        let i = Info::new("gcd.scala", 12, 7);
        assert_eq!(format!("{i}"), " @[gcd.scala 12:7]");
        assert!(i.is_known());
        assert!(!Info::none().is_known());
    }

    #[test]
    fn circuit_lookup() {
        let c = Circuit::new(Module::new("Top"));
        assert!(c.module("Top").is_some());
        assert!(c.module("Nope").is_none());
        assert_eq!(c.top_module().name, "Top");
    }

    #[test]
    fn expr_map_rewrites() {
        let e = Expr::and(Expr::r("a"), Expr::r("b"));
        let renamed = e.map(&|e| match e {
            Expr::Ref(n) => Expr::Ref(format!("{n}_x")),
            other => other,
        });
        let mut names = Vec::new();
        renamed.refs(&mut names);
        assert_eq!(names, vec!["a_x".to_string(), "b_x".to_string()]);
    }
}

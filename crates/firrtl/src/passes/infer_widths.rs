//! Width inference for wires and registers declared without explicit widths.
//!
//! Ports must carry explicit widths (they are the module's contract); local
//! wires and registers may omit them, in which case the width is the maximum
//! over every expression connected to the component, computed to a fixed
//! point (registers can feed themselves through incrementing updates, which
//! converges because widths only grow and connects bound them).

use super::PassError;
use crate::ir::*;
use crate::typecheck::{expr_type, module_env};

const PASS: &str = "infer-widths";
const MAX_ROUNDS: usize = 64;

/// Infer missing widths in every module of the circuit.
///
/// # Errors
///
/// Fails when a port has an unknown width, when inference does not converge
/// (self-referential growth without a bound), or when any width remains
/// unknown because nothing connects to the component.
pub fn infer_widths(mut circuit: Circuit) -> Result<Circuit, PassError> {
    for idx in 0..circuit.modules.len() {
        let module = &circuit.modules[idx];
        for p in &module.ports {
            if has_unknown(&p.ty) {
                return Err(PassError::new(
                    PASS,
                    format!(
                        "port `{}` of module `{}` must have an explicit width",
                        p.name, module.name
                    ),
                ));
            }
        }
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > MAX_ROUNDS {
                return Err(PassError::new(
                    PASS,
                    format!(
                        "width inference did not converge in module `{}`",
                        circuit.modules[idx].name
                    ),
                ));
            }
            let module = circuit.modules[idx].clone();
            let env = module_env(&module, &circuit).map_err(PassError::from)?;
            let mut changed = false;
            let mut failed: Option<String> = None;
            {
                let module_mut = &mut circuit.modules[idx];
                update_stmts(&mut module_mut.body, &mut |name, ty| {
                    if !has_unknown(ty) {
                        return None;
                    }
                    // find the widest connect to this component
                    let mut best: Option<u32> = None;
                    module.for_each_stmt(&mut |s| {
                        if let Stmt::Connect { loc, value, .. } = s {
                            if loc == &Expr::Ref(name.to_string()) {
                                if let Ok(t) = expr_type(value, &env) {
                                    if let Some(w) = t.width() {
                                        best = Some(best.map_or(w, |b: u32| b.max(w)));
                                    }
                                }
                            }
                        }
                        if let Stmt::Reg {
                            name: rn,
                            reset: Some((_, init)),
                            ..
                        } = s
                        {
                            if rn == name {
                                if let Ok(t) = expr_type(init, &env) {
                                    if let Some(w) = t.width() {
                                        best = Some(best.map_or(w, |b: u32| b.max(w)));
                                    }
                                }
                            }
                        }
                    });
                    match best {
                        Some(w) => {
                            let new_ty = ty.with_width(w);
                            if &new_ty != ty {
                                changed = true;
                                Some(new_ty)
                            } else {
                                None
                            }
                        }
                        None => {
                            failed = Some(name.to_string());
                            None
                        }
                    }
                });
            }
            if !changed {
                if let Some(name) = failed {
                    return Err(PassError::new(
                        PASS,
                        format!(
                            "could not infer width of `{name}` in module `{}`",
                            circuit.modules[idx].name
                        ),
                    ));
                }
                break;
            }
        }
    }
    Ok(circuit)
}

fn has_unknown(ty: &Type) -> bool {
    match ty {
        Type::UInt(None) | Type::SInt(None) => true,
        Type::Bundle(fields) => fields.iter().any(|f| has_unknown(&f.ty)),
        Type::Vector(elem, _) => has_unknown(elem),
        _ => false,
    }
}

fn update_stmts(stmts: &mut [Stmt], update: &mut impl FnMut(&str, &Type) -> Option<Type>) {
    for s in stmts {
        match s {
            Stmt::Wire { name, ty, .. } | Stmt::Reg { name, ty, .. } => {
                if let Some(new_ty) = update(name, ty) {
                    *ty = new_ty;
                }
            }
            Stmt::When { then, else_, .. } => {
                update_stmts(then, update);
                update_stmts(else_, update);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn infer(src: &str) -> Circuit {
        infer_widths(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn infers_wire_width_from_connect() {
        let c = infer(
            "
circuit T :
  module T :
    input a : UInt<7>
    output o : UInt<7>
    wire w : UInt
    w <= a
    o <= w
",
        );
        match &c.top_module().body[0] {
            Stmt::Wire { ty, .. } => assert_eq!(ty, &Type::uint(7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infers_reg_from_init() {
        let c = infer(
            "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<9>
    reg r : UInt, clock with : (reset => (reset, UInt<9>(12)))
    o <= r
",
        );
        match &c.top_module().body[0] {
            Stmt::Reg { ty, .. } => assert_eq!(ty, &Type::uint(9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_inference_converges() {
        let c = infer(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<8>
    wire w1 : UInt
    wire w2 : UInt
    w1 <= a
    w2 <= cat(w1, w1)
    o <= w2
",
        );
        let m = c.top_module();
        match &m.body[1] {
            Stmt::Wire { ty, .. } => assert_eq!(ty, &Type::uint(8)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn max_over_multiple_connects() {
        let c = infer(
            "
circuit T :
  module T :
    input a : UInt<3>
    input b : UInt<6>
    input sel : UInt<1>
    output o : UInt<6>
    wire w : UInt
    w <= a
    when sel :
      w <= b
    o <= w
",
        );
        match &c.top_module().body[0] {
            Stmt::Wire { ty, .. } => assert_eq!(ty, &Type::uint(6)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_port_width() {
        let c = parse(
            "
circuit T :
  module T :
    input a : UInt
    output o : UInt<4>
    o <= a
",
        )
        .unwrap();
        assert!(infer_widths(c).is_err());
    }

    #[test]
    fn rejects_undrivable_width() {
        let c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    wire w : UInt
",
        )
        .unwrap();
        assert!(infer_widths(c).is_err());
    }
}

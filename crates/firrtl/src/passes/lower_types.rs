//! Lower aggregate (bundle/vector) types to ground signals.
//!
//! Every aggregate port, wire and register is expanded into one component
//! per leaf with `_`-joined names (`io.ready` → `io_ready`), matching the
//! Chisel/FIRRTL flattening convention the paper's report generators rely
//! on. Bulk connects between aggregates expand field-wise, with the connect
//! direction swapped for `flip` leaves.
//!
//! After this pass the only remaining non-ground references are one-level
//! instance port accesses (`inst.port`) and two-level memory port accesses
//! (`mem.r.addr`).

use super::PassError;
use crate::ir::*;
use crate::typecheck::{expr_type, module_env, TypeEnv};
use std::collections::HashMap;

const PASS: &str = "lower-types";

#[derive(Debug, Clone, PartialEq)]
enum Accessor {
    Field(String),
    Index(usize),
}

#[derive(Debug, Clone)]
struct Leaf {
    accessors: Vec<Accessor>,
    ty: Type,
    flip: bool,
}

fn leaves(ty: &Type) -> Vec<Leaf> {
    fn walk(ty: &Type, path: &mut Vec<Accessor>, flip: bool, out: &mut Vec<Leaf>) {
        match ty {
            Type::Bundle(fields) => {
                for f in fields {
                    path.push(Accessor::Field(f.name.clone()));
                    walk(&f.ty, path, flip ^ f.flip, out);
                    path.pop();
                }
            }
            Type::Vector(elem, n) => {
                for i in 0..*n {
                    path.push(Accessor::Index(i));
                    walk(elem, path, flip, out);
                    path.pop();
                }
            }
            ground => out.push(Leaf {
                accessors: path.clone(),
                ty: ground.clone(),
                flip,
            }),
        }
    }
    let mut out = Vec::new();
    walk(ty, &mut Vec::new(), false, &mut out);
    out
}

fn suffix(accessors: &[Accessor]) -> String {
    let mut s = String::new();
    for a in accessors {
        match a {
            Accessor::Field(f) => {
                s.push('_');
                s.push_str(f);
            }
            Accessor::Index(i) => {
                s.push('_');
                s.push_str(&i.to_string());
            }
        }
    }
    s
}

fn extend(expr: Expr, accessors: &[Accessor]) -> Expr {
    let mut e = expr;
    for a in accessors {
        e = match a {
            Accessor::Field(f) => Expr::SubField(Box::new(e), f.clone()),
            Accessor::Index(i) => Expr::SubIndex(Box::new(e), *i),
        };
    }
    e
}

/// What kind of component a root reference names (decides rewriting).
#[derive(Debug, Clone, Copy, PartialEq)]
enum RootKind {
    /// Port, wire, reg or node: chain collapses into a flat name.
    Flat,
    /// Instance: chain collapses into `inst.flat_port`.
    Instance,
    /// Memory: `mem.port.field` stays structural.
    Memory,
}

struct Lowerer {
    kinds: HashMap<String, RootKind>,
}

impl Lowerer {
    /// Rewrite an expression whose type is ground.
    fn rewrite(&self, expr: Expr) -> Result<Expr, PassError> {
        Ok(match expr {
            Expr::SubField(..) | Expr::SubIndex(..) => self.rewrite_chain(expr)?,
            Expr::Mux(c, t, e) => Expr::Mux(
                Box::new(self.rewrite(*c)?),
                Box::new(self.rewrite(*t)?),
                Box::new(self.rewrite(*e)?),
            ),
            Expr::ValidIf(c, v) => {
                Expr::ValidIf(Box::new(self.rewrite(*c)?), Box::new(self.rewrite(*v)?))
            }
            Expr::Prim { op, args, consts } => Expr::Prim {
                op,
                args: args
                    .into_iter()
                    .map(|a| self.rewrite(a))
                    .collect::<Result<Vec<_>, _>>()?,
                consts,
            },
            other => other,
        })
    }

    fn rewrite_chain(&self, expr: Expr) -> Result<Expr, PassError> {
        // Deconstruct the accessor chain down to the root reference.
        let mut accs: Vec<Accessor> = Vec::new();
        let mut cur = expr;
        let root = loop {
            match cur {
                Expr::SubField(inner, f) => {
                    accs.push(Accessor::Field(f));
                    cur = *inner;
                }
                Expr::SubIndex(inner, i) => {
                    accs.push(Accessor::Index(i));
                    cur = *inner;
                }
                Expr::Ref(name) => break name,
                other => {
                    return Err(PassError::new(
                        PASS,
                        format!("accessor chain rooted at non-reference: {other:?}"),
                    ))
                }
            }
        };
        accs.reverse();
        match self.kinds.get(&root).copied().unwrap_or(RootKind::Flat) {
            RootKind::Flat => Ok(Expr::Ref(format!("{root}{}", suffix(&accs)))),
            RootKind::Instance => {
                // first accessor is the port; the rest flatten into it
                Ok(Expr::SubField(
                    Box::new(Expr::Ref(root)),
                    suffix(&accs)[1..].to_string(),
                ))
            }
            RootKind::Memory => {
                if accs.len() == 2 {
                    Ok(extend(Expr::Ref(root), &accs))
                } else {
                    Err(PassError::new(
                        PASS,
                        format!(
                            "memory access must be `mem.port.field`, got {} accessors",
                            accs.len()
                        ),
                    ))
                }
            }
        }
    }
}

/// Run type lowering over the whole circuit.
///
/// # Errors
///
/// Fails on aggregate-typed nodes, non-reference aggregate connects, or
/// malformed memory accesses.
pub fn lower_types(mut circuit: Circuit) -> Result<Circuit, PassError> {
    let reference = circuit.clone();
    for module in circuit.modules.iter_mut() {
        let env = module_env(module, &reference).map_err(PassError::from)?;
        let mut kinds = HashMap::new();
        module.for_each_stmt(&mut |s| match s {
            Stmt::Inst { name, .. } => {
                kinds.insert(name.clone(), RootKind::Instance);
            }
            Stmt::Mem(mem) => {
                kinds.insert(mem.name.clone(), RootKind::Memory);
            }
            _ => {}
        });
        let lowerer = Lowerer { kinds };

        // ports
        let mut new_ports = Vec::new();
        for p in &module.ports {
            if p.ty.is_ground() {
                new_ports.push(p.clone());
                continue;
            }
            for leaf in leaves(&p.ty) {
                new_ports.push(Port {
                    name: format!("{}{}", p.name, suffix(&leaf.accessors)),
                    dir: if leaf.flip { p.dir.flip() } else { p.dir },
                    ty: leaf.ty,
                    info: p.info.clone(),
                });
            }
        }
        module.ports = new_ports;

        let body = std::mem::take(&mut module.body);
        module.body = lower_stmts(body, &lowerer, &env)?;
    }
    Ok(circuit)
}

fn lower_stmts(stmts: Vec<Stmt>, lw: &Lowerer, env: &TypeEnv) -> Result<Vec<Stmt>, PassError> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Wire { name, ty, info } => {
                if ty.is_ground() {
                    out.push(Stmt::Wire { name, ty, info });
                } else {
                    for leaf in leaves(&ty) {
                        out.push(Stmt::Wire {
                            name: format!("{name}{}", suffix(&leaf.accessors)),
                            ty: leaf.ty,
                            info: info.clone(),
                        });
                    }
                }
            }
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
                info,
            } => {
                let clock = lw.rewrite(clock)?;
                if ty.is_ground() {
                    let reset = reset
                        .map(|(r, i)| Ok::<_, PassError>((lw.rewrite(r)?, lw.rewrite(i)?)))
                        .transpose()?;
                    out.push(Stmt::Reg {
                        name,
                        ty,
                        clock,
                        reset,
                        info,
                    });
                } else {
                    for leaf in leaves(&ty) {
                        let leaf_reset = match &reset {
                            None => None,
                            Some((r, init)) => {
                                let init_leaf = match init {
                                    Expr::UIntLit(v) if v.is_zero() => Expr::UIntLit(
                                        crate::bv::Bv::zero(leaf.ty.width().unwrap_or(1)),
                                    ),
                                    chain => lw.rewrite(extend(chain.clone(), &leaf.accessors))?,
                                };
                                Some((lw.rewrite(r.clone())?, init_leaf))
                            }
                        };
                        out.push(Stmt::Reg {
                            name: format!("{name}{}", suffix(&leaf.accessors)),
                            ty: leaf.ty,
                            clock: clock.clone(),
                            reset: leaf_reset,
                            info: info.clone(),
                        });
                    }
                }
            }
            Stmt::Node { name, value, info } => {
                let ty = expr_type(&value, env).map_err(PassError::from)?;
                if !ty.is_ground() {
                    // A node aliasing a whole aggregate: expand leaf-wise.
                    for leaf in leaves(&ty) {
                        let v = lw.rewrite(extend(value.clone(), &leaf.accessors))?;
                        out.push(Stmt::Node {
                            name: format!("{name}{}", suffix(&leaf.accessors)),
                            value: v,
                            info: info.clone(),
                        });
                    }
                } else {
                    out.push(Stmt::Node {
                        name,
                        value: lw.rewrite(value)?,
                        info,
                    });
                }
            }
            Stmt::Connect { loc, value, info } => {
                let ty = expr_type(&loc, env).map_err(PassError::from)?;
                if ty.is_ground() {
                    out.push(Stmt::Connect {
                        loc: lw.rewrite(loc)?,
                        value: lw.rewrite(value)?,
                        info,
                    });
                } else {
                    for leaf in leaves(&ty) {
                        let l = lw.rewrite(extend(loc.clone(), &leaf.accessors))?;
                        let r = lw.rewrite(extend(value.clone(), &leaf.accessors))?;
                        let (l, r) = if leaf.flip { (r, l) } else { (l, r) };
                        out.push(Stmt::Connect {
                            loc: l,
                            value: r,
                            info: info.clone(),
                        });
                    }
                }
            }
            Stmt::Invalid { loc, info } => {
                let ty = expr_type(&loc, env).map_err(PassError::from)?;
                if ty.is_ground() {
                    out.push(Stmt::Invalid {
                        loc: lw.rewrite(loc)?,
                        info,
                    });
                } else {
                    for leaf in leaves(&ty) {
                        let l = lw.rewrite(extend(loc.clone(), &leaf.accessors))?;
                        out.push(Stmt::Invalid {
                            loc: l,
                            info: info.clone(),
                        });
                    }
                }
            }
            Stmt::When {
                cond,
                then,
                else_,
                info,
            } => {
                out.push(Stmt::When {
                    cond: lw.rewrite(cond)?,
                    then: lower_stmts(then, lw, env)?,
                    else_: lower_stmts(else_, lw, env)?,
                    info,
                });
            }
            Stmt::Cover {
                name,
                clock,
                pred,
                enable,
                info,
            } => {
                out.push(Stmt::Cover {
                    name,
                    clock: lw.rewrite(clock)?,
                    pred: lw.rewrite(pred)?,
                    enable: lw.rewrite(enable)?,
                    info,
                });
            }
            Stmt::CoverValues {
                name,
                clock,
                signal,
                enable,
                info,
            } => {
                out.push(Stmt::CoverValues {
                    name,
                    clock: lw.rewrite(clock)?,
                    signal: lw.rewrite(signal)?,
                    enable: lw.rewrite(enable)?,
                    info,
                });
            }
            other @ (Stmt::Inst { .. } | Stmt::Mem(_) | Stmt::Skip) => out.push(other),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower(src: &str) -> Circuit {
        lower_types(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn flattens_bundle_port_with_flip() {
        let c = lower(
            "
circuit T :
  module T :
    input io : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<8> }
    io.ready <= io.valid
",
        );
        let m = c.top_module();
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].name, "io_ready");
        assert_eq!(m.ports[0].dir, Direction::Output);
        assert_eq!(m.ports[1].name, "io_valid");
        assert_eq!(m.ports[1].dir, Direction::Input);
        match &m.body[0] {
            Stmt::Connect { loc, value, .. } => {
                assert_eq!(loc, &Expr::r("io_ready"));
                assert_eq!(value, &Expr::r("io_valid"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flattens_vector_wire() {
        let c = lower(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    wire v : UInt<4>[2]
    v[0] <= a
    v[1] <= v[0]
    o <= v[1]
",
        );
        let m = c.top_module();
        assert!(matches!(&m.body[0], Stmt::Wire { name, .. } if name == "v_0"));
        assert!(matches!(&m.body[1], Stmt::Wire { name, .. } if name == "v_1"));
        match &m.body[3] {
            Stmt::Connect { loc, value, .. } => {
                assert_eq!(loc, &Expr::r("v_1"));
                assert_eq!(value, &Expr::r("v_0"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bulk_connect_expands_with_flip_swap() {
        let c = lower(
            "
circuit T :
  module T :
    input in : { flip ready : UInt<1>, valid : UInt<1> }
    output out : { flip ready : UInt<1>, valid : UInt<1> }
    out <= in
",
        );
        let m = c.top_module();
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::Connect { loc, value, .. } => {
                // flipped leaf: direction swapped
                assert_eq!(loc, &Expr::r("in_ready"));
                assert_eq!(value, &Expr::r("out_ready"));
            }
            other => panic!("{other:?}"),
        }
        match &m.body[1] {
            Stmt::Connect { loc, value, .. } => {
                assert_eq!(loc, &Expr::r("out_valid"));
                assert_eq!(value, &Expr::r("in_valid"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instance_ports_flatten_to_one_level() {
        let c = lower(
            "
circuit Top :
  module Child :
    input io : { valid : UInt<1>, bits : UInt<8> }
    output o : UInt<8>
    o <= io.bits
  module Top :
    input v : UInt<1>
    input b : UInt<8>
    output o : UInt<8>
    inst c of Child
    c.io.valid <= v
    c.io.bits <= b
    o <= c.o
",
        );
        let m = c.top_module();
        match &m.body[1] {
            Stmt::Connect { loc, .. } => {
                assert_eq!(
                    loc,
                    &Expr::SubField(Box::new(Expr::r("c")), "io_valid".into())
                );
            }
            other => panic!("{other:?}"),
        }
        // child module ports also flattened
        let child = c.module("Child").unwrap();
        assert_eq!(child.ports[0].name, "io_valid");
    }

    #[test]
    fn aggregate_reg_with_zero_init() {
        let c = lower(
            "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<8>
    reg r : { a : UInt<8>, b : UInt<4> }, clock with : (reset => (reset, UInt<1>(0)))
    o <= r.a
",
        );
        let m = c.top_module();
        match &m.body[0] {
            Stmt::Reg {
                name,
                ty,
                reset: Some((_, init)),
                ..
            } => {
                assert_eq!(name, "r_a");
                assert_eq!(ty, &Type::uint(8));
                assert_eq!(init.as_lit().unwrap().width(), 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mem_access_is_preserved() {
        let c = lower(
            "
circuit T :
  module T :
    input clock : Clock
    input addr : UInt<8>
    output o : UInt<8>
    mem m : UInt<8>[256], readers(r), writers(w)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
    o <= m.r.data
",
        );
        let m = c.top_module();
        match &m.body[1] {
            Stmt::Connect { loc, .. } => {
                let expect = Expr::SubField(
                    Box::new(Expr::SubField(Box::new(Expr::r("m")), "r".into())),
                    "addr".into(),
                );
                assert_eq!(loc, &expect);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_aliasing_bundle_expands() {
        let c = lower(
            "
circuit T :
  module T :
    input io : { valid : UInt<1>, bits : UInt<8> }
    output o : UInt<8>
    node n = io
    o <= n.bits
",
        );
        let m = c.top_module();
        assert!(matches!(&m.body[0], Stmt::Node { name, .. } if name == "n_valid"));
        assert!(matches!(&m.body[1], Stmt::Node { name, .. } if name == "n_bits"));
        match &m.body[2] {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::r("n_bits")),
            other => panic!("{other:?}"),
        }
    }
}

//! Global signal alias analysis (§4.2 of the paper).
//!
//! Analyzes the whole design hierarchy and reports groups of signals that
//! are guaranteed to always carry the same value — signals connected by
//! pure copies, including across module boundaries through instance ports.
//! The toggle-coverage pass uses this to instrument only one signal per
//! alias group; the canonical example is the global reset, which is
//! instrumented once in the top module instead of once per module.
//!
//! The analysis is exact per *instance path* (the same module instantiated
//! twice contributes two sets of signal nets). A module-level signal is a
//! *representative* if it is the chosen representative of its group in at
//! least one instance path; non-representatives are guaranteed to be
//! observable through some other instrumented signal in every instantiation.

use super::PassError;
use crate::ir::*;
use std::collections::{HashMap, HashSet};

const PASS: &str = "alias-analysis";

/// A signal identified by its instance path within the elaborated design.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalRef {
    /// Dot-joined instance path; empty for the top module.
    pub path: String,
    /// Module the signal is declared in.
    pub module: String,
    /// Signal name within the module.
    pub signal: String,
}

impl GlobalRef {
    fn depth(&self) -> usize {
        if self.path.is_empty() {
            0
        } else {
            self.path.split('.').count()
        }
    }
}

/// Result of the global alias analysis.
#[derive(Debug, Clone)]
pub struct AliasGroups {
    /// All alias groups with two or more members.
    pub groups: Vec<Vec<GlobalRef>>,
    representatives: HashSet<(String, String)>,
    all_signals: HashSet<(String, String)>,
    module_group: HashMap<(String, String), usize>,
}

impl AliasGroups {
    /// True if `signal` in `module` should be instrumented: it is the
    /// group representative in at least one instance path (or belongs to
    /// no group at all).
    pub fn is_representative(&self, module: &str, signal: &str) -> bool {
        let key = (module.to_string(), signal.to_string());
        if self.representatives.contains(&key) {
            return true;
        }
        // signals that never appear in any instantiated path (dead module)
        // or never alias anything default to instrumented
        !self.all_signals.contains(&key)
    }

    /// Module-level group id of `(module, signal)`: two signals share an
    /// id iff their nets coincide in at least one instantiation. Signals
    /// in no multi-member group return `None`.
    pub fn module_group(&self, module: &str, signal: &str) -> Option<usize> {
        self.module_group
            .get(&(module.to_string(), signal.to_string()))
            .copied()
    }

    /// Number of signals that alias analysis allows us to skip.
    pub fn skipped_count(&self) -> usize {
        self.all_signals
            .iter()
            .filter(|(m, s)| !self.is_representative(m, s))
            .count()
    }
}

struct UnionFind {
    parent: Vec<usize>,
    keys: Vec<GlobalRef>,
    index: HashMap<GlobalRef, usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: Vec::new(),
            keys: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn id(&mut self, key: GlobalRef) -> usize {
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.keys.push(key.clone());
        self.index.insert(key, i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: GlobalRef, b: GlobalRef) {
        let (ia, ib) = (self.id(a), self.id(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Run the global alias analysis over a lowered circuit.
///
/// # Errors
///
/// Fails if an instance references an unknown module.
pub fn alias_analysis(circuit: &Circuit) -> Result<AliasGroups, PassError> {
    let mut uf = UnionFind::new();
    let mut all_signals: HashSet<(String, String)> = HashSet::new();

    // Walk the instance tree.
    let mut stack: Vec<(String, String)> = vec![(String::new(), circuit.top.clone())];
    let mut visited_paths = 0usize;
    while let Some((path, mod_name)) = stack.pop() {
        visited_paths += 1;
        if visited_paths > 1_000_000 {
            return Err(PassError::new(PASS, "instance tree too large"));
        }
        let module = circuit
            .module(&mod_name)
            .ok_or_else(|| PassError::new(PASS, format!("unknown module `{mod_name}`")))?;

        // component kinds
        let mut regs: HashSet<String> = HashSet::new();
        let mut insts: HashMap<String, String> = HashMap::new();
        for p in &module.ports {
            all_signals.insert((mod_name.clone(), p.name.clone()));
        }
        module.for_each_stmt(&mut |s| match s {
            Stmt::Reg { name, .. } => {
                regs.insert(name.clone());
                all_signals.insert((mod_name.clone(), name.clone()));
            }
            Stmt::Wire { name, .. } | Stmt::Node { name, .. } => {
                all_signals.insert((mod_name.clone(), name.clone()));
            }
            Stmt::Inst {
                name,
                module: target,
                ..
            } => {
                insts.insert(name.clone(), target.clone());
            }
            _ => {}
        });

        let gref = |signal: &str| GlobalRef {
            path: path.clone(),
            module: mod_name.clone(),
            signal: signal.to_string(),
        };
        let child_ref = |inst: &str, port: &str| -> Option<GlobalRef> {
            let target = insts.get(inst)?;
            let child_path = if path.is_empty() {
                inst.to_string()
            } else {
                format!("{path}.{inst}")
            };
            Some(GlobalRef {
                path: child_path,
                module: (*target).to_string(),
                signal: port.to_string(),
            })
        };
        // resolve a net-like expression to a global ref (local signal or
        // instance port); registers are valid sources but not sinks
        let as_net = |e: &Expr| -> Option<GlobalRef> {
            match e {
                Expr::Ref(n) => Some(gref(n)),
                Expr::SubField(inner, port) => match inner.as_ref() {
                    Expr::Ref(inst) if insts.contains_key(inst.as_str()) => child_ref(inst, port),
                    _ => None,
                },
                _ => None,
            }
        };

        module.for_each_stmt(&mut |s| match s {
            Stmt::Connect { loc, value, .. } => {
                let sink_is_reg = matches!(loc, Expr::Ref(n) if regs.contains(n.as_str()));
                if sink_is_reg {
                    return;
                }
                if let (Some(sink), Some(src)) = (as_net(loc), as_net(value)) {
                    uf.union(sink, src);
                }
            }
            Stmt::Node { name, value, .. } => {
                if let Some(src) = as_net(value) {
                    uf.union(gref(name), src);
                }
            }
            _ => {}
        });

        for (inst, target) in &insts {
            let child_path = if path.is_empty() {
                inst.to_string()
            } else {
                format!("{path}.{inst}")
            };
            stack.push((child_path, (*target).to_string()));
        }
    }

    // Gather groups and pick representatives per path-group.
    let mut groups_by_root: HashMap<usize, Vec<GlobalRef>> = HashMap::new();
    for i in 0..uf.keys.len() {
        let root = uf.find(i);
        groups_by_root
            .entry(root)
            .or_default()
            .push(uf.keys[i].clone());
    }
    let mut groups = Vec::new();
    let mut representatives: HashSet<(String, String)> = HashSet::new();
    let mut grouped: HashSet<(String, String)> = HashSet::new();
    // module-level grouping: union path-groups that share a module signal
    let mut module_uf: HashMap<(String, String), (String, String)> = HashMap::new();
    fn find_mod(
        uf: &mut HashMap<(String, String), (String, String)>,
        k: (String, String),
    ) -> (String, String) {
        let p = uf.entry(k.clone()).or_insert_with(|| k.clone()).clone();
        if p == k {
            return k;
        }
        let root = find_mod(uf, p);
        uf.insert(k, root.clone());
        root
    }
    for (_, mut members) in groups_by_root {
        if members.len() < 2 {
            continue;
        }
        members.sort_by(|a, b| a.depth().cmp(&b.depth()).then_with(|| a.cmp(b)));
        let rep = members[0].clone();
        representatives.insert((rep.module.clone(), rep.signal.clone()));
        let first_key = (members[0].module.clone(), members[0].signal.clone());
        let root = find_mod(&mut module_uf, first_key);
        for m in &members {
            grouped.insert((m.module.clone(), m.signal.clone()));
            let key = (m.module.clone(), m.signal.clone());
            let r = find_mod(&mut module_uf, key);
            if r != root {
                module_uf.insert(r, root.clone());
            }
        }
        groups.push(members);
    }
    // assign dense ids to module-level groups
    let mut module_group: HashMap<(String, String), usize> = HashMap::new();
    let mut id_of_root: HashMap<(String, String), usize> = HashMap::new();
    let keys: Vec<(String, String)> = module_uf.keys().cloned().collect();
    for k in keys {
        let root = find_mod(&mut module_uf, k.clone());
        let next_id = id_of_root.len();
        let id = *id_of_root.entry(root).or_insert(next_id);
        module_group.insert(k, id);
    }
    // Signals that appear in the design but are in no multi-member group in
    // ANY path are representatives trivially; signals grouped in some path
    // but never chosen rep are skipped.
    let mut all_grouped_signals = HashSet::new();
    for (m, s) in &grouped {
        all_grouped_signals.insert((m.clone(), s.clone()));
    }
    for key in &all_signals {
        if !all_grouped_signals.contains(key) {
            representatives.insert(key.clone());
        }
    }
    groups.sort();
    Ok(AliasGroups {
        groups,
        representatives,
        all_signals,
        module_group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::passes;

    fn analyze(src: &str) -> AliasGroups {
        let c = passes::lower(parse(src).unwrap()).unwrap();
        alias_analysis(&c).unwrap()
    }

    #[test]
    fn local_copy_aliases() {
        let g = analyze(
            "
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    wire w : UInt<4>
    w <= a
    o <= w
",
        );
        // a, w, o all alias; a (port, but all depth 0) — exactly one rep
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0].len(), 3);
        let reps = ["a", "w", "o"]
            .iter()
            .filter(|s| g.is_representative("T", s))
            .count();
        assert_eq!(reps, 1);
    }

    #[test]
    fn reset_instrumented_once_in_top() {
        let g = analyze(
            "
circuit Top :
  module Child :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<1>
    o <= reset
  module Top :
    input clock : Clock
    input reset : UInt<1>
    output o1 : UInt<1>
    output o2 : UInt<1>
    inst c1 of Child
    inst c2 of Child
    c1.clock <= clock
    c2.clock <= clock
    c1.reset <= reset
    c2.reset <= reset
    o1 <= c1.o
    o2 <= c2.o
",
        );
        // The whole reset cone is one group with a single top-level
        // representative; Child.reset is always skipped.
        assert!(!g.is_representative("Child", "reset"));
        assert!(g.skipped_count() > 0);
        let top_reps = ["reset", "o1", "o2"]
            .iter()
            .filter(|s| g.is_representative("Top", s))
            .count();
        assert_eq!(top_reps, 1);
    }

    #[test]
    fn register_connect_is_not_alias() {
        let g = analyze(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    reg r : UInt<4>, clock
    r <= a
    o <= r
",
        );
        // r gets a's value one cycle later: NOT the same signal.
        // But o <= r IS a copy, so {r, o} alias.
        assert!(g.is_representative("T", "a"));
        let group_with_a = g
            .groups
            .iter()
            .any(|grp| grp.iter().any(|m| m.signal == "a") && grp.iter().any(|m| m.signal == "r"));
        assert!(!group_with_a);
    }

    #[test]
    fn multi_instance_different_nets() {
        let g = analyze(
            "
circuit Top :
  module Buf :
    input in : UInt<4>
    output out : UInt<4>
    out <= in
  module Top :
    input a : UInt<4>
    input b : UInt<4>
    output oa : UInt<4>
    output ob : UInt<4>
    inst b1 of Buf
    inst b2 of Buf
    b1.in <= a
    b2.in <= b
    oa <= b1.out
    ob <= b2.out
",
        );
        // Buf.in is never a representative: in every path it aliases a
        // shallower top-level signal.
        assert!(!g.is_representative("Buf", "in"));
        assert!(g.is_representative("Top", "a"));
        assert!(g.is_representative("Top", "b"));
    }

    #[test]
    fn unaliased_signal_is_representative() {
        let g = analyze(
            "
circuit T :
  module T :
    input a : UInt<4>
    input b : UInt<4>
    output o : UInt<5>
    o <= add(a, b)
",
        );
        assert!(g.is_representative("T", "a"));
        assert!(g.is_representative("T", "b"));
        assert!(g.is_representative("T", "o"));
        assert_eq!(g.skipped_count(), 0);
    }
}

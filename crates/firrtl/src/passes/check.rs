//! Well-formedness checks for freshly built or parsed circuits.

use super::PassError;
use crate::ir::*;
use crate::typecheck;
use std::collections::{HashMap, HashSet};

const PASS: &str = "check";

/// Validate a circuit: unique component names, bound references (via the
/// type environment), existing instance targets, no instantiation cycles,
/// and unique cover names per module.
///
/// Returns the circuit unchanged on success so it composes in a pipeline.
///
/// # Errors
///
/// A [`PassError`] describing the first violation found.
pub fn check(circuit: Circuit) -> Result<Circuit, PassError> {
    let module_names: HashSet<&str> = circuit.modules.iter().map(|m| m.name.as_str()).collect();
    if module_names.len() != circuit.modules.len() {
        return Err(PassError::new(PASS, "duplicate module names"));
    }
    if !module_names.contains(circuit.top.as_str()) {
        return Err(PassError::new(
            PASS,
            format!("top module `{}` not found", circuit.top),
        ));
    }

    // instantiation graph for cycle detection
    let mut children: HashMap<String, Vec<String>> = HashMap::new();

    for m in &circuit.modules {
        let mut names: HashSet<String> = HashSet::new();
        for p in &m.ports {
            if !names.insert(p.name.clone()) {
                return Err(PassError::new(
                    PASS,
                    format!("duplicate name `{}` in module `{}`", p.name, m.name),
                ));
            }
        }
        let mut covers: HashSet<String> = HashSet::new();
        let mut check_stmt = |s: &Stmt| -> Result<(), PassError> {
            let declared = match s {
                Stmt::Wire { name, .. }
                | Stmt::Reg { name, .. }
                | Stmt::Node { name, .. }
                | Stmt::Inst { name, .. } => Some(name.as_str()),
                Stmt::Mem(mem) => Some(mem.name.as_str()),
                _ => None,
            };
            if let Some(n) = declared {
                if !names.insert(n.to_string()) {
                    return Err(PassError::new(
                        PASS,
                        format!("duplicate name `{n}` in module `{}`", m.name),
                    ));
                }
            }
            match s {
                Stmt::Inst { module, .. } if !module_names.contains(module.as_str()) => {
                    return Err(PassError::new(
                        PASS,
                        format!("instance of unknown module `{module}` in `{}`", m.name),
                    ));
                }
                Stmt::Cover { name, .. } | Stmt::CoverValues { name, .. }
                    if !covers.insert(name.clone()) =>
                {
                    return Err(PassError::new(
                        PASS,
                        format!("duplicate cover name `{name}` in module `{}`", m.name),
                    ));
                }
                Stmt::Mem(mem) => {
                    if mem.depth == 0 {
                        return Err(PassError::new(
                            PASS,
                            format!("memory `{}` has zero depth", mem.name),
                        ));
                    }
                    if !mem.data_ty.is_ground() {
                        return Err(PassError::new(
                            PASS,
                            format!("memory `{}` must have a ground element type", mem.name),
                        ));
                    }
                }
                _ => {}
            }
            Ok(())
        };
        let mut err = None;
        m.for_each_stmt(&mut |s| {
            if err.is_none() {
                if let Err(e) = check_stmt(s) {
                    err = Some(e);
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        // references bind and nodes type-check
        typecheck::module_env(m, &circuit)?;
        // connect/cover expression references resolve
        let env = typecheck::module_env(m, &circuit)?;
        let mut err = None;
        m.for_each_stmt(&mut |s| {
            if err.is_some() {
                return;
            }
            let exprs: Vec<&Expr> = match s {
                Stmt::Connect { loc, value, .. } => vec![loc, value],
                Stmt::Invalid { loc, .. } => vec![loc],
                Stmt::When { cond, .. } => vec![cond],
                Stmt::Cover {
                    clock,
                    pred,
                    enable,
                    ..
                } => vec![clock, pred, enable],
                Stmt::CoverValues {
                    clock,
                    signal,
                    enable,
                    ..
                } => vec![clock, signal, enable],
                Stmt::Reg { clock, reset, .. } => {
                    let mut v = vec![clock];
                    if let Some((r, i)) = reset {
                        v.push(r);
                        v.push(i);
                    }
                    v
                }
                _ => vec![],
            };
            for e in exprs {
                // Widths may still be unknown pre-inference; only surface
                // binding errors here.
                if let Err(te) = typecheck::expr_type(e, &env) {
                    if te.0.contains("unbound") || te.0.contains("no field") {
                        err = Some(PassError::new(
                            PASS,
                            format!("in module `{}`: {}", m.name, te.0),
                        ));
                        return;
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }

        let mut insts: Vec<String> = Vec::new();
        m.for_each_stmt(&mut |s| {
            if let Stmt::Inst { module, .. } = s {
                insts.push(module.clone());
            }
        });
        children.insert(m.name.clone(), insts);
    }

    // cycle detection (DFS)
    fn dfs<'a>(
        node: &'a str,
        children: &'a HashMap<String, Vec<String>>,
        visiting: &mut HashSet<&'a str>,
        done: &mut HashSet<&'a str>,
    ) -> Result<(), PassError> {
        if done.contains(node) {
            return Ok(());
        }
        if !visiting.insert(node) {
            return Err(PassError::new(
                PASS,
                format!("instantiation cycle through `{node}`"),
            ));
        }
        for c in children.get(node).into_iter().flatten() {
            let c: &str = c;
            dfs(c, children, visiting, done)?;
        }
        visiting.remove(node);
        done.insert(node);
        Ok(())
    }
    let mut visiting = HashSet::new();
    let mut done = HashSet::new();
    for m in &circuit.modules {
        dfs(&m.name, &children, &mut visiting, &mut done)?;
    }

    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn accepts_valid() {
        let c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    node n = add(a, a)
    o <= tail(n, 1)
",
        )
        .unwrap();
        assert!(check(c).is_ok());
    }

    #[test]
    fn rejects_duplicate_names() {
        let c = parse(
            "
circuit T :
  module T :
    input a : UInt<4>
    wire a : UInt<4>
    a <= UInt<4>(0)
",
        )
        .unwrap();
        assert!(check(c).is_err());
    }

    #[test]
    fn rejects_unbound_ref() {
        let c = parse(
            "
circuit T :
  module T :
    output o : UInt<4>
    o <= nope
",
        )
        .unwrap();
        let e = check(c).unwrap_err();
        assert!(e.msg.contains("unbound"), "{e}");
    }

    #[test]
    fn rejects_instance_cycle() {
        let c = parse(
            "
circuit A :
  module A :
    input clock : Clock
    inst b of B
  module B :
    input clock : Clock
    inst a of A
",
        )
        .unwrap();
        let e = check(c).unwrap_err();
        assert!(e.msg.contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_duplicate_cover_names() {
        let c = parse(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : c0
    cover(clock, a, UInt<1>(1)) : c0
",
        )
        .unwrap();
        assert!(check(c).is_err());
    }

    #[test]
    fn rejects_unknown_instance_target() {
        let c = parse(
            "
circuit T :
  module T :
    inst x of Nope
",
        )
        .unwrap();
        assert!(check(c).is_err());
    }
}

//! Expand `when` blocks into mux trees (lowering to structural RTL).
//!
//! This is the step Figure 3 of the paper illustrates: a branch becomes a
//! conditional assignment, which is why line coverage must be instrumented
//! *before* this pass runs. Cover statements declared inside a branch have
//! the dominating branch predicate folded into their enable — exactly the
//! mechanism the paper's line-coverage pass exploits.
//!
//! Semantics are Chisel-like (no X): sinks without a driving connect on
//! some path read as zero; registers keep their previous value.

use super::PassError;
use crate::ir::*;
use crate::typecheck::{expr_type, module_env, TypeEnv};
use std::collections::HashMap;

const PASS: &str = "expand-whens";

/// Expand every `when` in every module.
///
/// # Errors
///
/// Fails if a connect sink cannot be typed (which lower-types should have
/// prevented).
pub fn expand_whens(mut circuit: Circuit) -> Result<Circuit, PassError> {
    let reference = circuit.clone();
    for module in circuit.modules.iter_mut() {
        let env = module_env(module, &reference).map_err(PassError::from)?;
        expand_module(module, &env)?;
    }
    Ok(circuit)
}

struct Ctx {
    /// Declarations and hoisted statements, in order.
    decls: Vec<Stmt>,
    /// Final driving expression per sink (keyed by flat name).
    drivers: HashMap<String, Driver>,
    /// Sink order of first assignment, for deterministic output.
    order: Vec<String>,
    /// Names of registers (keep-value default).
    regs: HashMap<String, ()>,
    /// Fresh name counter for predicate nodes.
    fresh: usize,
}

struct Driver {
    /// The sink expression to reconstruct the connect.
    loc: Expr,
    /// Current driving expression.
    value: Expr,
}

impl Ctx {
    fn fresh_pred(&mut self, value: Expr, info: &Info) -> Expr {
        // Reuse trivial predicates directly to avoid useless nodes.
        if matches!(value, Expr::Ref(_) | Expr::UIntLit(_)) {
            return value;
        }
        let name = format!("_WHEN_{}", self.fresh);
        self.fresh += 1;
        self.decls.push(Stmt::Node {
            name: name.clone(),
            value,
            info: info.clone(),
        });
        Expr::Ref(name)
    }
}

fn expand_module(module: &mut Module, env: &TypeEnv) -> Result<(), PassError> {
    let mut ctx = Ctx {
        decls: Vec::new(),
        drivers: HashMap::new(),
        order: Vec::new(),
        regs: HashMap::new(),
        fresh: 0,
    };
    let body = std::mem::take(&mut module.body);
    walk(body, &mut ctx, Expr::one(), env)?;
    let mut out = std::mem::take(&mut ctx.decls);
    for name in &ctx.order {
        let driver = &ctx.drivers[name];
        out.push(Stmt::Connect {
            loc: driver.loc.clone(),
            value: driver.value.clone(),
            info: Info::none(),
        });
    }
    module.body = out;
    Ok(())
}

fn default_value(sink: &str, loc: &Expr, ctx: &Ctx, env: &TypeEnv) -> Result<Expr, PassError> {
    if ctx.regs.contains_key(sink) {
        // Registers keep their previous value when not assigned.
        return Ok(loc.clone());
    }
    let ty = expr_type(loc, env).map_err(PassError::from)?;
    let w = ty
        .width()
        .ok_or_else(|| PassError::new(PASS, format!("sink `{sink}` has unknown width")))?;
    Ok(match ty {
        Type::SInt(_) => Expr::SIntLit(crate::bv::Bv::zero(w)),
        _ => Expr::UIntLit(crate::bv::Bv::zero(w)),
    })
}

fn walk(stmts: Vec<Stmt>, ctx: &mut Ctx, pred: Expr, env: &TypeEnv) -> Result<(), PassError> {
    for s in stmts {
        match s {
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
                info,
            } => {
                ctx.regs.insert(name.clone(), ());
                ctx.decls.push(Stmt::Reg {
                    name,
                    ty,
                    clock,
                    reset,
                    info,
                });
            }
            decl @ (Stmt::Wire { .. } | Stmt::Node { .. } | Stmt::Inst { .. } | Stmt::Mem(_)) => {
                ctx.decls.push(decl);
            }
            Stmt::Skip => {}
            Stmt::Connect { loc, value, info } => {
                connect(ctx, env, loc, value, &pred, &info, false)?;
            }
            Stmt::Invalid { loc, info } => {
                let sink = loc
                    .flat_name()
                    .ok_or_else(|| PassError::new(PASS, "invalid of non-reference"))?;
                let zero = default_for_invalid(&loc, env)?;
                connect(ctx, env, loc, zero, &pred, &info, true)?;
                let _ = sink;
            }
            Stmt::When {
                cond,
                then,
                else_,
                info,
            } => {
                let cond = ctx.fresh_pred(cond, &info);
                let then_pred = ctx.fresh_pred(Expr::and(pred.clone(), cond.clone()), &info);
                walk(then, ctx, then_pred, env)?;
                if !else_.is_empty() {
                    let not_cond = Expr::not(cond);
                    let else_pred = ctx.fresh_pred(Expr::and(pred.clone(), not_cond), &info);
                    walk(else_, ctx, else_pred, env)?;
                }
            }
            Stmt::Cover {
                name,
                clock,
                pred: cover_pred,
                enable,
                info,
            } => {
                let enable = Expr::and(enable, pred.clone());
                ctx.decls.push(Stmt::Cover {
                    name,
                    clock,
                    pred: cover_pred,
                    enable,
                    info,
                });
            }
            Stmt::CoverValues {
                name,
                clock,
                signal,
                enable,
                info,
            } => {
                let enable = Expr::and(enable, pred.clone());
                ctx.decls.push(Stmt::CoverValues {
                    name,
                    clock,
                    signal,
                    enable,
                    info,
                });
            }
        }
    }
    Ok(())
}

fn default_for_invalid(loc: &Expr, env: &TypeEnv) -> Result<Expr, PassError> {
    let ty = expr_type(loc, env).map_err(PassError::from)?;
    let w = ty
        .width()
        .ok_or_else(|| PassError::new(PASS, "invalidated sink with unknown width"))?;
    Ok(match ty {
        Type::SInt(_) => Expr::SIntLit(crate::bv::Bv::zero(w)),
        _ => Expr::UIntLit(crate::bv::Bv::zero(w)),
    })
}

#[allow(clippy::too_many_arguments)]
fn connect(
    ctx: &mut Ctx,
    env: &TypeEnv,
    loc: Expr,
    value: Expr,
    pred: &Expr,
    _info: &Info,
    _from_invalid: bool,
) -> Result<(), PassError> {
    let sink = loc
        .flat_name()
        .ok_or_else(|| PassError::new(PASS, format!("connect to non-reference {loc:?}")))?;
    let unconditional = matches!(pred, Expr::UIntLit(v) if !v.is_zero());
    let prior = match ctx.drivers.get(&sink) {
        Some(d) => d.value.clone(),
        None => default_value(&sink, &loc, ctx, env)?,
    };
    let new_value = if unconditional {
        value
    } else {
        Expr::mux(pred.clone(), value, prior)
    };
    if !ctx.drivers.contains_key(&sink) {
        ctx.order.push(sink.clone());
    }
    ctx.drivers.insert(
        sink,
        Driver {
            loc,
            value: new_value,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::passes::lower_types::lower_types;

    fn expand(src: &str) -> Circuit {
        expand_whens(lower_types(parse(src).unwrap()).unwrap()).unwrap()
    }

    fn has_when(c: &Circuit) -> bool {
        let mut found = false;
        for m in &c.modules {
            m.for_each_stmt(&mut |s| {
                if matches!(s, Stmt::When { .. }) {
                    found = true;
                }
            });
        }
        found
    }

    #[test]
    fn removes_all_whens() {
        let c = expand(
            "
circuit T :
  module T :
    input a : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    o <= UInt<4>(0)
    when a :
      o <= x
",
        );
        assert!(!has_when(&c));
        // final connect is a mux on the branch predicate
        let m = c.top_module();
        let last = m.body.last().unwrap();
        match last {
            Stmt::Connect { loc, value, .. } => {
                assert_eq!(loc, &Expr::r("o"));
                assert!(matches!(value, Expr::Mux(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn last_connect_wins_unconditionally() {
        let c = expand(
            "
circuit T :
  module T :
    input x : UInt<4>
    output o : UInt<4>
    o <= UInt<4>(1)
    o <= x
",
        );
        match c.top_module().body.last().unwrap() {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::r("x")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn register_keeps_value_when_unassigned() {
        let c = expand(
            "
circuit T :
  module T :
    input clock : Clock
    input en : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    reg r : UInt<4>, clock
    when en :
      r <= x
    o <= r
",
        );
        let m = c.top_module();
        let conn = m
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { loc, value, .. } if loc == &Expr::r("r") => Some(value.clone()),
                _ => None,
            })
            .unwrap();
        // mux(en, x, r): else-branch keeps the register value
        match conn {
            Expr::Mux(_, t, e) => {
                assert_eq!(*t, Expr::r("x"));
                assert_eq!(*e, Expr::r("r"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unassigned_wire_path_reads_zero() {
        let c = expand(
            "
circuit T :
  module T :
    input en : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    when en :
      o <= x
",
        );
        let m = c.top_module();
        match m.body.last().unwrap() {
            Stmt::Connect {
                value: Expr::Mux(_, _, e),
                ..
            } => {
                assert_eq!(e.as_ref().as_lit().unwrap().to_u64(), 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cover_enable_picks_up_branch_predicate() {
        let c = expand(
            "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    when a :
      when b :
        cover(clock, UInt<1>(1), UInt<1>(1)) : deep
",
        );
        let m = c.top_module();
        let cover = m
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Cover { enable, .. } => Some(enable.clone()),
                _ => None,
            })
            .unwrap();
        // enable is a (node reference to a) conjunction of both predicates
        match cover {
            Expr::Ref(name) => {
                let node = m
                    .body
                    .iter()
                    .find_map(|s| match s {
                        Stmt::Node { name: n, value, .. } if n == &name => Some(value.clone()),
                        _ => None,
                    })
                    .unwrap();
                let mut refs = Vec::new();
                node.refs(&mut refs);
                assert!(refs.iter().any(|r| r == "b" || r.starts_with("_WHEN_")));
            }
            other => panic!("expected node ref, got {other:?}"),
        }
    }

    #[test]
    fn else_branch_gets_negated_predicate() {
        let c = expand(
            "
circuit T :
  module T :
    input a : UInt<1>
    input x : UInt<4>
    input y : UInt<4>
    output o : UInt<4>
    when a :
      o <= x
    else :
      o <= y
",
        );
        let m = c.top_module();
        // outer mux: mux(else_pred, y, mux(then_pred, x, 0))
        match m.body.last().unwrap() {
            Stmt::Connect {
                value: Expr::Mux(_, t, _),
                ..
            } => {
                assert_eq!(t.as_ref(), &Expr::r("y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_reads_zero() {
        let c = expand(
            "
circuit T :
  module T :
    output o : UInt<4>
    o is invalid
",
        );
        match c.top_module().body.last().unwrap() {
            Stmt::Connect { value, .. } => {
                assert_eq!(value.as_lit().unwrap().to_u64(), 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instance_input_connects_expand() {
        let c = expand(
            "
circuit Top :
  module Child :
    input clock : Clock
    input in : UInt<4>
    output out : UInt<4>
    out <= in
  module Top :
    input clock : Clock
    input sel : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    inst c of Child
    c.clock <= clock
    c.in <= UInt<4>(0)
    when sel :
      c.in <= x
    o <= c.out
",
        );
        let m = c.top_module();
        let driver = m
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Connect { loc, value, .. } if loc.flat_name().as_deref() == Some("c_in") => {
                    Some(value.clone())
                }
                _ => None,
            })
            .unwrap();
        assert!(matches!(driver, Expr::Mux(..)));
    }
}

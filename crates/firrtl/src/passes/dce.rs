//! Dead code elimination on low-form modules.
//!
//! Roots of liveness are: output ports, cover statements, register
//! next/reset expressions of live registers, instance inputs, and memory
//! port fields. Dead nodes, wires and registers (and their connects) are
//! removed. Instances and memories are conservatively kept — an instance
//! may carry covers inside.

use super::PassError;
use crate::ir::*;
use std::collections::{HashMap, HashSet};

/// Remove dead components from every module.
///
/// # Errors
///
/// Currently infallible, but returns `Result` to compose with the pipeline.
pub fn dce(mut circuit: Circuit) -> Result<Circuit, PassError> {
    for module in circuit.modules.iter_mut() {
        dce_module(module);
    }
    Ok(circuit)
}

fn root_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Ref(n) => Some(n),
        Expr::SubField(inner, _) => root_name(inner),
        Expr::SubIndex(inner, _) => root_name(inner),
        _ => None,
    }
}

fn dce_module(module: &mut Module) {
    // map: component -> names it reads (through its driver or definition)
    let mut reads: HashMap<String, Vec<String>> = HashMap::new();
    let mut live: HashSet<String> = HashSet::new();
    let mut work: Vec<String> = Vec::new();

    let outputs: HashSet<&str> = module
        .ports
        .iter()
        .filter(|p| p.dir == Direction::Output)
        .map(|p| p.name.as_str())
        .collect();

    let mark = |name: String, live: &mut HashSet<String>, work: &mut Vec<String>| {
        if live.insert(name.clone()) {
            work.push(name);
        }
    };

    for s in &module.body {
        match s {
            Stmt::Node { name, value, .. } => {
                let mut rs = Vec::new();
                value.refs(&mut rs);
                reads.entry(name.clone()).or_default().extend(rs);
            }
            Stmt::Connect { loc, value, .. } => {
                let Some(root) = root_name(loc) else { continue };
                let mut rs = Vec::new();
                value.refs(&mut rs);
                // instance/mem connects root to the instance name; outputs
                // are roots of liveness directly
                if outputs.contains(root) {
                    for r in rs {
                        mark(r, &mut live, &mut work);
                    }
                } else {
                    reads.entry(root.to_string()).or_default().extend(rs);
                }
            }
            Stmt::Reg {
                name, clock, reset, ..
            } => {
                let mut rs = Vec::new();
                clock.refs(&mut rs);
                if let Some((r, i)) = reset {
                    r.refs(&mut rs);
                    i.refs(&mut rs);
                }
                reads.entry(name.clone()).or_default().extend(rs);
            }
            Stmt::Cover {
                clock,
                pred,
                enable,
                ..
            } => {
                for e in [clock, pred, enable] {
                    let mut rs = Vec::new();
                    e.refs(&mut rs);
                    for r in rs {
                        mark(r, &mut live, &mut work);
                    }
                }
            }
            Stmt::CoverValues {
                clock,
                signal,
                enable,
                ..
            } => {
                for e in [clock, signal, enable] {
                    let mut rs = Vec::new();
                    e.refs(&mut rs);
                    for r in rs {
                        mark(r, &mut live, &mut work);
                    }
                }
            }
            // instances and memories are always live
            Stmt::Inst { name, .. } => {
                mark(name.clone(), &mut live, &mut work);
            }
            Stmt::Mem(mem) => {
                mark(mem.name.clone(), &mut live, &mut work);
            }
            _ => {}
        }
    }

    while let Some(name) = work.pop() {
        if let Some(rs) = reads.get(&name) {
            for r in rs.clone() {
                if live.insert(r.clone()) {
                    work.push(r);
                }
            }
        }
    }

    // Ports always stay; filter dead declarations and their connects.
    let port_names: HashSet<&str> = module.ports.iter().map(|p| p.name.as_str()).collect();
    let is_live = |name: &str| live.contains(name) || port_names.contains(name);
    module.body.retain(|s| match s {
        Stmt::Wire { name, .. } | Stmt::Reg { name, .. } | Stmt::Node { name, .. } => is_live(name),
        Stmt::Connect { loc, .. } => root_name(loc).is_none_or(&is_live),
        Stmt::Invalid { loc, .. } => root_name(loc).is_none_or(&is_live),
        Stmt::Skip => false,
        _ => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Circuit {
        dce(parse(src).unwrap()).unwrap()
    }

    fn names(c: &Circuit) -> Vec<String> {
        let mut out = Vec::new();
        c.top_module().for_each_stmt(&mut |s| match s {
            Stmt::Wire { name, .. } | Stmt::Reg { name, .. } | Stmt::Node { name, .. } => {
                out.push(name.clone())
            }
            _ => {}
        });
        out
    }

    #[test]
    fn removes_dead_node() {
        let c = run("
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<4>
    node dead = add(a, a)
    o <= a
");
        assert!(names(&c).is_empty());
    }

    #[test]
    fn keeps_transitively_live_chain() {
        let c = run("
circuit T :
  module T :
    input a : UInt<4>
    output o : UInt<5>
    node n1 = add(a, a)
    node n2 = tail(n1, 1)
    node dead = not(a)
    o <= pad(n2, 5)
");
        let ns = names(&c);
        assert!(ns.contains(&"n1".to_string()));
        assert!(ns.contains(&"n2".to_string()));
        assert!(!ns.contains(&"dead".to_string()));
    }

    #[test]
    fn covers_keep_their_cone_alive() {
        let c = run("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    node p = eq(a, UInt<1>(1))
    cover(clock, p, UInt<1>(1)) : c0
");
        assert_eq!(names(&c), vec!["p".to_string()]);
    }

    #[test]
    fn dead_register_and_connect_removed() {
        let c = run("
circuit T :
  module T :
    input clock : Clock
    input a : UInt<4>
    output o : UInt<4>
    reg r : UInt<4>, clock
    r <= a
    o <= a
");
        assert!(names(&c).is_empty());
        // its connect went away too
        let mut connects = 0;
        c.top_module().for_each_stmt(&mut |s| {
            if matches!(s, Stmt::Connect { .. }) {
                connects += 1;
            }
        });
        assert_eq!(connects, 1);
    }

    #[test]
    fn live_register_feedback_loop_kept() {
        let c = run("
circuit T :
  module T :
    input clock : Clock
    output o : UInt<4>
    reg r : UInt<4>, clock
    r <= tail(add(r, UInt<4>(1)), 1)
    o <= r
");
        assert_eq!(names(&c), vec!["r".to_string()]);
    }

    #[test]
    fn instances_and_mems_survive() {
        let c = run("
circuit Top :
  module Child :
    input clock : Clock
    cover(clock, UInt<1>(1), UInt<1>(1)) : inner
  module Top :
    input clock : Clock
    input addr : UInt<4>
    inst c of Child
    c.clock <= clock
    mem m : UInt<8>[16], readers(r)
    m.r.addr <= addr
    m.r.en <= UInt<1>(1)
");
        let mut kinds = Vec::new();
        c.top_module().for_each_stmt(&mut |s| match s {
            Stmt::Inst { .. } => kinds.push("inst"),
            Stmt::Mem(_) => kinds.push("mem"),
            _ => {}
        });
        assert_eq!(kinds, vec!["inst", "mem"]);
    }
}

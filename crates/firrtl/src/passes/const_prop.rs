//! Constant propagation and local algebraic simplification.
//!
//! Runs after `expand_whens` on low-form modules. The paper's toggle
//! coverage pass runs *after* this optimization so that signals removed by
//! the optimizer are not instrumented (§4.2).

use super::PassError;
use crate::eval::{const_fold, Value};
use crate::ir::*;
use crate::typecheck::{expr_type, module_env, TypeEnv};
use std::collections::HashMap;

const MAX_ROUNDS: usize = 16;

/// Propagate literal node values and fold constant expressions in every
/// module.
///
/// # Errors
///
/// Currently infallible, but returns `Result` to compose with the pipeline.
pub fn const_prop(mut circuit: Circuit) -> Result<Circuit, PassError> {
    let reference = circuit.clone();
    for module in circuit.modules.iter_mut() {
        let env = module_env(module, &reference).map_err(PassError::from)?;
        for _ in 0..MAX_ROUNDS {
            if !run_round(module, &env) {
                break;
            }
        }
    }
    Ok(circuit)
}

fn run_round(module: &mut Module, env: &TypeEnv) -> bool {
    // Collect nodes whose value is a literal.
    let mut literal_nodes: HashMap<String, Expr> = HashMap::new();
    for s in &module.body {
        if let Stmt::Node { name, value, .. } = s {
            if value.is_lit() {
                literal_nodes.insert(name.clone(), value.clone());
            }
        }
    }
    let mut changed = false;
    let rewrite = |e: Expr| -> Expr { simplify(e, &literal_nodes, env) };
    for s in module.body.iter_mut() {
        let before_hash = format!("{s:?}");
        match s {
            Stmt::Node { value, .. } => {
                *value = rewrite(std::mem::replace(value, Expr::one()));
            }
            Stmt::Connect { value, .. } => {
                *value = rewrite(std::mem::replace(value, Expr::one()));
            }
            Stmt::Cover { pred, enable, .. } => {
                *pred = rewrite(std::mem::replace(pred, Expr::one()));
                *enable = rewrite(std::mem::replace(enable, Expr::one()));
            }
            Stmt::CoverValues { signal, enable, .. } => {
                *signal = rewrite(std::mem::replace(signal, Expr::one()));
                *enable = rewrite(std::mem::replace(enable, Expr::one()));
            }
            Stmt::Reg {
                reset: Some((r, init)),
                ..
            } => {
                *r = rewrite(std::mem::replace(r, Expr::one()));
                *init = rewrite(std::mem::replace(init, Expr::one()));
            }
            _ => {}
        }
        if format!("{s:?}") != before_hash {
            changed = true;
        }
    }
    changed
}

fn simplify(e: Expr, literal_nodes: &HashMap<String, Expr>, env: &TypeEnv) -> Expr {
    e.map(&|e| {
        // literal node substitution
        if let Expr::Ref(name) = &e {
            if let Some(lit) = literal_nodes.get(name) {
                return lit.clone();
            }
        }
        // full constant folding
        if !e.is_lit() && all_leaves_literal(&e) {
            if let Some(v) = const_fold(&e) {
                return value_to_lit(v);
            }
        }
        // algebraic identities
        match e {
            Expr::Mux(c, t, f) => match c.as_lit() {
                Some(v) if !v.is_zero() => collapse_mux_branch(*t, &f, env),
                Some(_) => collapse_mux_branch(*f, &t, env),
                None => {
                    if t == f {
                        *t
                    } else {
                        Expr::Mux(c, t, f)
                    }
                }
            },
            Expr::ValidIf(c, v) => match c.as_lit() {
                Some(cv) if !cv.is_zero() => *v,
                _ => Expr::ValidIf(c, v),
            },
            Expr::Prim {
                op: PrimOp::And,
                args,
                consts,
            } => {
                let (a, b) = (&args[0], &args[1]);
                if (is_zero_lit(a) || is_zero_lit(b)) && is_one_bit(a, env) && is_one_bit(b, env) {
                    Expr::zero_bit()
                } else if is_one_lit_1bit(a) && is_one_bit(b, env) {
                    b.clone()
                } else if is_one_lit_1bit(b) && is_one_bit(a, env) {
                    a.clone()
                } else {
                    Expr::Prim {
                        op: PrimOp::And,
                        args,
                        consts,
                    }
                }
            }
            Expr::Prim {
                op: PrimOp::Or,
                args,
                consts,
            } => {
                let (a, b) = (&args[0], &args[1]);
                if is_zero_lit(a) && is_one_bit(b, env) && is_one_bit(a, env) {
                    b.clone()
                } else if is_zero_lit(b) && is_one_bit(a, env) && is_one_bit(b, env) {
                    a.clone()
                } else {
                    Expr::Prim {
                        op: PrimOp::Or,
                        args,
                        consts,
                    }
                }
            }
            other => other,
        }
    })
}

fn all_leaves_literal(e: &Expr) -> bool {
    let mut ok = true;
    e.for_each(&mut |x| {
        if matches!(x, Expr::Ref(_) | Expr::SubField(..) | Expr::SubIndex(..)) {
            ok = false;
        }
    });
    ok
}

fn value_to_lit(v: Value) -> Expr {
    if v.signed {
        Expr::SIntLit(v.bits)
    } else {
        Expr::UIntLit(v.bits)
    }
}

fn is_zero_lit(e: &Expr) -> bool {
    matches!(e.as_lit(), Some(v) if v.is_zero())
}

fn is_one_lit_1bit(e: &Expr) -> bool {
    matches!(e.as_lit(), Some(v) if v.width() == 1 && !v.is_zero())
}

fn is_one_bit(e: &Expr, env: &TypeEnv) -> bool {
    matches!(expr_type(e, env), Ok(t) if t.width() == Some(1))
}

/// Replace a constant-condition mux with the selected branch while
/// preserving the mux's result width and signedness: the branch is padded
/// (sign-aware) to the other branch's width and reinterpreted as UInt when
/// the branches had mixed signs.
fn collapse_mux_branch(branch: Expr, other: &Expr, env: &TypeEnv) -> Expr {
    let (Ok(bt), Ok(ot)) = (expr_type(&branch, env), expr_type(other, env)) else {
        return branch;
    };
    let (Some(bw), Some(ow)) = (bt.width(), ot.width()) else {
        return branch;
    };
    let mux_width = bw.max(ow);
    let mux_signed = bt.is_signed() && ot.is_signed();
    let mut out = branch;
    if bw < mux_width {
        out = Expr::prim(PrimOp::Pad, vec![out], vec![u64::from(mux_width)]);
    }
    if bt.is_signed() && !mux_signed {
        out = Expr::prim(PrimOp::AsUInt, vec![out], vec![]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Circuit {
        const_prop(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn folds_constant_nodes() {
        let c = run("
circuit T :
  module T :
    output o : UInt<9>
    node a = add(UInt<8>(3), UInt<8>(4))
    o <= a
");
        match &c.top_module().body[0] {
            Stmt::Node { value, .. } => assert_eq!(value.as_lit().unwrap().to_u64(), 7),
            other => panic!("{other:?}"),
        }
        // the ref to `a` is replaced by the literal too
        match &c.top_module().body[1] {
            Stmt::Connect { value, .. } => assert_eq!(value.as_lit().unwrap().to_u64(), 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mux_with_constant_cond_collapses() {
        let c = run("
circuit T :
  module T :
    input x : UInt<4>
    input y : UInt<4>
    output o : UInt<4>
    o <= mux(UInt<1>(1), x, y)
");
        match &c.top_module().body[0] {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::r("x")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mux_same_branches_collapses() {
        let c = run("
circuit T :
  module T :
    input s : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    o <= mux(s, x, x)
");
        match &c.top_module().body[0] {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::r("x")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_identity() {
        let c = run("
circuit T :
  module T :
    input p : UInt<1>
    input clock : Clock
    cover(clock, p, and(UInt<1>(1), p)) : c0
");
        match &c.top_module().body[0] {
            Stmt::Cover { enable, .. } => assert_eq!(enable, &Expr::r("p")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_propagation() {
        let c = run("
circuit T :
  module T :
    output o : UInt<8>
    node a = UInt<8>(5)
    node b = add(a, a)
    node d = tail(b, 1)
    o <= d
");
        match &c.top_module().body[2] {
            Stmt::Node { value, .. } => assert_eq!(value.as_lit().unwrap().to_u64(), 10),
            other => panic!("{other:?}"),
        }
    }
}

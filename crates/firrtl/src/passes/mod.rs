//! Compiler passes over the FIRRTL IR.
//!
//! The canonical lowering pipeline (see DESIGN.md §3) is:
//!
//! 1. [`check::check`] — well-formedness
//! 2. [`infer_widths::infer_widths`] — resolve unknown widths
//! 3. *(ready/valid coverage runs here, in `rtlcov-core`)*
//! 4. [`lower_types::lower_types`] — flatten bundles and vectors
//! 5. *(line coverage runs here)*
//! 6. [`expand_whens::expand_whens`] — branches become mux trees
//! 7. [`const_prop::const_prop`] + [`dce::dce`] — optimization
//! 8. *(FSM and toggle coverage run here)*
//!
//! [`lower`] runs the whole pipeline at once for callers that do not need to
//! interleave instrumentation.

pub mod alias;
pub mod check;
pub mod const_prop;
pub mod dce;
pub mod expand_whens;
pub mod infer_widths;
pub mod lower_types;

use crate::ir::Circuit;
use std::fmt;

/// Error raised by any lowering pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl PassError {
    /// Construct an error for `pass`.
    pub fn new(pass: &'static str, msg: impl Into<String>) -> Self {
        PassError {
            pass,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.pass, self.msg)
    }
}

impl std::error::Error for PassError {}

impl From<crate::typecheck::TypeError> for PassError {
    fn from(e: crate::typecheck::TypeError) -> Self {
        PassError::new("typecheck", e.0)
    }
}

/// Run the full lowering pipeline: check → infer widths → lower types →
/// expand whens → constant propagation → dead code elimination.
///
/// The result is "low FIRRTL": ground types only, no `when` blocks, single
/// unconditional connect per sink — the form every backend consumes.
///
/// # Errors
///
/// Propagates the first [`PassError`] from any stage.
pub fn lower(circuit: Circuit) -> Result<Circuit, PassError> {
    let circuit = check::check(circuit)?;
    let circuit = infer_widths::infer_widths(circuit)?;
    let circuit = lower_types::lower_types(circuit)?;
    let circuit = expand_whens::expand_whens(circuit)?;
    let circuit = const_prop::const_prop(circuit)?;
    dce::dce(circuit)
}

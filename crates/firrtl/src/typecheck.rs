//! Expression typing rules for the FIRRTL subset.
//!
//! Given an environment mapping component names to their declared types,
//! [`expr_type`] computes the type (and thus width) of any expression
//! following the FIRRTL specification's width rules. The lowering passes and
//! all simulators rely on these rules, so they live here in one place.

use crate::ir::{Expr, PrimOp, Type};
use std::collections::HashMap;
use std::fmt;

/// Maximum width produced by `dshl` before we clamp (keeps memory bounded
/// for adversarial shift-amount widths).
const MAX_DSHL_WIDTH: u32 = 1 << 16;

/// Error produced while typing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// Component-name → declared-type environment for one module.
pub type TypeEnv = HashMap<String, Type>;

fn ground_width(ty: &Type, what: &str) -> Result<u32, TypeError> {
    ty.width()
        .ok_or_else(|| TypeError(format!("{what} has unknown or aggregate width: {ty}")))
}

/// Compute the type of `expr` in `env`.
///
/// # Errors
///
/// Returns a [`TypeError`] when a reference is unbound, a field/index does
/// not exist, or operand types are invalid for an operation.
pub fn expr_type(expr: &Expr, env: &TypeEnv) -> Result<Type, TypeError> {
    match expr {
        Expr::Ref(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| TypeError(format!("unbound reference `{name}`"))),
        Expr::SubField(e, field) => {
            let ty = expr_type(e, env)?;
            match &ty {
                Type::Bundle(fields) => fields
                    .iter()
                    .find(|f| &f.name == field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| TypeError(format!("no field `{field}` in {ty:?}"))),
                other => Err(TypeError(format!(
                    "subfield `{field}` of non-bundle {other}"
                ))),
            }
        }
        Expr::SubIndex(e, i) => {
            let ty = expr_type(e, env)?;
            match ty {
                Type::Vector(elem, n) => {
                    if *i < n {
                        Ok(*elem)
                    } else {
                        Err(TypeError(format!(
                            "index {i} out of bounds for vector of {n}"
                        )))
                    }
                }
                other => Err(TypeError(format!("subindex of non-vector {other}"))),
            }
        }
        Expr::UIntLit(v) => Ok(Type::uint(v.width())),
        Expr::SIntLit(v) => Ok(Type::sint(v.width())),
        Expr::Mux(c, t, e) => {
            let ct = expr_type(c, env)?;
            ground_width(&ct, "mux condition")?;
            let tt = expr_type(t, env)?;
            let et = expr_type(e, env)?;
            let w = ground_width(&tt, "mux true value")?.max(ground_width(&et, "mux false value")?);
            if tt.is_signed() && et.is_signed() {
                Ok(Type::sint(w))
            } else {
                Ok(Type::uint(w))
            }
        }
        Expr::ValidIf(c, v) => {
            expr_type(c, env)?;
            expr_type(v, env)
        }
        Expr::Prim { op, args, consts } => prim_type(*op, args, consts, env),
    }
}

fn prim_type(op: PrimOp, args: &[Expr], consts: &[u64], env: &TypeEnv) -> Result<Type, TypeError> {
    let tys: Vec<Type> = args
        .iter()
        .map(|a| expr_type(a, env))
        .collect::<Result<_, _>>()?;
    let w = |i: usize| -> Result<u32, TypeError> { ground_width(&tys[i], op.name()) };
    let signed = |i: usize| tys[i].is_signed();
    let c = |i: usize| consts[i] as u32;
    Ok(match op {
        PrimOp::Add | PrimOp::Sub => {
            let wr = w(0)?.max(w(1)?) + 1;
            if signed(0) || signed(1) {
                Type::sint(wr)
            } else {
                Type::uint(wr)
            }
        }
        PrimOp::Mul => {
            let wr = w(0)? + w(1)?;
            if signed(0) || signed(1) {
                Type::sint(wr)
            } else {
                Type::uint(wr)
            }
        }
        PrimOp::Div => {
            if signed(0) {
                Type::sint(w(0)? + 1)
            } else {
                Type::uint(w(0)?)
            }
        }
        PrimOp::Rem => {
            let wr = w(0)?.min(w(1)?).max(1);
            if signed(0) {
                Type::sint(wr)
            } else {
                Type::uint(wr)
            }
        }
        PrimOp::Lt | PrimOp::Leq | PrimOp::Gt | PrimOp::Geq | PrimOp::Eq | PrimOp::Neq => {
            Type::bool()
        }
        PrimOp::And | PrimOp::Or | PrimOp::Xor => Type::uint(w(0)?.max(w(1)?)),
        PrimOp::Not => Type::uint(w(0)?),
        PrimOp::Neg => Type::sint(w(0)? + 1),
        PrimOp::Andr | PrimOp::Orr | PrimOp::Xorr => Type::bool(),
        PrimOp::Pad => {
            let wr = w(0)?.max(c(0));
            tys[0].with_width(wr)
        }
        PrimOp::Shl => tys[0].with_width(w(0)? + c(0)),
        PrimOp::Shr => tys[0].with_width(w(0)?.saturating_sub(c(0)).max(1)),
        PrimOp::Dshl => {
            let amt_w = w(1)?;
            let grow = if amt_w >= 17 {
                MAX_DSHL_WIDTH
            } else {
                (1u32 << amt_w) - 1
            };
            tys[0].with_width((w(0)? + grow).min(MAX_DSHL_WIDTH))
        }
        PrimOp::Dshr => tys[0].with_width(w(0)?),
        PrimOp::Cat => Type::uint(w(0)? + w(1)?),
        PrimOp::Bits => {
            let (hi, lo) = (c(0), c(1));
            if hi < lo {
                return Err(TypeError(format!("bits({hi}, {lo}) with hi < lo")));
            }
            if hi >= w(0)? {
                return Err(TypeError(format!(
                    "bits({hi}, {lo}) out of range for width {}",
                    w(0)?
                )));
            }
            Type::uint(hi - lo + 1)
        }
        PrimOp::Head => {
            if c(0) > w(0)? {
                return Err(TypeError(format!("head({}) exceeds width {}", c(0), w(0)?)));
            }
            Type::uint(c(0).max(1))
        }
        PrimOp::Tail => Type::uint(w(0)?.saturating_sub(c(0)).max(1)),
        PrimOp::AsUInt => Type::uint(w(0)?),
        PrimOp::AsSInt => Type::sint(w(0)?),
        PrimOp::AsClock => Type::Clock,
        PrimOp::Cvt => {
            if signed(0) {
                Type::sint(w(0)?)
            } else {
                Type::sint(w(0)? + 1)
            }
        }
    })
}

/// Build the type environment for a module body: ports plus every locally
/// declared wire, register, node, memory and instance.
///
/// Instance components are typed as a bundle of the instantiated module's
/// ports (outputs non-flipped, inputs flipped). Memory components are typed
/// as a bundle of their port bundles.
///
/// # Errors
///
/// Returns a [`TypeError`] if a node's expression fails to type, or an
/// instance references an unknown module.
pub fn module_env(
    module: &crate::ir::Module,
    circuit: &crate::ir::Circuit,
) -> Result<TypeEnv, TypeError> {
    use crate::ir::{Field, Stmt};
    let mut env = TypeEnv::new();
    for p in &module.ports {
        env.insert(p.name.clone(), p.ty.clone());
    }
    // Declarations can reference earlier nodes, so walk in order; `when`
    // bodies are walked too since FIRRTL scoping is module-wide for our
    // purposes (the parser guarantees unique names).
    fn walk(
        stmts: &[Stmt],
        env: &mut TypeEnv,
        circuit: &crate::ir::Circuit,
    ) -> Result<(), TypeError> {
        for s in stmts {
            match s {
                Stmt::Wire { name, ty, .. } | Stmt::Reg { name, ty, .. } => {
                    env.insert(name.clone(), ty.clone());
                }
                Stmt::Node { name, value, .. } => {
                    let ty = expr_type(value, env)?;
                    env.insert(name.clone(), ty);
                }
                Stmt::Inst { name, module, .. } => {
                    let target = circuit
                        .module(module)
                        .ok_or_else(|| TypeError(format!("unknown module `{module}`")))?;
                    let fields = target
                        .ports
                        .iter()
                        .map(|p| Field {
                            name: p.name.clone(),
                            flip: p.dir == crate::ir::Direction::Input,
                            ty: p.ty.clone(),
                        })
                        .collect();
                    env.insert(name.clone(), Type::Bundle(fields));
                }
                Stmt::Mem(mem) => {
                    let addr_w = addr_width(mem.depth);
                    let mut fields = Vec::new();
                    for r in &mem.readers {
                        fields.push(Field {
                            name: r.clone(),
                            flip: false,
                            ty: Type::Bundle(vec![
                                Field {
                                    name: "addr".into(),
                                    flip: true,
                                    ty: Type::uint(addr_w),
                                },
                                Field {
                                    name: "en".into(),
                                    flip: true,
                                    ty: Type::bool(),
                                },
                                Field {
                                    name: "data".into(),
                                    flip: false,
                                    ty: mem.data_ty.clone(),
                                },
                            ]),
                        });
                    }
                    for wr in &mem.writers {
                        fields.push(Field {
                            name: wr.clone(),
                            flip: false,
                            ty: Type::Bundle(vec![
                                Field {
                                    name: "addr".into(),
                                    flip: true,
                                    ty: Type::uint(addr_w),
                                },
                                Field {
                                    name: "en".into(),
                                    flip: true,
                                    ty: Type::bool(),
                                },
                                Field {
                                    name: "data".into(),
                                    flip: true,
                                    ty: mem.data_ty.clone(),
                                },
                                Field {
                                    name: "mask".into(),
                                    flip: true,
                                    ty: Type::bool(),
                                },
                            ]),
                        });
                    }
                    env.insert(mem.name.clone(), Type::Bundle(fields));
                }
                Stmt::When { then, else_, .. } => {
                    walk(then, env, circuit)?;
                    walk(else_, env, circuit)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
    walk(&module.body, &mut env, circuit)?;
    Ok(env)
}

/// Address width needed to index `depth` elements (min 1).
pub fn addr_width(depth: usize) -> u32 {
    (usize::BITS - depth.saturating_sub(1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.insert("a".into(), Type::uint(8));
        e.insert("b".into(), Type::uint(4));
        e.insert("s".into(), Type::sint(8));
        e.insert(
            "io".into(),
            Type::Bundle(vec![
                Field {
                    name: "valid".into(),
                    flip: false,
                    ty: Type::bool(),
                },
                Field {
                    name: "bits".into(),
                    flip: false,
                    ty: Type::uint(16),
                },
            ]),
        );
        e.insert("v".into(), Type::Vector(Box::new(Type::uint(4)), 3));
        e
    }

    fn t(e: &Expr) -> Type {
        expr_type(e, &env()).unwrap()
    }

    #[test]
    fn arithmetic_widths() {
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Add,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(9)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Mul,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(12)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Div,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(8)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Rem,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(4)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Add,
                vec![Expr::r("s"), Expr::r("s")],
                vec![]
            )),
            Type::sint(9)
        );
    }

    #[test]
    fn comparison_is_bool() {
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Lt,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::bool()
        );
        assert_eq!(t(&Expr::eq(Expr::r("a"), Expr::r("b"))), Type::bool());
    }

    #[test]
    fn slicing() {
        assert_eq!(
            t(&Expr::prim(PrimOp::Bits, vec![Expr::r("a")], vec![5, 2])),
            Type::uint(4)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::Tail, vec![Expr::r("a")], vec![3])),
            Type::uint(5)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::Head, vec![Expr::r("a")], vec![3])),
            Type::uint(3)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Cat,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(12)
        );
    }

    #[test]
    fn bits_out_of_range_is_error() {
        let e = Expr::prim(PrimOp::Bits, vec![Expr::r("b")], vec![9, 0]);
        assert!(expr_type(&e, &env()).is_err());
    }

    #[test]
    fn shifts() {
        assert_eq!(
            t(&Expr::prim(PrimOp::Shl, vec![Expr::r("a")], vec![4])),
            Type::uint(12)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::Shr, vec![Expr::r("a")], vec![20])),
            Type::uint(1)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Dshl,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(8 + 15)
        );
        assert_eq!(
            t(&Expr::prim(
                PrimOp::Dshr,
                vec![Expr::r("a"), Expr::r("b")],
                vec![]
            )),
            Type::uint(8)
        );
    }

    #[test]
    fn aggregates() {
        let valid = Expr::SubField(Box::new(Expr::r("io")), "valid".into());
        assert_eq!(t(&valid), Type::bool());
        let elt = Expr::SubIndex(Box::new(Expr::r("v")), 2);
        assert_eq!(t(&elt), Type::uint(4));
        let oob = Expr::SubIndex(Box::new(Expr::r("v")), 3);
        assert!(expr_type(&oob, &env()).is_err());
    }

    #[test]
    fn mux_and_validif() {
        let m = Expr::mux(Expr::r("b"), Expr::r("a"), Expr::u(0, 3));
        assert_eq!(t(&m), Type::uint(8));
        let v = Expr::ValidIf(Box::new(Expr::one()), Box::new(Expr::r("a")));
        assert_eq!(t(&v), Type::uint(8));
    }

    #[test]
    fn casts() {
        assert_eq!(
            t(&Expr::prim(PrimOp::AsSInt, vec![Expr::r("a")], vec![])),
            Type::sint(8)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::AsUInt, vec![Expr::r("s")], vec![])),
            Type::uint(8)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::Cvt, vec![Expr::r("a")], vec![])),
            Type::sint(9)
        );
        assert_eq!(
            t(&Expr::prim(PrimOp::Cvt, vec![Expr::r("s")], vec![])),
            Type::sint(8)
        );
    }

    #[test]
    fn unbound_ref_is_error() {
        assert!(expr_type(&Expr::r("nope"), &env()).is_err());
    }

    #[test]
    fn addr_widths() {
        assert_eq!(addr_width(1), 1);
        assert_eq!(addr_width(2), 1);
        assert_eq!(addr_width(3), 2);
        assert_eq!(addr_width(1024), 10);
        assert_eq!(addr_width(1025), 11);
    }
}

//! Pure evaluation of FIRRTL expressions over [`Bv`] values.
//!
//! Used by the constant-propagation pass, the FSM next-state analysis and
//! the tree-walking interpreter. Signedness is tracked alongside the bit
//! pattern so signed comparison/arithmetic rules apply without a type
//! environment.

use crate::bv::Bv;
use crate::ir::{Expr, PrimOp};
use std::fmt;

/// A runtime value: a bit pattern plus its signedness interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The bits.
    pub bits: Bv,
    /// True when the value is an `SInt`.
    pub signed: bool,
}

impl Value {
    /// An unsigned value.
    pub fn uint(bits: Bv) -> Self {
        Value {
            bits,
            signed: false,
        }
    }

    /// A signed value.
    pub fn sint(bits: Bv) -> Self {
        Value { bits, signed: true }
    }

    /// Convenience constructor from a `u64`.
    pub fn from_u64(v: u64, width: u32) -> Self {
        Value::uint(Bv::from_u64(v, width))
    }

    /// 1-bit boolean value.
    pub fn bool_value(b: bool) -> Self {
        Value::uint(Bv::bit_value(b))
    }

    /// True if any bit is set (condition semantics).
    pub fn is_true(&self) -> bool {
        !self.bits.is_zero()
    }

    /// Resize, extending according to signedness.
    pub fn extend_to(&self, width: u32) -> Bv {
        if self.signed {
            self.bits.resize_sext(width)
        } else {
            self.bits.resize_zext(width)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signed {
            write!(f, "SInt<{}>({})", self.bits.width(), self.bits.to_i64())
        } else {
            write!(f, "UInt<{}>({})", self.bits.width(), self.bits)
        }
    }
}

/// Error produced during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `expr`, resolving references through `lookup`.
///
/// # Errors
///
/// Returns [`EvalError`] when a reference cannot be resolved (including any
/// `SubField`/`SubIndex` whose flattened name `lookup` does not know).
pub fn eval(expr: &Expr, lookup: &dyn Fn(&str) -> Option<Value>) -> Result<Value, EvalError> {
    match expr {
        Expr::Ref(name) => {
            lookup(name).ok_or_else(|| EvalError(format!("unresolved reference `{name}`")))
        }
        Expr::SubField(..) | Expr::SubIndex(..) => {
            let name = expr
                .flat_name()
                .ok_or_else(|| EvalError("non-static reference chain".into()))?;
            lookup(&name).ok_or_else(|| EvalError(format!("unresolved reference `{name}`")))
        }
        Expr::UIntLit(v) => Ok(Value::uint(v.clone())),
        Expr::SIntLit(v) => Ok(Value::sint(v.clone())),
        Expr::Mux(c, t, e) => {
            let cond = eval(c, lookup)?;
            let tv = eval(t, lookup)?;
            let ev = eval(e, lookup)?;
            let w = tv.bits.width().max(ev.bits.width());
            let signed = tv.signed && ev.signed;
            let pick = if cond.is_true() { tv } else { ev };
            Ok(Value {
                bits: pick.extend_to(w),
                signed,
            })
        }
        Expr::ValidIf(c, v) => {
            let cond = eval(c, lookup)?;
            let val = eval(v, lookup)?;
            if cond.is_true() {
                Ok(val)
            } else {
                // Chisel semantics: invalid reads as zero, no X propagation.
                Ok(Value {
                    bits: Bv::zero(val.bits.width()),
                    signed: val.signed,
                })
            }
        }
        Expr::Prim { op, args, consts } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, lookup))
                .collect::<Result<_, _>>()?;
            Ok(eval_prim(*op, &vals, consts))
        }
    }
}

/// Apply a primitive op to already-evaluated operands.
pub fn eval_prim(op: PrimOp, vals: &[Value], consts: &[u64]) -> Value {
    let a = &vals[0];
    let c = |i: usize| consts[i] as u32;
    match op {
        PrimOp::Add => {
            let b = &vals[1];
            if a.signed || b.signed {
                // each operand extends per its own signedness (two's
                // complement addition wraps correctly at w bits)
                let w = a.bits.width().max(b.bits.width()) + 1;
                let sum = a.extend_to(w).add(&b.extend_to(w));
                Value::sint(sum.bits(w - 1, 0))
            } else {
                Value::uint(a.bits.add(&b.bits))
            }
        }
        PrimOp::Sub => {
            let b = &vals[1];
            if a.signed || b.signed {
                let w = a.bits.width().max(b.bits.width()) + 1;
                let diff = a.extend_to(w).sub(&b.extend_to(w));
                Value::sint(diff.bits(w - 1, 0))
            } else {
                // FIRRTL UInt sub yields a UInt (wrapping at w+1 bits).
                Value::uint(a.bits.sub(&b.bits))
            }
        }
        PrimOp::Mul => {
            let b = &vals[1];
            if a.signed || b.signed {
                let w = a.bits.width() + b.bits.width();
                let prod = a.extend_to(w).mul(&b.extend_to(w));
                Value::sint(prod.bits(w - 1, 0))
            } else {
                Value::uint(a.bits.mul(&b.bits))
            }
        }
        PrimOp::Div => {
            let b = &vals[1];
            if a.signed {
                let w = a.bits.width() + 1;
                let (an, bn) = (a.bits.sign_bit(), b.bits.sign_bit());
                let au = if an { neg(&a.bits) } else { a.bits.clone() };
                let bu = if bn { neg(&b.bits) } else { b.bits.clone() };
                let q = au.div(&bu).resize_zext(w);
                Value::sint(if an != bn { neg(&q) } else { q })
            } else {
                Value::uint(a.bits.div(&b.bits))
            }
        }
        PrimOp::Rem => {
            let b = &vals[1];
            if a.signed {
                let w = a.bits.width().min(b.bits.width()).max(1);
                let an = a.bits.sign_bit();
                let au = if an { neg(&a.bits) } else { a.bits.clone() };
                let bu = if b.bits.sign_bit() {
                    neg(&b.bits)
                } else {
                    b.bits.clone()
                };
                let r = au.rem(&bu).resize_zext(w);
                Value::sint(if an { neg(&r) } else { r })
            } else {
                Value::uint(a.bits.rem(&b.bits))
            }
        }
        PrimOp::Lt => cmp(vals, |o| o == std::cmp::Ordering::Less),
        PrimOp::Leq => cmp(vals, |o| o != std::cmp::Ordering::Greater),
        PrimOp::Gt => cmp(vals, |o| o == std::cmp::Ordering::Greater),
        PrimOp::Geq => cmp(vals, |o| o != std::cmp::Ordering::Less),
        PrimOp::Eq => {
            let w = vals[0].bits.width().max(vals[1].bits.width());
            Value::bool_value(vals[0].extend_to(w) == vals[1].extend_to(w))
        }
        PrimOp::Neq => {
            let w = vals[0].bits.width().max(vals[1].bits.width());
            Value::bool_value(vals[0].extend_to(w) != vals[1].extend_to(w))
        }
        PrimOp::And => bitwise(vals, Bv::and),
        PrimOp::Or => bitwise(vals, Bv::or),
        PrimOp::Xor => bitwise(vals, Bv::xor),
        PrimOp::Not => Value::uint(a.bits.not()),
        PrimOp::Neg => {
            let w = a.bits.width() + 1;
            let ext = a.extend_to(w);
            Value::sint(neg(&ext))
        }
        PrimOp::Andr => Value::bool_value(a.bits.reduce_and()),
        PrimOp::Orr => Value::bool_value(a.bits.reduce_or()),
        PrimOp::Xorr => Value::bool_value(a.bits.reduce_xor()),
        PrimOp::Pad => {
            let w = a.bits.width().max(c(0));
            Value {
                bits: a.extend_to(w),
                signed: a.signed,
            }
        }
        PrimOp::Shl => Value {
            bits: a.bits.shl(c(0)),
            signed: a.signed,
        },
        PrimOp::Shr => {
            let bits = if a.signed {
                a.bits.shr_signed(c(0))
            } else {
                a.bits.shr(c(0))
            };
            Value {
                bits,
                signed: a.signed,
            }
        }
        PrimOp::Dshl => {
            let b = &vals[1];
            let amt_w = b.bits.width();
            let grow = if amt_w >= 17 {
                1 << 16
            } else {
                (1u32 << amt_w) - 1
            };
            let w = (a.bits.width() + grow).min(1 << 16);
            Value {
                bits: a.bits.dshl(&b.bits, w),
                signed: a.signed,
            }
        }
        PrimOp::Dshr => {
            let b = &vals[1];
            let bits = if a.signed {
                a.bits.dshr_signed(&b.bits)
            } else {
                a.bits.dshr(&b.bits)
            };
            Value {
                bits,
                signed: a.signed,
            }
        }
        PrimOp::Cat => Value::uint(a.bits.cat(&vals[1].bits)),
        PrimOp::Bits => Value::uint(a.bits.bits(c(0), c(1))),
        PrimOp::Head => {
            let n = c(0).max(1);
            let w = a.bits.width();
            Value::uint(a.bits.bits(w - 1, w - n))
        }
        PrimOp::Tail => {
            let n = c(0);
            let w = a.bits.width();
            if n >= w {
                Value::uint(Bv::zero(1))
            } else {
                Value::uint(a.bits.bits(w - n - 1, 0))
            }
        }
        PrimOp::AsUInt | PrimOp::AsClock => Value::uint(a.bits.clone()),
        PrimOp::AsSInt => Value::sint(a.bits.clone()),
        PrimOp::Cvt => {
            if a.signed {
                Value::sint(a.bits.clone())
            } else {
                Value::sint(a.bits.resize_zext(a.bits.width() + 1))
            }
        }
    }
}

fn neg(v: &Bv) -> Bv {
    Bv::zero(v.width()).sub(v).resize_zext(v.width())
}

fn cmp(vals: &[Value], f: impl Fn(std::cmp::Ordering) -> bool) -> Value {
    use std::cmp::Ordering;
    let (a, b) = (&vals[0], &vals[1]);
    let signed = a.signed || b.signed;
    let w = a.bits.width().max(b.bits.width());
    // each operand extends per its own signedness; the comparison is then
    // two's complement when either operand is signed
    let (x, y) = (a.extend_to(w), b.extend_to(w));
    let ord = if signed {
        if x.slt(&y) {
            Ordering::Less
        } else if y.slt(&x) {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    } else if x.ult(&y) {
        Ordering::Less
    } else if y.ult(&x) {
        Ordering::Greater
    } else {
        Ordering::Equal
    };
    Value::bool_value(f(ord))
}

fn bitwise(vals: &[Value], f: impl Fn(&Bv, &Bv) -> Bv) -> Value {
    let w = vals[0].bits.width().max(vals[1].bits.width());
    Value::uint(f(&vals[0].extend_to(w), &vals[1].extend_to(w)))
}

/// Try to fold an expression into a literal: succeeds only when all leaves
/// are literals.
pub fn const_fold(expr: &Expr) -> Option<Value> {
    eval(expr, &|_| None).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn e(expr: &Expr) -> Value {
        const_fold(expr).unwrap()
    }

    #[test]
    fn fold_add() {
        let x = Expr::prim(PrimOp::Add, vec![Expr::u(200, 8), Expr::u(100, 8)], vec![]);
        let v = e(&x);
        assert_eq!(v.bits.to_u64(), 300);
        assert_eq!(v.bits.width(), 9);
    }

    #[test]
    fn signed_compare() {
        let a = Expr::SIntLit(Bv::from_i64(-3, 4));
        let b = Expr::SIntLit(Bv::from_i64(2, 4));
        let lt = Expr::prim(PrimOp::Lt, vec![a.clone(), b.clone()], vec![]);
        assert!(e(&lt).is_true());
        let gt = Expr::prim(PrimOp::Gt, vec![a, b], vec![]);
        assert!(!e(&gt).is_true());
    }

    #[test]
    fn unsigned_compare_mixed_widths() {
        let lt = Expr::prim(PrimOp::Lt, vec![Expr::u(3, 2), Expr::u(200, 8)], vec![]);
        assert!(e(&lt).is_true());
    }

    #[test]
    fn signed_div_rem() {
        let a = Expr::SIntLit(Bv::from_i64(-7, 8));
        let b = Expr::SIntLit(Bv::from_i64(2, 8));
        let d = Expr::prim(PrimOp::Div, vec![a.clone(), b.clone()], vec![]);
        assert_eq!(e(&d).bits.to_i64(), -3);
        let r = Expr::prim(PrimOp::Rem, vec![a, b], vec![]);
        assert_eq!(e(&r).bits.to_i64(), -1);
    }

    #[test]
    fn mux_width_alignment() {
        let m = Expr::mux(Expr::one(), Expr::u(3, 2), Expr::u(200, 8));
        let v = e(&m);
        assert_eq!(v.bits.width(), 8);
        assert_eq!(v.bits.to_u64(), 3);
    }

    #[test]
    fn validif_invalid_reads_zero() {
        let v = Expr::ValidIf(Box::new(Expr::zero_bit()), Box::new(Expr::u(42, 8)));
        assert_eq!(e(&v).bits.to_u64(), 0);
        let v = Expr::ValidIf(Box::new(Expr::one()), Box::new(Expr::u(42, 8)));
        assert_eq!(e(&v).bits.to_u64(), 42);
    }

    #[test]
    fn head_tail() {
        let x = Expr::u(0b1101_0011, 8);
        assert_eq!(
            e(&Expr::prim(PrimOp::Head, vec![x.clone()], vec![4]))
                .bits
                .to_u64(),
            0b1101
        );
        assert_eq!(
            e(&Expr::prim(PrimOp::Tail, vec![x], vec![4])).bits.to_u64(),
            0b0011
        );
    }

    #[test]
    fn neg_and_cvt() {
        let x = Expr::u(5, 4);
        let n = e(&Expr::prim(PrimOp::Neg, vec![x.clone()], vec![]));
        assert!(n.signed);
        assert_eq!(n.bits.to_i64(), -5);
        let c = e(&Expr::prim(PrimOp::Cvt, vec![x], vec![]));
        assert_eq!(c.bits.width(), 5);
        assert_eq!(c.bits.to_i64(), 5);
    }

    #[test]
    fn fold_fails_on_refs() {
        assert!(const_fold(&Expr::r("x")).is_none());
        let partial = Expr::prim(PrimOp::Add, vec![Expr::u(1, 4), Expr::r("x")], vec![]);
        assert!(const_fold(&partial).is_none());
    }

    #[test]
    fn eval_with_lookup() {
        let lookup = |name: &str| -> Option<Value> { (name == "x").then(|| Value::from_u64(7, 4)) };
        let expr = Expr::prim(PrimOp::Add, vec![Expr::r("x"), Expr::u(1, 4)], vec![]);
        assert_eq!(eval(&expr, &lookup).unwrap().bits.to_u64(), 8);
        assert!(eval(&Expr::r("y"), &lookup).is_err());
    }

    #[test]
    fn subfield_resolves_via_flat_name() {
        let lookup =
            |name: &str| -> Option<Value> { (name == "io_valid").then(|| Value::bool_value(true)) };
        let expr = Expr::SubField(Box::new(Expr::r("io")), "valid".into());
        assert!(eval(&expr, &lookup).unwrap().is_true());
    }

    #[test]
    fn shift_semantics() {
        let x = Expr::u(0b1010, 4);
        assert_eq!(
            e(&Expr::prim(PrimOp::Shl, vec![x.clone()], vec![2]))
                .bits
                .to_u64(),
            0b101000
        );
        assert_eq!(
            e(&Expr::prim(PrimOp::Shr, vec![x.clone()], vec![1]))
                .bits
                .to_u64(),
            0b101
        );
        let amt = Expr::u(2, 2);
        assert_eq!(
            e(&Expr::prim(PrimOp::Dshr, vec![x, amt], vec![]))
                .bits
                .to_u64(),
            0b10
        );
    }
}

//! # rtlcov-firrtl
//!
//! A from-scratch implementation of the FIRRTL-subset intermediate
//! representation that the *Simulator Independent Coverage for RTL Hardware
//! Languages* (ASPLOS 2023) coverage system is built on.
//!
//! The crate provides:
//!
//! * [`bv`] — arbitrary-width bit vectors, the value domain of every tool;
//! * [`ir`] — the AST (types, expressions, statements, modules, circuits,
//!   annotations), including the paper's `cover` primitive;
//! * [`parser`] / [`printer`] — the textual `.fir` format;
//! * [`builder`] / [`dsl`] — a Chisel-like embedded DSL with automatic
//!   source locators (the front-end substitute);
//! * [`typecheck`] / [`eval`] — FIRRTL width rules and pure evaluation;
//! * [`passes`] — lowering pipeline: well-formedness, width inference,
//!   type lowering, when expansion, constant propagation, DCE, and the
//!   global signal alias analysis used by toggle coverage;
//! * [`verilog`] — structural Verilog emission with covers as immediate
//!   assertions (the Verilator/SymbiYosys-facing format).
//!
//! ## Quick example
//!
//! ```
//! use rtlcov_firrtl::{parser, passes};
//!
//! let circuit = parser::parse("
//! circuit Inverter :
//!   module Inverter :
//!     input a : UInt<1>
//!     output b : UInt<1>
//!     b <= not(a)
//! ").unwrap();
//! let low = passes::lower(circuit).unwrap();
//! assert_eq!(low.top, "Inverter");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod bv;
pub mod dsl;
pub mod eval;
pub mod ir;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod typecheck;
pub mod verilog;

pub use bv::Bv;
pub use ir::{Annotation, Circuit, Expr, Info, Module, PrimOp, Stmt, Type};

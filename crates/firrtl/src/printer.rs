//! Serialization of the IR back to `.fir` text.
//!
//! `parse(print(c))` round-trips for every circuit the parser accepts, which
//! the property tests in `tests/` rely on.

use crate::ir::*;
use std::fmt::Write;

/// Render a whole circuit as `.fir` text, including annotation directives.
pub fn print_circuit(c: &Circuit) -> String {
    let mut out = String::new();
    for a in &c.annotations {
        match a {
            Annotation::EnumDef(def) => {
                let vars: Vec<String> = def
                    .variants
                    .iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect();
                let _ = writeln!(out, "; @enumdef {} {}", def.name, vars.join(","));
            }
            Annotation::EnumReg {
                module,
                reg,
                enum_name,
            } => {
                let _ = writeln!(out, "; @enumreg {module}.{reg} {enum_name}");
            }
            Annotation::Decoupled { module, port } => {
                let _ = writeln!(out, "; @decoupled {module}.{port}");
            }
            Annotation::Custom { .. } => {}
        }
    }
    let _ = writeln!(out, "circuit {} :", c.top);
    for m in &c.modules {
        print_module(m, &mut out);
    }
    out
}

fn print_module(m: &Module, out: &mut String) {
    let _ = writeln!(out, "  module {} :{}", m.name, m.info);
    for p in &m.ports {
        let dir = match p.dir {
            Direction::Input => "input",
            Direction::Output => "output",
        };
        let _ = writeln!(
            out,
            "    {dir} {} : {}{}",
            p.name,
            print_type(&p.ty),
            p.info
        );
    }
    if m.body.is_empty() {
        let _ = writeln!(out, "    skip");
    }
    for s in &m.body {
        print_stmt(s, 4, out);
    }
}

/// Render a type.
pub fn print_type(ty: &Type) -> String {
    match ty {
        Type::Clock => "Clock".into(),
        Type::Reset => "Reset".into(),
        Type::UInt(Some(w)) => format!("UInt<{w}>"),
        Type::UInt(None) => "UInt".into(),
        Type::SInt(Some(w)) => format!("SInt<{w}>"),
        Type::SInt(None) => "SInt".into(),
        Type::Bundle(fields) => {
            let fs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}{} : {}",
                        if f.flip { "flip " } else { "" },
                        f.name,
                        print_type(&f.ty)
                    )
                })
                .collect();
            format!("{{ {} }}", fs.join(", "))
        }
        Type::Vector(elem, n) => format!("{}[{n}]", print_type(elem)),
    }
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Ref(n) => n.clone(),
        Expr::SubField(e, f) => format!("{}.{f}", print_expr(e)),
        Expr::SubIndex(e, i) => format!("{}[{i}]", print_expr(e)),
        Expr::UIntLit(v) => format!("UInt<{}>(\"h{:x}\")", v.width(), v),
        Expr::SIntLit(v) => format!("SInt<{}>(\"h{:x}\")", v.width(), v),
        Expr::Mux(c, t, f) => {
            format!(
                "mux({}, {}, {})",
                print_expr(c),
                print_expr(t),
                print_expr(f)
            )
        }
        Expr::ValidIf(c, v) => format!("validif({}, {})", print_expr(c), print_expr(v)),
        Expr::Prim { op, args, consts } => {
            let mut parts: Vec<String> = args.iter().map(print_expr).collect();
            parts.extend(consts.iter().map(|c| c.to_string()));
            format!("{}({})", op.name(), parts.join(", "))
        }
    }
}

fn print_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Wire { name, ty, info } => {
            let _ = writeln!(out, "{pad}wire {name} : {}{info}", print_type(ty));
        }
        Stmt::Reg {
            name,
            ty,
            clock,
            reset,
            info,
        } => {
            let base = format!(
                "{pad}reg {name} : {}, {}",
                print_type(ty),
                print_expr(clock)
            );
            match reset {
                Some((rst, init)) => {
                    let _ = writeln!(
                        out,
                        "{base} with : (reset => ({}, {})){info}",
                        print_expr(rst),
                        print_expr(init)
                    );
                }
                None => {
                    let _ = writeln!(out, "{base}{info}");
                }
            }
        }
        Stmt::Node { name, value, info } => {
            let _ = writeln!(out, "{pad}node {name} = {}{info}", print_expr(value));
        }
        Stmt::Connect { loc, value, info } => {
            let _ = writeln!(
                out,
                "{pad}{} <= {}{info}",
                print_expr(loc),
                print_expr(value)
            );
        }
        Stmt::Invalid { loc, info } => {
            let _ = writeln!(out, "{pad}{} is invalid{info}", print_expr(loc));
        }
        Stmt::Inst { name, module, info } => {
            let _ = writeln!(out, "{pad}inst {name} of {module}{info}");
        }
        Stmt::Mem(mem) => {
            let mut line = format!(
                "{pad}mem {} : {}[{}]",
                mem.name,
                print_type(&mem.data_ty),
                mem.depth
            );
            if !mem.readers.is_empty() {
                let _ = write!(line, ", readers({})", mem.readers.join(", "));
            }
            if !mem.writers.is_empty() {
                let _ = write!(line, ", writers({})", mem.writers.join(", "));
            }
            let _ = writeln!(out, "{line}{}", mem.info);
        }
        Stmt::When {
            cond,
            then,
            else_,
            info,
        } => {
            let _ = writeln!(out, "{pad}when {} :{info}", print_expr(cond));
            if then.is_empty() {
                let _ = writeln!(out, "{pad}  skip");
            }
            for s in then {
                print_stmt(s, indent + 2, out);
            }
            if !else_.is_empty() {
                let _ = writeln!(out, "{pad}else :");
                for s in else_ {
                    print_stmt(s, indent + 2, out);
                }
            }
        }
        Stmt::Cover {
            name,
            clock,
            pred,
            enable,
            info,
        } => {
            let _ = writeln!(
                out,
                "{pad}cover({}, {}, {}) : {name}{info}",
                print_expr(clock),
                print_expr(pred),
                print_expr(enable)
            );
        }
        Stmt::CoverValues {
            name,
            clock,
            signal,
            enable,
            info,
        } => {
            let _ = writeln!(
                out,
                "{pad}cover_values({}, {}, {}) : {name}{info}",
                print_expr(clock),
                print_expr(signal),
                print_expr(enable)
            );
        }
        Stmt::Skip => {
            let _ = writeln!(out, "{pad}skip");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
; @enumdef S A=0,B=1
; @enumreg T.state S
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input io : { flip ready : UInt<1>, valid : UInt<1> }
    output o : UInt<8>
    reg state : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    node t = and(io.valid, io.ready)
    when t :
      o <= UInt<8>(1)
    else :
      o <= UInt<8>(2)
    cover(clock, t, UInt<1>(1)) : fire
"#;

    #[test]
    fn roundtrip() {
        let c1 = parse(SRC).unwrap();
        let text = print_circuit(&c1);
        let c2 = parse(&text).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn roundtrip_twice_is_stable() {
        let c1 = parse(SRC).unwrap();
        let t1 = print_circuit(&c1);
        let t2 = print_circuit(&parse(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn prints_literals_as_hex() {
        assert_eq!(print_expr(&Expr::u(255, 8)), "UInt<8>(\"hff\")");
    }
}

//! Structural Verilog emission from low-form circuits.
//!
//! This is the backend interface the paper uses for Verilator and
//! SymbiYosys: the circuit is lowered to the synthesizable Verilog subset,
//! and every `cover` statement becomes an *immediate* SystemVerilog cover
//! inside a clocked process (the only form Yosys supports, per §3.2).
//!
//! No tool in this repository consumes the emitted Verilog — our simulators
//! execute the IR directly — but tests assert its structure so the emission
//! path stays faithful.

use crate::ir::*;
use crate::printer::print_expr;
use std::fmt::Write;

/// Emit structural Verilog for a lowered circuit (ground types, no whens).
///
/// # Panics
///
/// Panics if the circuit still contains aggregate types or `when` blocks;
/// run [`crate::passes::lower`] first.
pub fn emit_verilog(circuit: &Circuit) -> String {
    let mut out = String::new();
    for module in &circuit.modules {
        emit_module(module, &mut out);
    }
    out
}

fn width_decl(ty: &Type) -> String {
    let w = ty.width().expect("lowered circuits have known widths");
    if w == 1 {
        String::new()
    } else {
        format!("[{}:0] ", w - 1)
    }
}

fn emit_module(module: &Module, out: &mut String) {
    let _ = writeln!(out, "module {}(", module.name);
    let port_lines: Vec<String> = module
        .ports
        .iter()
        .map(|p| {
            let dir = match p.dir {
                Direction::Input => "input ",
                Direction::Output => "output",
            };
            format!("  {dir} {}{}", width_decl(&p.ty), p.name)
        })
        .collect();
    let _ = writeln!(out, "{}", port_lines.join(",\n"));
    let _ = writeln!(out, ");");

    // (name, next, Option<(reset, init)>)
    type RegSlot = (String, Expr, Option<(Expr, Expr)>);
    let mut regs: Vec<RegSlot> = Vec::new();
    let mut covers: Vec<(String, Expr, Expr, Expr)> = Vec::new();

    for s in &module.body {
        match s {
            Stmt::Wire { name, ty, .. } => {
                let _ = writeln!(out, "  wire {}{name};", width_decl(ty));
            }
            Stmt::Node { name, value, .. } => {
                let _ = writeln!(out, "  wire {name} = {};", emit_expr(value));
            }
            Stmt::Reg {
                name,
                ty,
                clock,
                reset,
                ..
            } => {
                let _ = writeln!(out, "  reg {}{name};", width_decl(ty));
                regs.push((name.clone(), clock.clone(), reset.clone()));
            }
            Stmt::Connect { loc, value, .. } => {
                let sink = loc
                    .flat_name()
                    .expect("lowered connect sinks are references");
                let is_reg = regs.iter().any(|(r, _, _)| r == &sink);
                if !is_reg {
                    let _ = writeln!(out, "  assign {} = {};", emit_lhs(loc), emit_expr(value));
                }
            }
            Stmt::Inst { name, module, .. } => {
                let _ = writeln!(out, "  {module} {name}(/* connected via assigns */);");
            }
            Stmt::Mem(mem) => {
                let _ = writeln!(
                    out,
                    "  reg {}{} [0:{}];",
                    width_decl(&mem.data_ty),
                    mem.name,
                    mem.depth - 1
                );
            }
            Stmt::Cover {
                name,
                clock,
                pred,
                enable,
                ..
            } => {
                covers.push((name.clone(), clock.clone(), pred.clone(), enable.clone()));
            }
            Stmt::CoverValues { .. } | Stmt::Invalid { .. } | Stmt::Skip => {}
            Stmt::When { .. } => panic!("emit_verilog requires when-expanded circuits"),
        }
    }

    // register updates
    for (name, clock, reset) in &regs {
        let next = module.body.iter().find_map(|s| match s {
            Stmt::Connect { loc, value, .. } if loc.flat_name().as_deref() == Some(name) => {
                Some(value.clone())
            }
            _ => None,
        });
        let _ = writeln!(out, "  always @(posedge {}) begin", emit_expr(clock));
        match (reset, next) {
            (Some((rst, init)), Some(next)) => {
                let _ = writeln!(
                    out,
                    "    if ({}) {name} <= {};",
                    emit_expr(rst),
                    emit_expr(init)
                );
                let _ = writeln!(out, "    else {name} <= {};", emit_expr(&next));
            }
            (Some((rst, init)), None) => {
                let _ = writeln!(
                    out,
                    "    if ({}) {name} <= {};",
                    emit_expr(rst),
                    emit_expr(init)
                );
            }
            (None, Some(next)) => {
                let _ = writeln!(out, "    {name} <= {};", emit_expr(&next));
            }
            (None, None) => {}
        }
        let _ = writeln!(out, "  end");
    }

    // covers as immediate assertions (Yosys-compatible form, §3.2)
    for (name, clock, pred, enable) in &covers {
        let _ = writeln!(out, "  always @(posedge {}) begin", emit_expr(clock));
        let _ = writeln!(out, "    if ({}) begin", emit_expr(enable));
        let _ = writeln!(out, "      {name}: cover ({});", emit_expr(pred));
        let _ = writeln!(out, "    end");
        let _ = writeln!(out, "  end");
    }

    let _ = writeln!(out, "endmodule");
    let _ = writeln!(out);
}

fn emit_lhs(e: &Expr) -> String {
    e.flat_name().expect("lowered sinks are reference chains")
}

fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Ref(n) => n.clone(),
        Expr::SubField(..) | Expr::SubIndex(..) => {
            e.flat_name().expect("lowered references are static chains")
        }
        Expr::UIntLit(v) => format!("{}'h{:x}", v.width(), v),
        Expr::SIntLit(v) => format!("{}'sh{:x}", v.width(), v),
        Expr::Mux(c, t, f) => {
            format!("({} ? {} : {})", emit_expr(c), emit_expr(t), emit_expr(f))
        }
        Expr::ValidIf(_, v) => emit_expr(v),
        Expr::Prim { op, args, consts } => emit_prim(*op, args, consts),
    }
}

fn emit_prim(op: PrimOp, args: &[Expr], consts: &[u64]) -> String {
    let a = || emit_expr(&args[0]);
    let b = || emit_expr(&args[1]);
    match op {
        PrimOp::Add => format!("({} + {})", a(), b()),
        PrimOp::Sub => format!("({} - {})", a(), b()),
        PrimOp::Mul => format!("({} * {})", a(), b()),
        PrimOp::Div => format!("({} / {})", a(), b()),
        PrimOp::Rem => format!("({} % {})", a(), b()),
        PrimOp::Lt => format!("({} < {})", a(), b()),
        PrimOp::Leq => format!("({} <= {})", a(), b()),
        PrimOp::Gt => format!("({} > {})", a(), b()),
        PrimOp::Geq => format!("({} >= {})", a(), b()),
        PrimOp::Eq => format!("({} == {})", a(), b()),
        PrimOp::Neq => format!("({} != {})", a(), b()),
        PrimOp::And => format!("({} & {})", a(), b()),
        PrimOp::Or => format!("({} | {})", a(), b()),
        PrimOp::Xor => format!("({} ^ {})", a(), b()),
        PrimOp::Not => format!("(~{})", a()),
        PrimOp::Neg => format!("(-{})", a()),
        PrimOp::Andr => format!("(&{})", a()),
        PrimOp::Orr => format!("(|{})", a()),
        PrimOp::Xorr => format!("(^{})", a()),
        PrimOp::Pad => a(),
        PrimOp::Shl => format!("({} << {})", a(), consts[0]),
        PrimOp::Shr => format!("({} >> {})", a(), consts[0]),
        PrimOp::Dshl => format!("({} << {})", a(), b()),
        PrimOp::Dshr => format!("({} >> {})", a(), b()),
        PrimOp::Cat => format!("{{{}, {}}}", a(), b()),
        PrimOp::Bits => format!("{}[{}:{}]", a(), consts[0], consts[1]),
        PrimOp::Head | PrimOp::Tail => {
            // emitted as a comment-annotated slice; exact widths are in the IR
            format!("/* {} */ {}", op.name(), a())
        }
        PrimOp::AsUInt | PrimOp::AsSInt | PrimOp::AsClock | PrimOp::Cvt => a(),
    }
}

/// Emit the FIRRTL-side description of a cover for debugging reports.
pub fn describe_cover(name: &str, pred: &Expr, enable: &Expr) -> String {
    format!(
        "cover {name}: pred={} enable={}",
        print_expr(pred),
        print_expr(enable)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::passes;

    #[test]
    fn emits_cover_as_immediate_assertion() {
        let c = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : fire
",
            )
            .unwrap(),
        )
        .unwrap();
        let v = emit_verilog(&c);
        assert!(v.contains("fire: cover (a);"), "{v}");
        assert!(v.contains("always @(posedge clock)"), "{v}");
    }

    #[test]
    fn emits_register_with_reset() {
        let c = passes::lower(
            parse(
                "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input x : UInt<4>
    output o : UInt<4>
    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    r <= x
    o <= r
",
            )
            .unwrap(),
        )
        .unwrap();
        let v = emit_verilog(&c);
        assert!(v.contains("reg [3:0] r;"), "{v}");
        assert!(v.contains("if (reset) r <= 4'h0;"), "{v}");
        assert!(v.contains("else r <= x;"), "{v}");
        assert!(v.contains("assign o = r;"), "{v}");
    }

    #[test]
    fn branch_becomes_conditional_assign() {
        // Figure 3 of the paper: a when lowers to a ternary assign.
        let c = passes::lower(
            parse(
                "
circuit T :
  module T :
    input in : UInt<1>
    output out : UInt<2>
    when in :
      out <= UInt<2>(1)
    else :
      out <= UInt<2>(2)
",
            )
            .unwrap(),
        )
        .unwrap();
        let v = emit_verilog(&c);
        assert!(v.contains('?'), "conditional assignment expected: {v}");
        assert!(!v.contains("if (in)"), "no behavioral branch expected: {v}");
    }
}

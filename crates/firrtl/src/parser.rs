//! Parser for the textual `.fir` format of our FIRRTL subset.
//!
//! The grammar is line-oriented with Python-style indentation for blocks,
//! matching the upstream FIRRTL spec for the constructs we support. Two
//! small deviations, both documented in DESIGN.md:
//!
//! * memories use a compact one-line form:
//!   `mem m : UInt<8>[256], readers(r), writers(w)`
//! * annotations are given as comment directives:
//!   `; @enumdef S A=0,B=1,C=2`, `; @enumreg Mod.reg S`,
//!   `; @decoupled Mod.port`
//!
//! Covers use the standard verification-statement form:
//! `cover(clock, pred, enable) : name`.

use crate::bv::Bv;
use crate::ir::*;
use std::fmt;
use std::sync::Arc;

/// Parse error with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on (1-based, 0 when unknown).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete circuit from `.fir` text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem found.
///
/// ```
/// let src = "
/// circuit Top :
///   module Top :
///     input clock : Clock
///     input a : UInt<4>
///     output b : UInt<4>
///     b <= a
/// ";
/// let circuit = rtlcov_firrtl::parser::parse(src).unwrap();
/// assert_eq!(circuit.top, "Top");
/// ```
pub fn parse(src: &str) -> Result<Circuit, ParseError> {
    let lines = lex_lines(src)?;
    let mut p = Parser { lines, pos: 0 };
    p.parse_circuit()
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(u64),
    NegInt(i64),
    Str(String),
    Punct(char),
    Arrow,  // =>
    ConnOp, // <=
}

#[derive(Debug)]
struct Line {
    indent: usize,
    toks: Vec<Tok>,
    info: Info,
    lineno: u32,
    directive: Option<String>,
}

fn lex_lines(src: &str) -> Result<Vec<Line>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        let text = raw.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(';') {
            let rest = rest.trim();
            if let Some(d) = rest.strip_prefix('@') {
                out.push(Line {
                    indent,
                    toks: Vec::new(),
                    info: Info::none(),
                    lineno,
                    directive: Some(d.to_string()),
                });
            }
            continue;
        }
        // Split off a trailing source locator.
        let (body, info) = match text.rfind("@[") {
            Some(at) if text.ends_with(']') => {
                let loc = &text[at + 2..text.len() - 1];
                (text[..at].trim_end(), parse_info(loc))
            }
            _ => (text, Info::none()),
        };
        let toks = lex_tokens(body, lineno)?;
        if toks.is_empty() {
            continue;
        }
        out.push(Line {
            indent,
            toks,
            info,
            lineno,
            directive: None,
        });
    }
    Ok(out)
}

fn parse_info(loc: &str) -> Info {
    // format: "file line:col", file may contain spaces only before last token
    if let Some(space) = loc.rfind(' ') {
        let file = &loc[..space];
        let lc = &loc[space + 1..];
        let mut parts = lc.splitn(2, ':');
        let line = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let col = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        Info {
            file: Some(Arc::from(file)),
            line,
            col,
        }
    } else {
        Info::none()
    }
}

fn lex_tokens(s: &str, lineno: u32) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v = text.parse().map_err(|_| ParseError {
                    line: lineno,
                    msg: format!("bad integer `{text}`"),
                })?;
                toks.push(Tok::Int(v));
            }
            '-' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if start == i {
                    return Err(ParseError {
                        line: lineno,
                        msg: "lone `-`".into(),
                    });
                }
                let text: String = bytes[start..i].iter().collect();
                let v: i64 = text.parse().map_err(|_| ParseError {
                    line: lineno,
                    msg: format!("bad integer `-{text}`"),
                })?;
                toks.push(Tok::NegInt(-v));
            }
            '"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != '"' {
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(ParseError {
                        line: lineno,
                        msg: "unterminated string".into(),
                    });
                }
                toks.push(Tok::Str(bytes[start..i].iter().collect()));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    toks.push(Tok::ConnOp);
                    i += 2;
                } else {
                    toks.push(Tok::Punct('<'));
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    toks.push(Tok::Punct('='));
                    i += 1;
                }
            }
            ':' | ',' | '(' | ')' | '{' | '}' | '[' | ']' | '>' | '.' => {
                toks.push(Tok::Punct(c));
                i += 1;
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

/// Cursor over the tokens of one line.
struct LineCur<'a> {
    toks: &'a [Tok],
    i: usize,
    lineno: u32,
}

impl<'a> LineCur<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.lineno,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next().cloned() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next().cloned() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        match self.next().cloned() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!("trailing tokens: {:?}", &self.toks[self.i..])))
        }
    }

    // ---- types ----

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut ty = self.parse_base_type()?;
        // vector postfix, possibly nested: T[4][2]
        while self.eat_punct('[') {
            let n = self.int()? as usize;
            self.expect_punct(']')?;
            ty = Type::Vector(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        if self.eat_punct('{') {
            let mut fields = Vec::new();
            loop {
                if self.eat_punct('}') {
                    break;
                }
                let mut flip = false;
                let mut name = self.ident()?;
                if name == "flip" {
                    flip = true;
                    name = self.ident()?;
                }
                self.expect_punct(':')?;
                let ty = self.parse_type()?;
                fields.push(Field { name, flip, ty });
                if !self.eat_punct(',') {
                    self.expect_punct('}')?;
                    break;
                }
            }
            return Ok(Type::Bundle(fields));
        }
        let name = self.ident()?;
        match name.as_str() {
            "Clock" => Ok(Type::Clock),
            "Reset" | "AsyncReset" => Ok(Type::Reset),
            "UInt" | "SInt" => {
                let width = if self.eat_punct('<') {
                    let w = self.int()? as u32;
                    self.expect_punct('>')?;
                    Some(w)
                } else {
                    None
                };
                Ok(if name == "UInt" {
                    Type::UInt(width)
                } else {
                    Type::SInt(width)
                })
            }
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct('.') {
                let field = match self.next().cloned() {
                    Some(Tok::Ident(s)) => s,
                    Some(Tok::Int(v)) => v.to_string(),
                    other => return Err(self.err(format!("expected field name, found {other:?}"))),
                };
                e = Expr::SubField(Box::new(e), field);
            } else if self.eat_punct('[') {
                let idx = self.int()? as usize;
                self.expect_punct(']')?;
                e = Expr::SubIndex(Box::new(e), idx);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = self.next().cloned();
        match tok {
            Some(Tok::Ident(name)) => match name.as_str() {
                "UInt" | "SInt" => self.parse_literal(&name),
                "mux" => {
                    self.expect_punct('(')?;
                    let c = self.parse_expr()?;
                    self.expect_punct(',')?;
                    let t = self.parse_expr()?;
                    self.expect_punct(',')?;
                    let f = self.parse_expr()?;
                    self.expect_punct(')')?;
                    Ok(Expr::mux(c, t, f))
                }
                "validif" => {
                    self.expect_punct('(')?;
                    let c = self.parse_expr()?;
                    self.expect_punct(',')?;
                    let v = self.parse_expr()?;
                    self.expect_punct(')')?;
                    Ok(Expr::ValidIf(Box::new(c), Box::new(v)))
                }
                _ => {
                    if let Some(op) = PrimOp::from_name(&name) {
                        if matches!(self.peek(), Some(Tok::Punct('('))) {
                            return self.parse_primop(op);
                        }
                    }
                    Ok(Expr::Ref(name))
                }
            },
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_literal(&mut self, kind: &str) -> Result<Expr, ParseError> {
        let width = if self.eat_punct('<') {
            let w = self.int()? as u32;
            self.expect_punct('>')?;
            Some(w)
        } else {
            None
        };
        self.expect_punct('(')?;
        let value = match self.next().cloned() {
            Some(Tok::Int(v)) => {
                let w = width.unwrap_or_else(|| 64 - v.leading_zeros()).max(1);
                Bv::from_u64(v, w)
            }
            Some(Tok::NegInt(v)) => {
                let w = width.unwrap_or(64).max(1);
                Bv::from_i64(v, w)
            }
            Some(Tok::Str(s)) => {
                let w = width.unwrap_or(64).max(1);
                Bv::from_radix_str(&s, w)
                    .ok_or_else(|| self.err(format!("bad literal body `{s}`")))?
            }
            other => return Err(self.err(format!("expected literal value, found {other:?}"))),
        };
        self.expect_punct(')')?;
        Ok(if kind == "UInt" {
            Expr::UIntLit(value)
        } else {
            Expr::SIntLit(value)
        })
    }

    fn parse_primop(&mut self, op: PrimOp) -> Result<Expr, ParseError> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        let mut consts = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Int(v)) if args.len() >= op.arity() => {
                    consts.push(*v);
                    self.i += 1;
                }
                Some(Tok::Punct(')')) => break,
                _ => args.push(self.parse_expr()?),
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        if args.len() != op.arity() || consts.len() != op.const_arity() {
            return Err(self.err(format!(
                "`{}` expects {} args and {} consts, found {} and {}",
                op.name(),
                op.arity(),
                op.const_arity(),
                args.len(),
                consts.len()
            )));
        }
        Ok(Expr::Prim { op, args, consts })
    }
}

impl Parser {
    fn peek_line(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn parse_circuit(&mut self) -> Result<Circuit, ParseError> {
        let mut annotations = Vec::new();
        // leading directives
        while let Some(line) = self.peek_line() {
            if let Some(d) = &line.directive {
                let d = d.clone();
                let lineno = line.lineno;
                self.pos += 1;
                annotations.push(parse_directive(&d, lineno)?);
            } else {
                break;
            }
        }
        let header = self.lines.get(self.pos).ok_or(ParseError {
            line: 0,
            msg: "empty input".into(),
        })?;
        let lineno = header.lineno;
        let mut cur = LineCur {
            toks: &header.toks,
            i: 0,
            lineno,
        };
        let kw = cur.ident()?;
        if kw != "circuit" {
            return Err(cur.err("expected `circuit`"));
        }
        let top = cur.ident()?;
        cur.expect_punct(':')?;
        cur.expect_end()?;
        let circuit_indent = header.indent;
        self.pos += 1;

        let mut modules = Vec::new();
        while let Some(line) = self.peek_line() {
            if line.indent <= circuit_indent && line.directive.is_none() {
                break;
            }
            if let Some(d) = &line.directive {
                let d = d.clone();
                let lineno = line.lineno;
                self.pos += 1;
                annotations.push(parse_directive(&d, lineno)?);
                continue;
            }
            modules.push(self.parse_module()?);
        }
        if !modules.iter().any(|m| m.name == top) {
            return Err(ParseError {
                line: lineno,
                msg: format!("top module `{top}` not defined"),
            });
        }
        Ok(Circuit {
            top,
            modules,
            annotations,
        })
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let header = &self.lines[self.pos];
        let lineno = header.lineno;
        let indent = header.indent;
        let info = header.info.clone();
        let mut cur = LineCur {
            toks: &header.toks,
            i: 0,
            lineno,
        };
        let kw = cur.ident()?;
        if kw != "module" {
            return Err(cur.err(format!("expected `module`, found `{kw}`")));
        }
        let name = cur.ident()?;
        cur.expect_punct(':')?;
        cur.expect_end()?;
        self.pos += 1;

        let mut ports = Vec::new();
        // ports: consecutive input/output lines at deeper indent
        while let Some(line) = self.peek_line() {
            if line.indent <= indent || line.directive.is_some() {
                break;
            }
            let first = match line.toks.first() {
                Some(Tok::Ident(s)) => s.clone(),
                _ => break,
            };
            if first != "input" && first != "output" {
                break;
            }
            let mut cur = LineCur {
                toks: &line.toks,
                i: 0,
                lineno: line.lineno,
            };
            let dir_kw = cur.ident()?;
            let pname = cur.ident()?;
            cur.expect_punct(':')?;
            let ty = cur.parse_type()?;
            cur.expect_end()?;
            ports.push(Port {
                name: pname,
                dir: if dir_kw == "input" {
                    Direction::Input
                } else {
                    Direction::Output
                },
                ty,
                info: line.info.clone(),
            });
            self.pos += 1;
        }

        let body = self.parse_block(indent)?;
        Ok(Module {
            name,
            ports,
            body,
            info,
        })
    }

    /// Parse statements strictly deeper than `parent_indent`.
    fn parse_block(&mut self, parent_indent: usize) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        let block_indent = match self.peek_line() {
            Some(l) if l.indent > parent_indent => l.indent,
            _ => return Ok(stmts),
        };
        while let Some(line) = self.peek_line() {
            if line.directive.is_some() {
                self.pos += 1;
                continue;
            }
            if line.indent < block_indent {
                break;
            }
            if line.indent > block_indent {
                return Err(ParseError {
                    line: line.lineno,
                    msg: "unexpected indentation".into(),
                });
            }
            // `module` at this level would be a structural error caught above
            if matches!(line.toks.first(), Some(Tok::Ident(s)) if s == "module") {
                break;
            }
            // an `else` at this level belongs to the enclosing `when`
            if matches!(line.toks.first(), Some(Tok::Ident(s)) if s == "else") {
                break;
            }
            let stmt = self.parse_stmt(block_indent)?;
            stmts.push(stmt);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self, indent: usize) -> Result<Stmt, ParseError> {
        let line_idx = self.pos;
        let lineno = self.lines[line_idx].lineno;
        let info = self.lines[line_idx].info.clone();
        let toks = std::mem::take(&mut self.lines[line_idx].toks);
        let mut cur = LineCur {
            toks: &toks,
            i: 0,
            lineno,
        };
        self.pos += 1;

        let first = match cur.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            _ => String::new(),
        };
        // A statement keyword followed by `.`/`[`/`<=` is actually a
        // reference to a component that happens to share the keyword's name
        // (e.g. a wire called `mem`): treat it as a connect/invalidate.
        let first = match cur.toks.get(1) {
            Some(Tok::Punct('.')) | Some(Tok::Punct('[')) | Some(Tok::ConnOp) => String::new(),
            _ => first,
        };
        let stmt = match first.as_str() {
            "wire" => {
                cur.i += 1;
                let name = cur.ident()?;
                cur.expect_punct(':')?;
                let ty = cur.parse_type()?;
                cur.expect_end()?;
                Stmt::Wire { name, ty, info }
            }
            "reg" => {
                cur.i += 1;
                let name = cur.ident()?;
                cur.expect_punct(':')?;
                let ty = cur.parse_type()?;
                cur.expect_punct(',')?;
                let clock = cur.parse_expr()?;
                let reset = if matches!(cur.peek(), Some(Tok::Ident(s)) if s == "with") {
                    cur.i += 1;
                    cur.expect_punct(':')?;
                    cur.expect_punct('(')?;
                    let kw = cur.ident()?;
                    if kw != "reset" {
                        return Err(cur.err("expected `reset` in reg with-clause"));
                    }
                    match cur.next().cloned() {
                        Some(Tok::Arrow) => {}
                        other => return Err(cur.err(format!("expected `=>`, found {other:?}"))),
                    }
                    cur.expect_punct('(')?;
                    let rst = cur.parse_expr()?;
                    cur.expect_punct(',')?;
                    let init = cur.parse_expr()?;
                    cur.expect_punct(')')?;
                    cur.expect_punct(')')?;
                    Some((rst, init))
                } else {
                    None
                };
                cur.expect_end()?;
                Stmt::Reg {
                    name,
                    ty,
                    clock,
                    reset,
                    info,
                }
            }
            "node" => {
                cur.i += 1;
                let name = cur.ident()?;
                cur.expect_punct('=')?;
                let value = cur.parse_expr()?;
                cur.expect_end()?;
                Stmt::Node { name, value, info }
            }
            "inst" => {
                cur.i += 1;
                let name = cur.ident()?;
                let of = cur.ident()?;
                if of != "of" {
                    return Err(cur.err("expected `of`"));
                }
                let module = cur.ident()?;
                cur.expect_end()?;
                Stmt::Inst { name, module, info }
            }
            "mem" => {
                cur.i += 1;
                let name = cur.ident()?;
                cur.expect_punct(':')?;
                let data_ty = cur.parse_base_type()?;
                cur.expect_punct('[')?;
                let depth = cur.int()? as usize;
                cur.expect_punct(']')?;
                let mut readers = Vec::new();
                let mut writers = Vec::new();
                while cur.eat_punct(',') {
                    let kind = cur.ident()?;
                    cur.expect_punct('(')?;
                    loop {
                        let port = cur.ident()?;
                        match kind.as_str() {
                            "readers" => readers.push(port),
                            "writers" => writers.push(port),
                            other => return Err(cur.err(format!("unknown mem clause `{other}`"))),
                        }
                        if !cur.eat_punct(',') {
                            break;
                        }
                    }
                    cur.expect_punct(')')?;
                }
                cur.expect_end()?;
                Stmt::Mem(Mem {
                    name,
                    data_ty,
                    depth,
                    readers,
                    writers,
                    info,
                })
            }
            "when" => {
                cur.i += 1;
                let cond = cur.parse_expr()?;
                cur.expect_punct(':')?;
                cur.expect_end()?;
                let then = self.parse_block(indent)?;
                let else_ = self.parse_else(indent)?;
                Stmt::When {
                    cond,
                    then,
                    else_,
                    info,
                }
            }
            "cover" | "cover_values" => {
                cur.i += 1;
                cur.expect_punct('(')?;
                let clock = cur.parse_expr()?;
                cur.expect_punct(',')?;
                let mid = cur.parse_expr()?;
                cur.expect_punct(',')?;
                let enable = cur.parse_expr()?;
                cur.expect_punct(')')?;
                cur.expect_punct(':')?;
                let name = cur.ident()?;
                cur.expect_end()?;
                if first == "cover" {
                    Stmt::Cover {
                        name,
                        clock,
                        pred: mid,
                        enable,
                        info,
                    }
                } else {
                    Stmt::CoverValues {
                        name,
                        clock,
                        signal: mid,
                        enable,
                        info,
                    }
                }
            }
            "skip" => {
                cur.i += 1;
                cur.expect_end()?;
                Stmt::Skip
            }
            _ => {
                // connect or invalidate
                let loc = cur.parse_expr()?;
                match cur.next().cloned() {
                    Some(Tok::ConnOp) => {
                        let value = cur.parse_expr()?;
                        cur.expect_end()?;
                        Stmt::Connect { loc, value, info }
                    }
                    Some(Tok::Ident(kw)) if kw == "is" => {
                        let inv = cur.ident()?;
                        if inv != "invalid" {
                            return Err(cur.err("expected `invalid`"));
                        }
                        cur.expect_end()?;
                        Stmt::Invalid { loc, info }
                    }
                    other => {
                        return Err(
                            cur.err(format!("expected `<=` or `is invalid`, found {other:?}"))
                        )
                    }
                }
            }
        };
        Ok(stmt)
    }

    fn parse_else(&mut self, indent: usize) -> Result<Vec<Stmt>, ParseError> {
        let (is_else, lineno) = match self.peek_line() {
            Some(l)
                if l.indent == indent
                    && matches!(l.toks.first(), Some(Tok::Ident(s)) if s == "else") =>
            {
                (true, l.lineno)
            }
            _ => return Ok(Vec::new()),
        };
        debug_assert!(is_else);
        let line_idx = self.pos;
        let info = self.lines[line_idx].info.clone();
        let toks = std::mem::take(&mut self.lines[line_idx].toks);
        let mut cur = LineCur {
            toks: &toks,
            i: 1,
            lineno,
        };
        self.pos += 1;
        if matches!(cur.peek(), Some(Tok::Ident(s)) if s == "when") {
            // `else when c :` desugars to else { when c : ... }
            cur.i += 1;
            let cond = cur.parse_expr()?;
            cur.expect_punct(':')?;
            cur.expect_end()?;
            let then = self.parse_block(indent)?;
            let else_ = self.parse_else(indent)?;
            Ok(vec![Stmt::When {
                cond,
                then,
                else_,
                info,
            }])
        } else {
            cur.expect_punct(':')?;
            cur.expect_end()?;
            self.parse_block(indent)
        }
    }
}

fn parse_directive(d: &str, lineno: u32) -> Result<Annotation, ParseError> {
    let mut parts = d.split_whitespace();
    let kind = parts.next().unwrap_or("");
    let err = |msg: &str| ParseError {
        line: lineno,
        msg: msg.into(),
    };
    match kind {
        "enumdef" => {
            let name = parts
                .next()
                .ok_or_else(|| err("enumdef needs a name"))?
                .to_string();
            let rest: String = parts.collect::<Vec<_>>().join("");
            let mut variants = Vec::new();
            for pair in rest.split(',').filter(|s| !s.is_empty()) {
                let mut kv = pair.splitn(2, '=');
                let vname = kv.next().unwrap_or("").to_string();
                let value = kv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("enumdef variant needs `name=value`"))?;
                variants.push((vname, value));
            }
            if variants.is_empty() {
                return Err(err("enumdef needs at least one variant"));
            }
            Ok(Annotation::EnumDef(EnumDef { name, variants }))
        }
        "enumreg" => {
            let target = parts
                .next()
                .ok_or_else(|| err("enumreg needs Module.reg"))?;
            let enum_name = parts
                .next()
                .ok_or_else(|| err("enumreg needs an enum name"))?;
            let mut mr = target.splitn(2, '.');
            let module = mr.next().unwrap_or("").to_string();
            let reg = mr
                .next()
                .ok_or_else(|| err("enumreg target must be Module.reg"))?
                .to_string();
            Ok(Annotation::EnumReg {
                module,
                reg,
                enum_name: enum_name.to_string(),
            })
        }
        "decoupled" => {
            let target = parts
                .next()
                .ok_or_else(|| err("decoupled needs Module.port"))?;
            let mut mp = target.splitn(2, '.');
            let module = mp.next().unwrap_or("").to_string();
            let port = mp
                .next()
                .ok_or_else(|| err("decoupled target must be Module.port"))?
                .to_string();
            Ok(Annotation::Decoupled { module, port })
        }
        other => Err(err(&format!("unknown directive `@{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GCD: &str = r#"
circuit GCD :
  module GCD :
    input clock : Clock
    input reset : UInt<1>
    input io_a : UInt<16>
    input io_b : UInt<16>
    input io_load : UInt<1>
    output io_out : UInt<16>
    output io_done : UInt<1>
    reg x : UInt<16>, clock @[gcd.scala 12:5]
    reg y : UInt<16>, clock with : (reset => (reset, UInt<16>(0))) @[gcd.scala 13:5]
    node gt = gt(x, y) @[gcd.scala 15:10]
    when io_load : @[gcd.scala 16:3]
      x <= io_a
      y <= io_b
    else :
      when gt : @[gcd.scala 20:5]
        x <= sub(x, y) @[gcd.scala 21:7]
      else :
        y <= sub(y, x) @[gcd.scala 23:7]
    io_out <= x
    io_done <= eq(y, UInt<16>(0))
"#;

    #[test]
    fn parses_gcd() {
        let c = parse(GCD).unwrap();
        assert_eq!(c.top, "GCD");
        let m = c.top_module();
        assert_eq!(m.ports.len(), 7);
        assert_eq!(m.body.len(), 6);
        match &m.body[3] {
            Stmt::When {
                cond, then, else_, ..
            } => {
                assert_eq!(cond, &Expr::r("io_load"));
                assert_eq!(then.len(), 2);
                assert_eq!(else_.len(), 1);
                assert!(matches!(&else_[0], Stmt::When { .. }));
            }
            other => panic!("expected when, found {other:?}"),
        }
        // reg with reset
        match &m.body[1] {
            Stmt::Reg {
                reset: Some((rst, init)),
                ..
            } => {
                assert_eq!(rst, &Expr::r("reset"));
                assert_eq!(init, &Expr::u(0, 16));
            }
            other => panic!("expected reg with reset, found {other:?}"),
        }
        assert_eq!(m.body[2].info().line, 15);
        assert_eq!(m.body[2].info().file.as_deref(), Some("gcd.scala"));
    }

    #[test]
    fn parses_cover() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    input a : UInt<1>
    cover(clock, a, UInt<1>(1)) : my_cover
";
        let c = parse(src).unwrap();
        match &c.top_module().body[0] {
            Stmt::Cover { name, pred, .. } => {
                assert_eq!(name, "my_cover");
                assert_eq!(pred, &Expr::r("a"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_bundles_and_vectors() {
        let src = "
circuit T :
  module T :
    input io : { flip ready : UInt<1>, valid : UInt<1>, bits : UInt<8> }
    input v : UInt<4>[3]
    output o : UInt<8>
    o <= io.bits
    o <= v[2]
";
        let c = parse(src).unwrap();
        let m = c.top_module();
        match &m.ports[0].ty {
            Type::Bundle(fields) => {
                assert_eq!(fields.len(), 3);
                assert!(fields[0].flip);
                assert_eq!(fields[2].ty, Type::uint(8));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.ports[1].ty, Type::Vector(Box::new(Type::uint(4)), 3));
        match &m.body[1] {
            Stmt::Connect { value, .. } => {
                assert_eq!(value, &Expr::SubIndex(Box::new(Expr::r("v")), 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_mem() {
        let src = "
circuit T :
  module T :
    input clock : Clock
    mem m : UInt<8>[256], readers(r), writers(w)
    m.r.addr <= UInt<8>(3)
";
        let c = parse(src).unwrap();
        match &c.top_module().body[0] {
            Stmt::Mem(mem) => {
                assert_eq!(mem.depth, 256);
                assert_eq!(mem.readers, vec!["r"]);
                assert_eq!(mem.writers, vec!["w"]);
                assert_eq!(mem.data_ty, Type::uint(8));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_directives() {
        let src = "
; @enumdef S A=0,B=1,C=2
; @enumreg Ctrl.state S
; @decoupled Ctrl.io_in
circuit Ctrl :
  module Ctrl :
    input clock : Clock
    skip
";
        let c = parse(src).unwrap();
        assert_eq!(c.annotations.len(), 3);
        match &c.annotations[0] {
            Annotation::EnumDef(def) => {
                assert_eq!(def.name, "S");
                assert_eq!(def.variants.len(), 3);
                assert_eq!(def.variants[1], ("B".to_string(), 1));
            }
            other => panic!("{other:?}"),
        }
        match &c.annotations[1] {
            Annotation::EnumReg {
                module,
                reg,
                enum_name,
            } => {
                assert_eq!(module, "Ctrl");
                assert_eq!(reg, "state");
                assert_eq!(enum_name, "S");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_else_when_chain() {
        let src = "
circuit T :
  module T :
    input a : UInt<1>
    input b : UInt<1>
    output o : UInt<2>
    o <= UInt<2>(0)
    when a :
      o <= UInt<2>(1)
    else when b :
      o <= UInt<2>(2)
    else :
      o <= UInt<2>(3)
";
        let c = parse(src).unwrap();
        match &c.top_module().body[1] {
            Stmt::When { else_, .. } => match &else_[0] {
                Stmt::When { then, else_, .. } => {
                    assert_eq!(then.len(), 1);
                    assert_eq!(else_.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_hex_literals() {
        let src = "
circuit T :
  module T :
    output o : UInt<8>
    o <= UInt<8>(\"hff\")
";
        let c = parse(src).unwrap();
        match &c.top_module().body[0] {
            Stmt::Connect { value, .. } => assert_eq!(value, &Expr::u(0xff, 8)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_signed_literal() {
        let src = "
circuit T :
  module T :
    output o : SInt<4>
    o <= SInt<4>(-3)
";
        let c = parse(src).unwrap();
        match &c.top_module().body[0] {
            Stmt::Connect { value, .. } => {
                assert_eq!(value, &Expr::SIntLit(Bv::from_i64(-3, 4)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_unknown_module() {
        let src = "
circuit Missing :
  module Other :
    skip
";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_on_bad_token() {
        assert!(parse("circuit T ^^\n").is_err());
    }

    #[test]
    fn error_reports_line() {
        let src = "
circuit T :
  module T :
    node x = bogus_stmt_kind <=
";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn multi_module() {
        let src = "
circuit Top :
  module Child :
    input clock : Clock
    input in : UInt<4>
    output out : UInt<4>
    out <= in
  module Top :
    input clock : Clock
    input in : UInt<4>
    output out : UInt<4>
    inst c of Child
    c.clock <= clock
    c.in <= in
    out <= c.out
";
        let c = parse(src).unwrap();
        assert_eq!(c.modules.len(), 2);
        assert_eq!(c.top, "Top");
        match &c.top_module().body[0] {
            Stmt::Inst { name, module, .. } => {
                assert_eq!(name, "c");
                assert_eq!(module, "Child");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bits_primop_consts() {
        let src = "
circuit T :
  module T :
    input a : UInt<8>
    output o : UInt<4>
    o <= bits(a, 5, 2)
";
        let c = parse(src).unwrap();
        match &c.top_module().body[0] {
            Stmt::Connect { value, .. } => match value {
                Expr::Prim {
                    op: PrimOp::Bits,
                    consts,
                    ..
                } => assert_eq!(consts, &vec![5, 2]),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}

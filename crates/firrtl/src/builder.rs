//! A Chisel-like embedded DSL for constructing circuits in Rust.
//!
//! This is the front-end substitute for Chisel (see DESIGN.md): it produces
//! FIRRTL with source locators and annotations exactly like the Scala
//! front-end would, so the coverage passes see the same information. Each
//! statement receives an auto-incremented line in a virtual
//! `<module>.chisel` source file, giving line-coverage reports real
//! line-level structure.
//!
//! ```
//! use rtlcov_firrtl::builder::{CircuitBuilder, ModuleBuilder};
//! use rtlcov_firrtl::dsl::ExprExt;
//!
//! let mut m = ModuleBuilder::new("Counter");
//! let clock = m.clock();
//! let reset = m.reset();
//! let out = m.output("out", 8);
//! let count = m.reg_init("count", 8, rtlcov_firrtl::ir::Expr::u(0, 8));
//! m.connect(count.clone(), count.addw(&rtlcov_firrtl::ir::Expr::u(1, 8)));
//! m.connect(out, count);
//! let _ = (clock, reset);
//! let circuit = CircuitBuilder::new("Counter").add(m).build();
//! assert_eq!(circuit.top, "Counter");
//! ```

use crate::bv::Bv;
use crate::ir::*;
use std::sync::Arc;

/// Builds a [`Circuit`] out of module builders and annotations.
#[derive(Debug)]
pub struct CircuitBuilder {
    top: String,
    modules: Vec<Module>,
    annotations: Vec<Annotation>,
}

impl CircuitBuilder {
    /// Start a circuit whose top module is `top`.
    pub fn new(top: impl Into<String>) -> Self {
        CircuitBuilder {
            top: top.into(),
            modules: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Add a finished module builder.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, mb: ModuleBuilder) -> Self {
        let (module, annotations) = mb.finish();
        self.modules.push(module);
        self.annotations.extend(annotations);
        self
    }

    /// Declare an enum type for FSM coverage.
    pub fn enum_def(mut self, name: impl Into<String>, variants: &[(&str, u64)]) -> Self {
        self.annotations.push(Annotation::EnumDef(EnumDef {
            name: name.into(),
            variants: variants.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }));
        self
    }

    /// Finish the circuit without checking that the top module exists —
    /// for callers that splice in modules from other circuits afterwards.
    pub fn build_unchecked(self) -> Circuit {
        Circuit {
            top: self.top,
            modules: self.modules,
            annotations: self.annotations,
        }
    }

    /// Finish the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the top module was never added.
    pub fn build(self) -> Circuit {
        assert!(
            self.modules.iter().any(|m| m.name == self.top),
            "top module `{}` was not added",
            self.top
        );
        Circuit {
            top: self.top,
            modules: self.modules,
            annotations: self.annotations,
        }
    }
}

/// Builds one [`Module`] statement by statement, Chisel-style.
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    ports: Vec<Port>,
    /// Stack of statement scopes; `when` bodies push/pop.
    scopes: Vec<Vec<Stmt>>,
    file: Arc<str>,
    line: u32,
    tmp: usize,
    default_clock: Option<Expr>,
    default_reset: Option<Expr>,
    annotations: Vec<Annotation>,
}

impl ModuleBuilder {
    /// Start building module `name`.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let file: Arc<str> = Arc::from(format!("{name}.chisel").as_str());
        ModuleBuilder {
            name,
            ports: Vec::new(),
            scopes: vec![Vec::new()],
            file,
            line: 0,
            tmp: 0,
            default_clock: None,
            default_reset: None,
            annotations: Vec::new(),
        }
    }

    fn info(&mut self) -> Info {
        self.line += 1;
        Info {
            file: Some(self.file.clone()),
            line: self.line,
            col: 1,
        }
    }

    fn push(&mut self, s: Stmt) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push(s);
    }

    /// Add the conventional `clock` input and make it the default clock.
    pub fn clock(&mut self) -> Expr {
        let info = self.info();
        self.ports.push(Port {
            name: "clock".into(),
            dir: Direction::Input,
            ty: Type::Clock,
            info,
        });
        let e = Expr::r("clock");
        self.default_clock = Some(e.clone());
        e
    }

    /// Add the conventional `reset` input and make it the default reset.
    pub fn reset(&mut self) -> Expr {
        let info = self.info();
        self.ports.push(Port {
            name: "reset".into(),
            dir: Direction::Input,
            ty: Type::bool(),
            info,
        });
        let e = Expr::r("reset");
        self.default_reset = Some(e.clone());
        e
    }

    /// Add an unsigned input port.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> Expr {
        self.input_ty(name, Type::uint(width))
    }

    /// Add an input port of any type.
    pub fn input_ty(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        let info = self.info();
        self.ports.push(Port {
            name: name.clone(),
            dir: Direction::Input,
            ty,
            info,
        });
        Expr::r(name)
    }

    /// Add an unsigned output port.
    pub fn output(&mut self, name: impl Into<String>, width: u32) -> Expr {
        self.output_ty(name, Type::uint(width))
    }

    /// Add an output port of any type.
    pub fn output_ty(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        let info = self.info();
        self.ports.push(Port {
            name: name.clone(),
            dir: Direction::Output,
            ty,
            info,
        });
        Expr::r(name)
    }

    /// Declare a wire.
    pub fn wire(&mut self, name: impl Into<String>, width: u32) -> Expr {
        self.wire_ty(name, Type::uint(width))
    }

    /// Declare a wire of any type.
    pub fn wire_ty(&mut self, name: impl Into<String>, ty: Type) -> Expr {
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Wire {
            name: name.clone(),
            ty,
            info,
        });
        Expr::r(name)
    }

    /// Declare a register clocked by the default clock, without reset.
    ///
    /// # Panics
    ///
    /// Panics if [`ModuleBuilder::clock`] has not been called.
    pub fn reg(&mut self, name: impl Into<String>, width: u32) -> Expr {
        let clock = self
            .default_clock
            .clone()
            .expect("call clock() before reg()");
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Reg {
            name: name.clone(),
            ty: Type::uint(width),
            clock,
            reset: None,
            info,
        });
        Expr::r(name)
    }

    /// Declare a register with a synchronous reset to `init` (RegInit).
    ///
    /// # Panics
    ///
    /// Panics if `clock()`/`reset()` have not been called.
    pub fn reg_init(&mut self, name: impl Into<String>, width: u32, init: Expr) -> Expr {
        let clock = self
            .default_clock
            .clone()
            .expect("call clock() before reg_init()");
        let reset = self
            .default_reset
            .clone()
            .expect("call reset() before reg_init()");
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Reg {
            name: name.clone(),
            ty: Type::uint(width),
            clock,
            reset: Some((reset, init)),
            info,
        });
        Expr::r(name)
    }

    /// Declare an FSM state register of an already-declared enum; attaches
    /// the `EnumReg` annotation that FSM coverage consumes.
    pub fn reg_enum(
        &mut self,
        name: impl Into<String>,
        width: u32,
        init: Expr,
        enum_name: impl Into<String>,
    ) -> Expr {
        let name = name.into();
        let e = self.reg_init(name.clone(), width, init);
        self.annotations.push(Annotation::EnumReg {
            module: self.name.clone(),
            reg: name,
            enum_name: enum_name.into(),
        });
        e
    }

    /// Bind a named node (Chisel `val x = ...`).
    pub fn node(&mut self, name: impl Into<String>, value: Expr) -> Expr {
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Node {
            name: name.clone(),
            value,
            info,
        });
        Expr::r(name)
    }

    /// Bind an anonymous node with a generated `_T_<n>` name.
    pub fn n(&mut self, value: Expr) -> Expr {
        let name = format!("_T_{}", self.tmp);
        self.tmp += 1;
        self.node(name, value)
    }

    /// Connect `loc <= value`.
    pub fn connect(&mut self, loc: Expr, value: Expr) {
        let info = self.info();
        self.push(Stmt::Connect { loc, value, info });
    }

    /// Mark a sink invalid (reads zero).
    pub fn invalid(&mut self, loc: Expr) {
        let info = self.info();
        self.push(Stmt::Invalid { loc, info });
    }

    /// Instantiate `module` as instance `name`; returns the instance ref.
    pub fn inst(&mut self, name: impl Into<String>, module: impl Into<String>) -> Expr {
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Inst {
            name: name.clone(),
            module: module.into(),
            info,
        });
        Expr::r(name)
    }

    /// Declare a memory; access ports through `mem.field(reader).field("addr")`.
    pub fn mem(
        &mut self,
        name: impl Into<String>,
        data_width: u32,
        depth: usize,
        readers: &[&str],
        writers: &[&str],
    ) -> Expr {
        let name = name.into();
        let info = self.info();
        self.push(Stmt::Mem(Mem {
            name: name.clone(),
            data_ty: Type::uint(data_width),
            depth,
            readers: readers.iter().map(|s| s.to_string()).collect(),
            writers: writers.iter().map(|s| s.to_string()).collect(),
            info,
        }));
        Expr::r(name)
    }

    /// `when (cond) { body }`.
    pub fn when(&mut self, cond: Expr, body: impl FnOnce(&mut Self)) {
        let info = self.info();
        self.scopes.push(Vec::new());
        body(self);
        let then = self.scopes.pop().expect("scope pushed above");
        self.push(Stmt::When {
            cond,
            then,
            else_: Vec::new(),
            info,
        });
    }

    /// `when (cond) { then } .otherwise { else }`.
    pub fn when_else(
        &mut self,
        cond: Expr,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let info = self.info();
        self.scopes.push(Vec::new());
        then_body(self);
        let then = self.scopes.pop().expect("scope pushed above");
        self.scopes.push(Vec::new());
        else_body(self);
        let else_ = self.scopes.pop().expect("scope pushed above");
        self.push(Stmt::When {
            cond,
            then,
            else_,
            info,
        });
    }

    /// Chisel `switch`: one `when` chain comparing `scrutinee` to each
    /// literal case value.
    #[allow(clippy::type_complexity)]
    pub fn switch(&mut self, scrutinee: Expr, cases: Vec<(Expr, Box<dyn FnOnce(&mut Self) + '_>)>) {
        // Build nested when/else-when from the back.
        let mut stmts: Vec<Stmt> = Vec::new();
        for (value, body) in cases.into_iter().rev() {
            let info = self.info();
            self.scopes.push(Vec::new());
            body(self);
            let then = self.scopes.pop().expect("scope pushed above");
            let cond = Expr::eq(scrutinee.clone(), value);
            let else_ = std::mem::take(&mut stmts);
            stmts = vec![Stmt::When {
                cond,
                then,
                else_,
                info,
            }];
        }
        for s in stmts {
            self.push(s);
        }
    }

    /// Insert a cover statement on the default clock.
    ///
    /// # Panics
    ///
    /// Panics if `clock()` has not been called.
    pub fn cover(&mut self, name: impl Into<String>, pred: Expr) {
        let clock = self
            .default_clock
            .clone()
            .expect("call clock() before cover()");
        let info = self.info();
        self.push(Stmt::Cover {
            name: name.into(),
            clock,
            pred,
            enable: Expr::one(),
            info,
        });
    }

    /// Insert a cover-values statement (§6 extension) on the default clock.
    ///
    /// # Panics
    ///
    /// Panics if `clock()` has not been called.
    pub fn cover_values(&mut self, name: impl Into<String>, signal: Expr) {
        let clock = self
            .default_clock
            .clone()
            .expect("call clock() before cover_values()");
        let info = self.info();
        self.push(Stmt::CoverValues {
            name: name.into(),
            clock,
            signal,
            enable: Expr::one(),
            info,
        });
    }

    /// Literal helper.
    pub fn lit(&self, value: u64, width: u32) -> Expr {
        Expr::UIntLit(Bv::from_u64(value, width))
    }

    fn finish(mut self) -> (Module, Vec<Annotation>) {
        assert_eq!(self.scopes.len(), 1, "unbalanced when scopes");
        let body = self.scopes.pop().expect("checked above");
        (
            Module {
                name: self.name,
                ports: self.ports,
                body,
                info: Info::none(),
            },
            self.annotations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::ExprExt;
    use crate::passes;

    #[test]
    fn builds_counter() {
        let mut m = ModuleBuilder::new("Counter");
        m.clock();
        m.reset();
        let en = m.input("en", 1);
        let out = m.output("out", 8);
        let count = m.reg_init("count", 8, Expr::u(0, 8));
        m.when(en, |m| {
            m.connect(count.clone(), count.addw(&Expr::u(1, 8)));
        });
        m.connect(out, count.clone());
        let c = CircuitBuilder::new("Counter").add(m).build();
        assert!(passes::lower(c).is_ok());
    }

    #[test]
    fn builder_infos_are_sequential() {
        let mut m = ModuleBuilder::new("T");
        m.clock();
        let a = m.input("a", 4);
        let o = m.output("o", 4);
        m.connect(o, a);
        let (module, _) = m.finish();
        let lines: Vec<u32> = module.ports.iter().map(|p| p.info.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert_eq!(module.body[0].info().line, 4);
        assert_eq!(module.body[0].info().file.as_deref(), Some("T.chisel"));
    }

    #[test]
    fn switch_builds_when_chain() {
        let mut m = ModuleBuilder::new("T");
        m.clock();
        m.reset();
        let sel = m.input("sel", 2);
        let o = m.output("o", 4);
        m.connect(o.clone(), Expr::u(0, 4));
        let o2 = o.clone();
        let o3 = o.clone();
        m.switch(
            sel,
            vec![
                (
                    Expr::u(0, 2),
                    Box::new(move |m: &mut ModuleBuilder| m.connect(o2, Expr::u(1, 4))),
                ),
                (
                    Expr::u(1, 2),
                    Box::new(move |m: &mut ModuleBuilder| m.connect(o3, Expr::u(2, 4))),
                ),
            ],
        );
        let (module, _) = m.finish();
        // the switch produced exactly one top-level when with a nested else
        let whens: Vec<_> = module
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::When { .. }))
            .collect();
        assert_eq!(whens.len(), 1);
        match whens[0] {
            Stmt::When { else_, .. } => assert!(matches!(else_[0], Stmt::When { .. })),
            _ => unreachable!(),
        }
    }

    #[test]
    fn enum_reg_attaches_annotation() {
        let mut m = ModuleBuilder::new("Fsm");
        m.clock();
        m.reset();
        let state = m.reg_enum("state", 2, Expr::u(0, 2), "S");
        let o = m.output("o", 2);
        m.connect(o, state);
        let c = CircuitBuilder::new("Fsm")
            .enum_def("S", &[("A", 0), ("B", 1), ("C", 2)])
            .add(m)
            .build();
        assert!(c.enum_def("S").is_some());
        assert!(c
            .annotations
            .iter()
            .any(|a| matches!(a, Annotation::EnumReg { reg, .. } if reg == "state")));
    }

    #[test]
    #[should_panic(expected = "top module")]
    fn build_without_top_panics() {
        let _ = CircuitBuilder::new("Missing").build();
    }
}
